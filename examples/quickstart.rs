//! Quickstart: simulate one day of a ten-mote deployment, run the
//! sentinet pipeline, and print the recovered environment model.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_sim::{gdi, simulate};

fn main() {
    // 1. A Great-Duck-Island-like workload: 10 motes, 5-minute samples,
    //    lossy radio, diurnal temperature/humidity.
    let sim_cfg = gdi::day_config();
    let mut rng = StdRng::seed_from_u64(42);
    let trace = simulate(&sim_cfg, &mut rng);
    println!(
        "simulated {} records from {} sensors ({:.1}% lost/malformed)",
        trace.len(),
        trace.sensors().len(),
        100.0 * trace.loss_rate()
    );

    // 2. Run the collector-node pipeline with the paper's Table 1
    //    parameters (the defaults).
    let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
    let outcomes = pipeline.process_trace(&trace);
    println!("processed {} observation windows", outcomes.len());

    // 3. The error/attack-free Markov model M_C of the environment.
    let m_c = pipeline.correct_model().expect("pipeline bootstrapped");
    let states = pipeline.model_states().expect("pipeline bootstrapped");
    println!("\nrecovered environment model M_C (key states):");
    for slot in m_c.key_states(pipeline.config().key_state_occupancy) {
        if let Some(c) = states.centroid(slot) {
            println!(
                "  state {slot}: temperature {:>5.1} °C, humidity {:>5.1} %RH (occupancy {:.2})",
                c[0],
                c[1],
                m_c.occupancy()[slot]
            );
        }
    }

    // 4. Per-sensor diagnosis — everything should be clean here.
    println!("\nper-sensor diagnosis:");
    for (id, diagnosis) in pipeline.classify_all() {
        println!("  {id}: {diagnosis}");
    }
}
