//! Scale-out: one collector per region, analyzed in parallel.
//!
//! The paper's procedure "executes on a single data collector node
//! (e.g., a base station or a cluster head)". Larger deployments shard
//! by region with one pipeline per cluster head; the pipelines are
//! independent (`Pipeline` is `Send`), so a gateway can drive them on
//! worker threads and merge the reports.
//!
//! Three simulated regions: a coastal site (the GDI climate), a warmer
//! inland site, and a cold-ridge site. Region B has a stuck sensor,
//! region C suffers a deletion attack.
//!
//! Run with: `cargo run --example multi_region`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig, PipelineReport};
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{gdi, simulate, DiurnalParams, EnvironmentModel, SensorId, DAY_S};

fn region_config(t_min: f64, t_max: f64) -> sentinet_sim::SimConfig {
    let mut cfg = gdi::month_config();
    cfg.duration = 7 * DAY_S;
    cfg.environment = EnvironmentModel::Diurnal(DiurnalParams {
        t_min,
        t_max,
        ..Default::default()
    });
    cfg
}

fn main() {
    // Region A: the GDI coastal climate, healthy.
    let cfg_a = region_config(12.0, 31.0);
    let trace_a = simulate(&cfg_a, &mut StdRng::seed_from_u64(101));

    // Region B: warmer inland site with a stuck sensor.
    let cfg_b = region_config(18.0, 38.0);
    let mut rng_b = StdRng::seed_from_u64(202);
    let trace_b = inject_faults(
        &simulate(&cfg_b, &mut rng_b),
        &[FaultInjection::from_onset(
            SensorId(4),
            FaultModel::StuckAt {
                value: vec![21.0, 2.0],
            },
            DAY_S,
        )],
        &cfg_b.ranges,
        &mut rng_b,
    );

    // Region C: cold ridge under a deletion attack from day 3.
    let cfg_c = region_config(2.0, 16.0);
    let trace_c = inject_attacks(
        &simulate(&cfg_c, &mut StdRng::seed_from_u64(303)),
        &[AttackInjection::from_onset(
            first_k_sensors(3),
            AttackModel::DynamicDeletion {
                freeze_at: vec![2.0, 100.0],
            },
            3 * DAY_S,
        )],
        &cfg_c.ranges,
    );

    // One pipeline per region, each on its own worker thread.
    let regions = [
        ("region-A (coastal)", &cfg_a, &trace_a),
        ("region-B (inland)", &cfg_b, &trace_b),
        ("region-C (ridge)", &cfg_c, &trace_c),
    ];
    let reports: Vec<(&str, PipelineReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = regions
            .iter()
            .map(|(name, cfg, trace)| {
                scope.spawn(move || {
                    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
                    p.process_trace(trace);
                    (*name, p.report())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });

    // The gateway's merged view.
    println!("=== gateway summary over {} regions ===\n", reports.len());
    for (name, report) in &reports {
        let flagged: Vec<String> = report
            .flagged()
            .map(|s| format!("{} ({})", s.sensor, s.diagnosis))
            .collect();
        let attack = report
            .network_attack
            .as_ref()
            .map(|a| format!("{a:?}"))
            .unwrap_or_else(|| "none".into());
        println!("{name}: {} windows", report.windows_processed);
        println!("  attack signature: {attack}");
        if flagged.is_empty() {
            println!("  flagged sensors: none");
        } else {
            for f in flagged {
                println!("  flagged: {f}");
            }
        }
        println!();
    }
}
