//! The paper's §6 future-work scenario: "the application of the
//! proposed methodology to monitor intrusions and failures in a large
//! cluster of machines dedicated to running an e-commerce application."
//!
//! Twelve replica servers report (CPU %, p99 latency ms, memory %)
//! every minute. The workload follows a diurnal shopping pattern. One
//! replica develops a memory leak (drifting to saturated memory) and a
//! third of the replicas are later compromised to feed the monitor
//! lull-level metrics during peaks (hiding a crypto-miner's load). The
//! same pipeline that classifies mote faults separates the two —
//! nothing in `sentinet-core` is sensor-network specific.
//!
//! Run with: `cargo run --example server_farm`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_inject::{
    inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection, FaultModel,
};
use sentinet_sim::{simulate, AttributeRange, EnvironmentModel, SensorId, SimConfig};

fn main() {
    // Farm load profile: (CPU %, p99 latency ms, memory %) plateaus —
    // overnight lull, morning ramp, lunch peak, evening peak.
    let day = 86_400u64;
    let mut schedule = Vec::new();
    for d in 0..10u64 {
        let t0 = d * day;
        schedule.push((t0, vec![20.0, 30.0, 40.0])); // night
        schedule.push((t0 + 8 * 3600, vec![55.0, 55.0, 55.0])); // business hours
        schedule.push((t0 + 12 * 3600, vec![80.0, 85.0, 70.0])); // lunch peak
        schedule.push((t0 + 14 * 3600, vec![55.0, 55.0, 55.0]));
        schedule.push((t0 + 19 * 3600, vec![85.0, 90.0, 72.0])); // evening peak
        schedule.push((t0 + 22 * 3600, vec![20.0, 30.0, 40.0]));
    }
    let cfg = SimConfig {
        num_sensors: 12,
        sample_period: 60,
        duration: 10 * day,
        noise_std: vec![2.0, 3.0, 1.5],
        ranges: vec![
            AttributeRange::new(0.0, 100.0),
            AttributeRange::new(0.0, 500.0),
            AttributeRange::new(0.0, 100.0),
        ],
        loss_prob: 0.02,
        burst: None,
        malformed_prob: 0.005,
        environment: EnvironmentModel::Piecewise(schedule),
    };
    let mut rng = StdRng::seed_from_u64(2_006);
    let clean = simulate(&cfg, &mut rng);

    // Replica 11: memory leak — memory reading drifts up and saturates.
    let with_fault = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(11),
            FaultModel::DriftToStuck {
                target: vec![55.0, 55.0, 100.0],
                drift_duration: 2 * day,
            },
            2 * day,
        )],
        &cfg.ranges,
        &mut rng,
    );
    // Replicas 0-3 (a third of the farm, the paper's operating point):
    // compromised from day 5 — they feed the monitor compensating
    // values that pull the farm-observed state toward the overnight
    // profile during peaks (hiding the miner's load). Fewer replicas
    // (≤ 2 of 12) fall inside the robust mean's trim budget and are
    // flagged per-replica instead of as a coordinated attack.
    let trace = inject_attacks(
        &with_fault,
        &[AttackInjection::from_onset(
            vec![SensorId(0), SensorId(1), SensorId(2), SensorId(3)],
            AttackModel::DynamicDeletion {
                freeze_at: vec![20.0, 30.0, 40.0],
            },
            5 * day,
        )],
        &cfg.ranges,
    );

    // Same pipeline, different domain: only the clustering geometry
    // changes (farm states are farther apart than weather states).
    let mut pipeline_cfg = PipelineConfig {
        window_samples: 15, // 15-minute windows
        // A concurrent fault (replica 11) plus ⅓ compromised leaves 7
        // of 12 honest replicas; the default ⅔ decisiveness bar would
        // refuse every attack window, so relax it to a strict majority
        // plus margin — 12 voters give finer granularity than 10 motes.
        majority_fraction: 0.55,
        ..Default::default()
    };
    pipeline_cfg.cluster.spawn_threshold = 18.0;
    pipeline_cfg.cluster.merge_threshold = 8.0;
    let mut pipeline = Pipeline::new(pipeline_cfg, cfg.sample_period);
    pipeline.process_trace(&trace);

    println!("=== server-farm monitoring (paper §6 future work) ===\n");
    let states = pipeline.model_states().expect("bootstrapped");
    println!("learned farm states (CPU%, p99 ms, mem%):");
    let m_c = pipeline.correct_model().expect("bootstrapped");
    for slot in m_c.key_states(pipeline.config().key_state_occupancy) {
        if let Some(c) = states.centroid(slot) {
            println!(
                "  state {slot}: ({:>5.1}, {:>5.1}, {:>5.1})  occupancy {:.2}",
                c[0],
                c[1],
                c[2],
                m_c.occupancy()[slot]
            );
        }
    }

    println!("\nnetwork-level verdict: {:?}", pipeline.network_attack());
    println!("\nper-replica diagnosis (with track-open window):");
    for (id, d) in pipeline.classify_all() {
        let marker = match d {
            sentinet_core::Diagnosis::ErrorFree => "  ",
            _ => "=>",
        };
        let opened = pipeline
            .tracks(id)
            .and_then(|t| t.first().map(|t| t.opened))
            .map(|w| format!("track opened day {:.1}", w as f64 * 15.0 / (24.0 * 60.0)))
            .unwrap_or_else(|| "no track".into());
        println!("{marker} replica{:<2}: {d}  [{opened}]", id.0);
    }
    // The paper's Fig. 5 applies the network-level B^CO test first, so
    // while an attack is in progress every alarmed node inherits the
    // attack verdict — including the independently faulty replica 11.
    // Two orthogonal signals disambiguate: coordination grouping (the
    // attackers forge identical values, the faulty replica is a loner)
    // and the track timeline (replica 11's track predates the attack).
    println!(
        "
coordination groups among alarmed replicas:"
    );
    for group in pipeline.coordinated_groups() {
        let ids: Vec<String> = group.iter().map(|s| format!("replica{}", s.0)).collect();
        println!(
            "  {} {}",
            ids.join(", "),
            if group.len() > 1 {
                "<- coordinated (attack participants)"
            } else {
                "<- isolated signature (independent fault)"
            }
        );
    }
    let leak_open = pipeline.tracks(SensorId(11)).unwrap()[0].opened;
    let attacker_open = pipeline.tracks(SensorId(0)).unwrap()[0].opened;
    println!(
        "\nreplica11's track predates the attackers' by {} windows — an",
        attacker_open - leak_open
    );
    println!("operator (or a timeline-aware classifier) separates the fault from");
    println!("the attack by onset, as the paper's track-management module intends.");
}
