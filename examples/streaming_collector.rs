//! Streaming usage: a collector node consuming readings one at a time
//! (as a base station would from its radio), reacting to filtered
//! alarms the moment they fire, and persisting/reloading the trace as
//! CSV for offline re-analysis.
//!
//! Run with: `cargo run --example streaming_collector`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{gdi, read_trace, simulate, write_trace, SensorId, DAY_S};

fn main() {
    let mut sim_cfg = gdi::month_config();
    sim_cfg.duration = 12 * DAY_S;
    let mut rng = StdRng::seed_from_u64(99);
    let clean = simulate(&sim_cfg, &mut rng);
    // Sensor 4 develops an additive bias on day 2.
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(4),
            FaultModel::Additive {
                // −9 °C, −4.5 %RH: perpendicular to the environment's
                // (T, H) curve, so displaced readings form their own
                // states (an offset parallel to the curve would land on
                // other valid states and be weakly identifiable), and
                // inside admissible ranges so clamping cannot distort
                // the constant difference.
                offset: vec![-9.0, -4.5],
            },
            2 * DAY_S,
        )],
        &sim_cfg.ranges,
        &mut rng,
    );

    // Persist the collected trace, then stream it back record by record
    // — exactly what a deployment replaying its flash log would do.
    let mut csv = Vec::new();
    write_trace(&trace, 2, &mut csv).expect("write to memory buffer");
    println!("trace csv: {} bytes", csv.len());
    let replayed = read_trace(&csv[..]).expect("parse trace csv");
    assert_eq!(replayed, trace);

    let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
    let mut alarm_announced = false;
    for (time, sensor, reading) in replayed.delivered() {
        // Each reading may complete one or more observation windows.
        for outcome in pipeline.push_reading(time, sensor, reading) {
            if !outcome.filtered_alarms.is_empty() && !alarm_announced {
                alarm_announced = true;
                println!(
                    "window {} (hour {}): filtered alarm on {:?} — raw alarms this window: {:?}",
                    outcome.index,
                    outcome.start / 3600,
                    outcome.filtered_alarms,
                    outcome.raw_alarms,
                );
            }
        }
    }
    pipeline.finalize();

    println!(
        "\nfinal diagnosis after {} windows:",
        pipeline.windows_processed()
    );
    for (id, d) in pipeline.classify_all() {
        println!("  {id}: {d}");
    }

    // The raw alarm stream for the faulty sensor (paper Fig. 12).
    let history = pipeline
        .raw_alarm_history(SensorId(4))
        .expect("sensor 4 seen");
    let raw_rate = history.iter().filter(|(_, r)| *r).count() as f64 / history.len() as f64;
    println!(
        "\nsensor4 raw alarm rate: {:.1}% of windows",
        100.0 * raw_rate
    );
}
