//! Reproduces the paper's §4.1 fault study as a runnable scenario: over
//! a two-week deployment, sensor 6 degrades and sticks at (15 °C, 1 %RH)
//! — the real GDI failure of Fig. 8 — while sensor 7 develops a
//! calibration fault reading ≈ 15 % high. The pipeline must detect both
//! and name the *type* of each fault.
//!
//! Run with: `cargo run --example fault_diagnosis`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Diagnosis, ErrorType, Pipeline, PipelineConfig};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{gdi, simulate, SensorId, DAY_S};

fn main() {
    let mut sim_cfg = gdi::month_config();
    sim_cfg.duration = 14 * DAY_S;
    let mut rng = StdRng::seed_from_u64(7);
    let clean = simulate(&sim_cfg, &mut rng);

    // Inject the paper's two faults.
    let faulty = inject_faults(
        &clean,
        &[
            FaultInjection::from_onset(
                SensorId(6),
                FaultModel::DriftToStuck {
                    target: vec![15.0, 1.0],
                    drift_duration: 2 * DAY_S,
                },
                DAY_S,
            ),
            FaultInjection::from_onset(
                SensorId(7),
                FaultModel::Calibration {
                    gain: vec![1.15, 1.15],
                },
                0,
            ),
        ],
        &sim_cfg.ranges,
        &mut rng,
    );

    let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
    pipeline.process_trace(&faulty);

    println!(
        "network-level attack signature: {:?}\n",
        pipeline.network_attack()
    );
    for (id, diagnosis) in pipeline.classify_all() {
        let marker = match &diagnosis {
            Diagnosis::ErrorFree => "  ",
            _ => "=>",
        };
        println!("{marker} {id}: {diagnosis}");
        if let Diagnosis::Error(ErrorType::StuckAt { state }) = &diagnosis {
            if let Some(c) = pipeline.model_states().unwrap().centroid_any(*state) {
                println!(
                    "     stuck state centroid: ({:.1} °C, {:.1} %RH)",
                    c[0], c[1]
                );
            }
        }
    }

    // Show the structural evidence for sensor 6, paper Table 3 style.
    println!("\nB^CE for sensor 6 (column 0 = \u{22a5}):");
    let m_ce = pipeline.m_ce(SensorId(6)).expect("sensor 6 tracked");
    print!("{}", m_ce.observation());

    // Track history: when did the fault open its track?
    if let Some(tracks) = pipeline.tracks(SensorId(6)) {
        for t in tracks {
            println!(
                "sensor6 track opened at window {} ({}h into the trace), closed: {:?}",
                t.opened, t.opened, t.closed
            );
        }
    }
}
