//! Reproduces the paper's §4.2 attack study: an adversary compromises
//! one third of the sensors and mounts (a) a Dynamic Deletion attack —
//! pinning the network-observed state while the environment moves — and
//! (b) a periodic Dynamic Creation attack — fabricating a spurious
//! environment state. The pipeline distinguishes both from accidental
//! faults by the orthogonality structure of `B^CO`.
//!
//! Run with: `cargo run --example attack_detection`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_inject::{first_k_sensors, inject_attacks, AttackInjection, AttackModel};
use sentinet_sim::{gdi, simulate, EnvironmentModel, DAY_S};

fn deletion_scenario() {
    println!("=== Dynamic Deletion (paper Fig. 10 / Table 6) ===");
    let mut sim_cfg = gdi::month_config();
    sim_cfg.duration = 10 * DAY_S;
    let clean = simulate(&sim_cfg, &mut StdRng::seed_from_u64(1));
    // From day 5, compromised sensors report compensating values that
    // keep the observed state frozen at the night state (12, 94).
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicDeletion {
            freeze_at: vec![12.0, 94.0],
        },
        5 * DAY_S,
    );
    let attacked = inject_attacks(&clean, &[attack], &sim_cfg.ranges);

    let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
    pipeline.process_trace(&attacked);
    println!("verdict: {:?}", pipeline.network_attack());
    println!("B^CO (rows = correct states, cols = observable states):");
    print!("{}", pipeline.m_co().unwrap().observation());
    println!();
}

fn creation_scenario() {
    println!("=== Dynamic Creation (paper Fig. 11 / Table 7) ===");
    let mut sim_cfg = gdi::month_config();
    sim_cfg.duration = 6 * DAY_S;
    // The paper's creation study runs against a quiet environment.
    sim_cfg.environment = EnvironmentModel::Constant(vec![12.0, 95.0]);
    let clean = simulate(&sim_cfg, &mut StdRng::seed_from_u64(2));
    // Periodic injection (as in Fig. 11): 6 hours on, 6 hours off,
    // starting day 3 — the adversary forges a state near (25, 69).
    let attacks: Vec<AttackInjection> = (0..6)
        .map(|i| AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            start: 3 * DAY_S + i * 12 * 3600,
            end: Some(3 * DAY_S + i * 12 * 3600 + 6 * 3600),
        })
        .collect();
    let attacked = inject_attacks(&clean, &attacks, &sim_cfg.ranges);

    let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
    pipeline.process_trace(&attacked);
    println!("verdict: {:?}", pipeline.network_attack());
    if let Some(states) = pipeline.model_states() {
        println!("model states (fabricated ones included):");
        for slot in states.active_states() {
            let c = states.centroid(slot).expect("active slot");
            println!("  state {slot}: ({:.1} °C, {:.1} %RH)", c[0], c[1]);
        }
    }
    println!();
}

fn main() {
    deletion_scenario();
    creation_scenario();
}
