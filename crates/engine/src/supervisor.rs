//! The self-healing shard pool: supervised workers, per-window
//! checkpoints, crash recovery by replay, and quarantine.
//!
//! The pre-supervisor engine ran workers on scoped threads and
//! re-raised any worker panic at join — one poisoned sensor update
//! killed the whole run. This module replaces that with a supervision
//! tree in miniature:
//!
//! - **Unwind boundary.** Each worker wraps job execution in
//!   [`std::panic::catch_unwind`]; a panic becomes a `Crashed` note to
//!   the coordinator and a clean thread exit, never an unwinding join.
//! - **Checkpoints.** At the start of every window's label stage the
//!   coordinator snapshots each shard ([`Job::Snapshot`]) — estimator
//!   matrices, alarm filters, track state, bit-exact — and clears that
//!   shard's replay log.
//! - **Recovery = restore + replay.** On a crash (a `Crashed` note, a
//!   failed send, or a reply timeout) the shard's epoch is bumped —
//!   discrediting any late replies from the superseded worker — and a
//!   fresh thread is spawned from the last checkpoint. The logged
//!   mutating jobs (`Step`s whose replies were already folded, `Grow`s)
//!   are replayed silently, then the in-flight job is re-delivered.
//!   Because per-sensor state is deterministic in the job sequence,
//!   the restored worker is bit-identical to the lost one.
//! - **Quarantine.** More than [`SupervisorConfig::max_shard_restarts`]
//!   crashes between two successful checkpoints quarantines the shard:
//!   its sensors stop being labelled/stepped (and thus voting), the
//!   run continues degraded, and the final [`Harvest`] restores the
//!   quarantined sensors read-only from their last checkpoint and
//!   reports them in a [`DegradedStatus`].
//!
//! All channels are bounded and every coordinator wait carries the
//! configured timeout — a hung worker stalls its shard for at most
//! [`SupervisorConfig::reply_timeout`], then gets superseded.
//!
//! [`Job::Snapshot`]: crate::protocol::Job::Snapshot

use crate::chaos::{ChaosPlan, FaultKind, FaultPoint};
use crate::protocol::{collect_labels, collect_steps, shard_of, Job, Reply, ShardWorker};
use crate::{ShardBackend, ShardError};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use sentinet_cluster::ModelStates;
use sentinet_core::{DegradedStatus, PipelineConfig, SensorRuntime, SensorSnapshot};
use sentinet_sim::SensorId;
use std::collections::BTreeMap;
use std::time::Duration;

/// Tunables of the supervised shard pool.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Crashes tolerated per shard *between two successful
    /// checkpoints* before the shard is quarantined. The counter
    /// resets every window that checkpoints cleanly, so only a shard
    /// failing to make progress burns through the budget.
    pub max_shard_restarts: u32,
    /// How long the coordinator waits for any reply before declaring
    /// every still-pending shard crashed.
    pub reply_timeout: Duration,
    /// Base backoff slept before respawning a crashed shard, scaled by
    /// the shard's consecutive-crash count.
    pub restart_backoff: Duration,
    /// Capacity of each worker's bounded job channel.
    pub channel_capacity: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_shard_restarts: 3,
            reply_timeout: Duration::from_secs(2),
            restart_backoff: Duration::from_millis(2),
            channel_capacity: 8,
        }
    }
}

/// What the coordinator sends a supervised worker.
enum WorkerMsg {
    /// Execute a job; replying jobs answer with an [`Envelope`].
    Run(Job),
    /// Re-execute a logged job after a restart, suppressing the reply
    /// (the original reply was already folded before the crash).
    Replay(Job),
    /// Arm a chaos fault for the next [`WorkerMsg::Run`].
    Chaos(FaultKind),
}

/// A worker-to-coordinator message, tagged with the worker's identity
/// so replies from a superseded worker can be discarded.
struct Envelope {
    shard: usize,
    epoch: u64,
    note: Note,
}

enum Note {
    Reply(Reply),
    /// The worker caught a panic (or a corrupt checkpoint) and exited.
    /// No payload: real panic messages already reach stderr through
    /// the panic hook before the catch.
    Crashed,
}

/// The supervised worker loop. Panics inside job execution are caught
/// here — the thread reports `Crashed` and exits cleanly; it never
/// unwinds to completion and is never joined while panicking.
fn supervised_worker(
    shard: usize,
    epoch: u64,
    config: PipelineConfig,
    checkpoint: Vec<(SensorId, SensorSnapshot)>,
    jobs: Receiver<WorkerMsg>,
    replies: Sender<Envelope>,
) {
    let send = |note: Note| replies.send(Envelope { shard, epoch, note }).is_ok();
    let mut worker = match ShardWorker::from_snapshot(config, checkpoint) {
        Ok(worker) => worker,
        Err(_) => {
            send(Note::Crashed);
            return;
        }
    };
    let mut armed: Option<FaultKind> = None;
    for msg in jobs.iter() {
        let (job, replay) = match msg {
            WorkerMsg::Chaos(kind) => {
                armed = Some(kind);
                continue;
            }
            WorkerMsg::Run(job) => (job, false),
            WorkerMsg::Replay(job) => (job, true),
        };
        let last = matches!(job, Job::Finish);
        let fault = if replay { None } else { armed.take() };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if matches!(fault, Some(FaultKind::Panic)) {
                // sentinet-allow(panic-used): the chaos harness's
                // injected fault — deliberately thrown inside the
                // unwind boundary it exists to exercise.
                panic!("chaos: injected worker panic");
            }
            worker.handle(job)
        }));
        match outcome {
            Ok(Some(reply)) => {
                if replay || matches!(fault, Some(FaultKind::DropReply)) {
                    // Swallowed: replays rebuild state silently, and a
                    // dropped reply simulates a hung worker — the
                    // coordinator's timeout supersedes this thread.
                } else {
                    if let Some(FaultKind::DelayReply { millis }) = fault {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    if !send(Note::Reply(reply)) {
                        return; // coordinator is gone
                    }
                }
                if last {
                    return;
                }
            }
            Ok(None) => {} // Grow has no reply
            Err(_panic) => {
                send(Note::Crashed);
                return; // the "crash": a clean exit after the catch
            }
        }
    }
}

/// One shard's supervision record.
struct ShardSlot {
    /// Bumped on every respawn; replies from older epochs are stale.
    epoch: u64,
    /// Job channel of the live worker; `None` once quarantined.
    jobs: Option<Sender<WorkerMsg>>,
    /// Last good checkpoint (start of the current window).
    checkpoint: Vec<(SensorId, SensorSnapshot)>,
    /// Mutating jobs applied since the checkpoint, in order.
    log: Vec<Job>,
    /// Consecutive crashes since the last successful checkpoint.
    crashes: u32,
}

/// What a supervised run hands back after the finish barrier.
pub(crate) struct Harvest {
    /// Every sensor, live shards' current state plus quarantined
    /// shards' last-checkpoint state.
    pub(crate) sensors: BTreeMap<SensorId, SensorRuntime>,
    /// `Some` iff at least one shard was quarantined.
    pub(crate) degraded: Option<DegradedStatus>,
    /// `(shard, respawn count)` for every shard restarted at least once.
    pub(crate) shard_restarts: Vec<(usize, u32)>,
}

/// The supervised [`ShardBackend`]: a pool of restartable workers
/// behind bounded channels, driven through the same `window_pass`
/// coordinator loop as the inline backend.
pub(crate) struct SupervisedBackend {
    config: PipelineConfig,
    tunables: SupervisorConfig,
    chaos: ChaosPlan,
    slots: Vec<ShardSlot>,
    reply_tx: Sender<Envelope>,
    reply_rx: Receiver<Envelope>,
    /// Total respawns per shard over the whole run (never reset).
    restarts: Vec<u32>,
    /// Label barriers seen — the chaos window coordinate.
    label_barriers: u64,
    /// Window coordinate of the current label/step pair.
    current_window: u64,
}

impl SupervisedBackend {
    /// Spawns `num_shards` supervised workers with empty state.
    pub(crate) fn launch(
        config: PipelineConfig,
        tunables: SupervisorConfig,
        chaos: ChaosPlan,
        num_shards: usize,
    ) -> Self {
        let (reply_tx, reply_rx) = bounded(num_shards.max(1) * tunables.channel_capacity.max(1));
        let mut pool = Self {
            config,
            tunables,
            chaos,
            slots: Vec::with_capacity(num_shards),
            reply_tx,
            reply_rx,
            restarts: vec![0; num_shards],
            label_barriers: 0,
            current_window: 0,
        };
        for shard in 0..num_shards {
            pool.slots.push(ShardSlot {
                epoch: 0,
                jobs: None,
                checkpoint: Vec::new(),
                log: Vec::new(),
                crashes: 0,
            });
            pool.spawn(shard);
        }
        pool
    }

    fn is_live(&self, shard: usize) -> bool {
        self.slots[shard].jobs.is_some()
    }

    /// Spawns a worker for `shard` from its current checkpoint/epoch.
    fn spawn(&mut self, shard: usize) {
        let (tx, rx) = bounded(self.tunables.channel_capacity.max(1));
        let slot = &self.slots[shard];
        let epoch = slot.epoch;
        let config = self.config.clone();
        let checkpoint = slot.checkpoint.clone();
        let replies = self.reply_tx.clone();
        std::thread::spawn(move || {
            supervised_worker(shard, epoch, config, checkpoint, rx, replies)
        });
        self.slots[shard].jobs = Some(tx);
    }

    /// Handles one detected crash: drop the (possibly hung) worker's
    /// channel, bump the epoch so its late replies are discarded, then
    /// either quarantine (budget exhausted) or back off and respawn
    /// from the last checkpoint.
    fn crash(&mut self, shard: usize) {
        let slot = &mut self.slots[shard];
        slot.jobs = None; // a superseded-but-alive worker exits when this drops
        slot.epoch += 1;
        slot.crashes += 1;
        if slot.crashes > self.tunables.max_shard_restarts {
            return; // quarantined: `jobs` stays None
        }
        let backoff = self.tunables.restart_backoff * slot.crashes;
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        self.restarts[shard] += 1;
        self.spawn(shard);
    }

    /// Replays the shard's mutating-job log into a freshly respawned
    /// worker; `false` if the new worker died mid-replay.
    fn replay(&mut self, shard: usize) -> bool {
        let Some(tx) = self.slots[shard].jobs.clone() else {
            return false;
        };
        for job in self.slots[shard].log.clone() {
            if tx.send(WorkerMsg::Replay(job)).is_err() {
                return false;
            }
        }
        true
    }

    /// Crash + respawn + replay until the shard either holds its
    /// replayed state or runs out of restart budget. Terminates
    /// because every iteration burns one crash from the budget.
    fn recover(&mut self, shard: usize) {
        loop {
            self.crash(shard);
            if !self.is_live(shard) {
                return; // quarantined
            }
            if self.replay(shard) {
                return; // healthy again, ready for re-delivery
            }
        }
    }

    /// Sends one barrier job (preceded by any armed chaos fault) to a
    /// live shard, recovering and retrying on send failure. `false`
    /// once the shard is quarantined.
    fn dispatch(&mut self, shard: usize, job: &Job, point: Option<FaultPoint>) -> bool {
        loop {
            let Some(tx) = self.slots[shard].jobs.clone() else {
                return false;
            };
            if let Some(point) = point {
                if let Some(kind) = self.chaos.take(shard, self.current_window, point) {
                    if tx.send(WorkerMsg::Chaos(kind)).is_err() {
                        self.recover(shard);
                        continue;
                    }
                }
            }
            if tx.send(WorkerMsg::Run(job.clone())).is_err() {
                self.recover(shard);
                continue;
            }
            return true;
        }
    }

    /// One synchronous exchange with every shard given a job. Crashed
    /// shards are recovered and their in-flight job re-delivered;
    /// shards that exhaust their budget drop out of the barrier.
    /// Returns `(shard, reply)` pairs in arrival order.
    fn barrier(
        &mut self,
        jobs: Vec<Option<Job>>,
        point: Option<FaultPoint>,
    ) -> Result<Vec<(usize, Reply)>, ShardError> {
        let num = self.slots.len();
        let mut pending = vec![false; num];
        for (shard, job) in jobs.iter().enumerate() {
            if let Some(job) = job {
                if self.is_live(shard) {
                    pending[shard] = self.dispatch(shard, job, point);
                }
            }
        }
        let mut replies = Vec::new();
        while pending.iter().any(|&p| p) {
            match self.reply_rx.recv_timeout(self.tunables.reply_timeout) {
                Ok(env) => {
                    if env.shard >= num
                        || env.epoch != self.slots[env.shard].epoch
                        || !self.is_live(env.shard)
                    {
                        continue; // stale: a superseded or quarantined worker
                    }
                    match env.note {
                        Note::Crashed => {
                            self.recover(env.shard);
                            if pending[env.shard] {
                                pending[env.shard] = match &jobs[env.shard] {
                                    Some(job) => self.dispatch(env.shard, job, point),
                                    None => false,
                                };
                            }
                        }
                        Note::Reply(reply) => {
                            if pending[env.shard] {
                                pending[env.shard] = false;
                                // A folded Step mutated worker state:
                                // log it for post-crash replay. (Label
                                // and Snapshot are pure; Grow is logged
                                // at send; Finish ends the shard.)
                                if matches!(jobs[env.shard], Some(Job::Step { .. })) {
                                    if let Some(job) = &jobs[env.shard] {
                                        self.slots[env.shard].log.push(job.clone());
                                    }
                                }
                                replies.push((env.shard, reply));
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Nothing arrived for a full timeout: every shard
                    // still pending is hung or dead. Supersede them all.
                    for shard in 0..num {
                        if !pending[shard] {
                            continue;
                        }
                        self.recover(shard);
                        pending[shard] = match &jobs[shard] {
                            Some(job) => self.dispatch(shard, job, point),
                            None => false,
                        };
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable: we hold a reply_tx clone ourselves.
                    return Err(ShardError::WorkerLost { shard: 0 });
                }
            }
        }
        Ok(replies)
    }

    /// The per-window checkpoint barrier: snapshot every live shard,
    /// clear its replay log, and reset its consecutive-crash budget.
    fn refresh_checkpoints(&mut self) -> Result<(), ShardError> {
        let jobs: Vec<Option<Job>> = self
            .slots
            .iter()
            .map(|slot| slot.jobs.is_some().then_some(Job::Snapshot))
            .collect();
        for (shard, reply) in self.barrier(jobs, None)? {
            let Reply::Snapshot(checkpoint) = reply else {
                return Err(ShardError::Protocol {
                    shard,
                    what: "snapshot barrier answered with a non-snapshot reply".into(),
                });
            };
            let slot = &mut self.slots[shard];
            slot.checkpoint = checkpoint;
            slot.log.clear();
            slot.crashes = 0;
        }
        Ok(())
    }

    /// Collects every shard's sensors: live shards via the finish
    /// barrier, quarantined shards read-only from their last
    /// checkpoint. Also assembles the degraded status.
    pub(crate) fn finish(mut self) -> Result<Harvest, ShardError> {
        let jobs: Vec<Option<Job>> = self
            .slots
            .iter()
            .map(|slot| slot.jobs.is_some().then_some(Job::Finish))
            .collect();
        let mut sensors = BTreeMap::new();
        for (shard, reply) in self.barrier(jobs, None)? {
            let Reply::Done(batch) = reply else {
                return Err(ShardError::Protocol {
                    shard,
                    what: "finish barrier answered with a non-done reply".into(),
                });
            };
            sensors.extend(batch);
        }
        let mut quarantined = Vec::new();
        for slot in &self.slots {
            if slot.jobs.is_some() {
                continue;
            }
            for (id, snapshot) in &slot.checkpoint {
                quarantined.push(*id);
                if let Ok(rt) = SensorRuntime::from_snapshot(snapshot.clone()) {
                    sensors.insert(*id, rt);
                }
            }
        }
        quarantined.sort_unstable();
        let shard_restarts: Vec<(usize, u32)> = self
            .restarts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(shard, &n)| (shard, n))
            .collect();
        let degraded = if quarantined.is_empty() {
            None
        } else {
            Some(DegradedStatus {
                quarantined_sensors: quarantined,
                shard_restarts: shard_restarts.clone(),
            })
        };
        Ok(Harvest {
            sensors,
            degraded,
            shard_restarts,
        })
    }
}

impl ShardBackend for SupervisedBackend {
    fn label(
        &mut self,
        states: &ModelStates,
        representatives: &BTreeMap<SensorId, Vec<f64>>,
    ) -> Result<Option<BTreeMap<SensorId, usize>>, ShardError> {
        self.current_window = self.label_barriers;
        self.label_barriers += 1;
        self.refresh_checkpoints()?;
        let num = self.slots.len();
        let mut batches: Vec<Vec<(SensorId, Vec<f64>)>> = vec![Vec::new(); num];
        for (&id, mean) in representatives {
            batches[shard_of(id, num)].push((id, mean.clone()));
        }
        // Quarantined shards get no job: their sensors drop out of the
        // label map and therefore out of the majority vote.
        let jobs: Vec<Option<Job>> = batches
            .into_iter()
            .enumerate()
            .map(|(shard, means)| {
                self.is_live(shard).then(|| Job::Label {
                    states: states.clone(),
                    means,
                })
            })
            .collect();
        let replies = self.barrier(jobs, Some(FaultPoint::Label))?;
        Ok(collect_labels(
            replies.into_iter().map(|(_, reply)| reply).collect(),
        ))
    }

    fn step(
        &mut self,
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: &BTreeMap<SensorId, usize>,
    ) -> Result<(Vec<SensorId>, Vec<SensorId>), ShardError> {
        let num = self.slots.len();
        let mut batches: Vec<Vec<(SensorId, usize)>> = vec![Vec::new(); num];
        for (&id, &label) in labels {
            batches[shard_of(id, num)].push((id, label));
        }
        let jobs: Vec<Option<Job>> = batches
            .into_iter()
            .enumerate()
            .map(|(shard, labels)| {
                self.is_live(shard).then_some(Job::Step {
                    window_index,
                    correct,
                    num_slots,
                    labels,
                })
            })
            .collect();
        let replies = self.barrier(jobs, Some(FaultPoint::Step))?;
        Ok(collect_steps(
            replies.into_iter().map(|(_, reply)| reply).collect(),
        ))
    }

    fn grow(&mut self, num_slots: usize) -> Result<(), ShardError> {
        // Grow has no reply, so it is logged optimistically at send: a
        // crash before the worker applied it is recovered by replaying
        // from the pre-grow checkpoint, where the logged grow runs
        // exactly once.
        for shard in 0..self.slots.len() {
            loop {
                let Some(tx) = self.slots[shard].jobs.clone() else {
                    break; // quarantined
                };
                if tx.send(WorkerMsg::Run(Job::Grow { num_slots })).is_err() {
                    self.recover(shard);
                    continue;
                }
                self.slots[shard].log.push(Job::Grow { num_slots });
                break;
            }
        }
        Ok(())
    }
}
