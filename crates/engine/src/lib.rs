//! `sentinet-engine` — sharded multi-collector execution of the
//! detection pipeline.
//!
//! The serial [`sentinet_core::Pipeline`] interleaves two kinds of
//! per-window work:
//!
//! - **per-sensor stages** — alarm filter update, `M_CE` online
//!   estimation, error/attack track management — which touch only one
//!   sensor's state ([`sentinet_core::SensorRuntime`]);
//! - **global stages** — clustering, observable/correct state
//!   identification, `M_CO`/`M_C`/`M_O` estimation, majority voting —
//!   which need every sensor's vote ([`sentinet_core::GlobalModel`]).
//!
//! The [`Engine`] shards the per-sensor stages across `num_shards`
//! worker threads (`crossbeam` scoped threads; sensor *s* lives on
//! shard `s mod num_shards` for its whole life) while a single
//! coordinator runs the global stages. Per window the coordinator
//! hands each shard a batched **label** job (model-state snapshot +
//! that shard's sensor representatives) and, on decisive windows, a
//! batched **step** job; explicit **grow** jobs keep worker-side
//! estimators sized to the coordinator's model-state slots.
//!
//! The majority vote itself cannot be sharded: Eq. 4 elects the state
//! backed by the most sensors *across the whole network*, and every
//! subsequent stage (alarm generation, `M_CO`/`M_CE` updates) consumes
//! the elected state — so the vote is a per-window barrier between the
//! parallel label stage and the parallel step stage.
//!
//! Because every per-sensor float operation happens in the same order
//! on exactly one thread, and the global stages run unchanged on the
//! coordinator, the engine's output is **bit-for-bit identical** to
//! the serial pipeline at any shard count; `num_shards = 1` runs
//! inline without spawning threads at all.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sentinet_core::PipelineConfig;
//! use sentinet_engine::Engine;
//! use sentinet_sim::{gdi, simulate};
//!
//! let cfg = gdi::day_config();
//! let trace = simulate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(1));
//! let engine = Engine::new(PipelineConfig::default(), cfg.sample_period, 2);
//! let run = engine.process_trace(&trace);
//! assert!(!run.outcomes().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use crossbeam::channel::{Receiver, Sender};
use sentinet_cluster::ModelStates;
use sentinet_core::classify::{AttackType, Diagnosis};
use sentinet_core::{
    majority_vote, GlobalModel, ObservationWindow, PipelineConfig, PipelineReport, RecoveryAction,
    RecoveryPlan, SensorRuntime, SensorSummary, StateSummary, TrackRecord, WindowOutcome,
    WindowScratch, Windower,
};
use sentinet_hmm::OnlineHmmEstimator;
use sentinet_sim::{SensorId, Trace};
use std::collections::BTreeMap;

/// Work dispatched from the coordinator to one shard.
#[derive(Debug)]
enum Job {
    /// Label each representative against a model-state snapshot.
    Label {
        states: ModelStates,
        means: Vec<(SensorId, Vec<f64>)>,
    },
    /// Run the per-sensor step of a decisive window.
    Step {
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: Vec<(SensorId, usize)>,
    },
    /// Grow every sensor estimator to the new slot count.
    Grow { num_slots: usize },
    /// Hand the shard's sensors back and exit.
    Finish,
}

/// A shard's answer to a [`Job`].
enum Reply {
    Labels(Vec<(SensorId, Option<usize>)>),
    Stepped {
        raw: Vec<SensorId>,
        filtered: Vec<SensorId>,
    },
    Done(BTreeMap<SensorId, SensorRuntime>),
}

fn shard_of(id: SensorId, num_shards: usize) -> usize {
    id.0 as usize % num_shards
}

fn worker(config: PipelineConfig, jobs: Receiver<Job>, replies: Sender<Reply>) {
    let mut sensors: BTreeMap<SensorId, SensorRuntime> = BTreeMap::new();
    for job in jobs.iter() {
        match job {
            Job::Label { states, means } => {
                let labels = means
                    .iter()
                    .map(|(id, mean)| (*id, states.nearest(mean).map(|(s, _)| s)))
                    .collect();
                let _ = replies.send(Reply::Labels(labels));
            }
            Job::Step {
                window_index,
                correct,
                num_slots,
                labels,
            } => {
                let mut raw = Vec::new();
                let mut filtered = Vec::new();
                for (id, label) in labels {
                    let sensor = sensors
                        .entry(id)
                        .or_insert_with(|| SensorRuntime::new(&config, num_slots));
                    let step = sensor.step(window_index, label, correct);
                    if step.raw {
                        raw.push(id);
                    }
                    if step.filtered {
                        filtered.push(id);
                    }
                }
                let _ = replies.send(Reply::Stepped { raw, filtered });
            }
            Job::Grow { num_slots } => {
                for s in sensors.values_mut() {
                    s.grow(num_slots);
                }
            }
            Job::Finish => {
                let _ = replies.send(Reply::Done(std::mem::take(&mut sensors)));
                return;
            }
        }
    }
}

/// How the coordinator executes per-sensor work: inline on its own
/// thread (`num_shards = 1`) or fanned out to worker shards.
// One Backend exists per run, so the Inline/Threads size gap is moot.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Inline {
        config: PipelineConfig,
        sensors: BTreeMap<SensorId, SensorRuntime>,
    },
    Threads {
        senders: Vec<Sender<Job>>,
        replies: Receiver<Reply>,
    },
}

impl Backend {
    /// Labels every representative; `None` if any sensor falls outside
    /// all active model states (the serial pipeline then drops the
    /// whole window, so the engine must too).
    fn label(
        &mut self,
        states: &ModelStates,
        representatives: &BTreeMap<SensorId, Vec<f64>>,
    ) -> Option<BTreeMap<SensorId, usize>> {
        match self {
            Backend::Inline { .. } => {
                let mut labels = BTreeMap::new();
                for (&id, mean) in representatives {
                    labels.insert(id, states.nearest(mean)?.0);
                }
                Some(labels)
            }
            Backend::Threads { senders, replies } => {
                let num_shards = senders.len();
                let mut batches: Vec<Vec<(SensorId, Vec<f64>)>> = vec![Vec::new(); num_shards];
                for (&id, mean) in representatives {
                    batches[shard_of(id, num_shards)].push((id, mean.clone()));
                }
                for (sender, means) in senders.iter().zip(batches) {
                    sender
                        .send(Job::Label {
                            states: states.clone(),
                            means,
                        })
                        .expect("worker alive");
                }
                let mut labels = BTreeMap::new();
                let mut missing = false;
                for _ in 0..num_shards {
                    match replies.recv().expect("worker alive") {
                        Reply::Labels(batch) => {
                            for (id, label) in batch {
                                match label {
                                    Some(l) => {
                                        labels.insert(id, l);
                                    }
                                    None => missing = true,
                                }
                            }
                        }
                        _ => unreachable!("label job answered with label reply"),
                    }
                }
                if missing {
                    None
                } else {
                    Some(labels)
                }
            }
        }
    }

    /// Runs the per-sensor step of a decisive window; returns the raw
    /// and filtered alarm lists in ascending sensor order (the serial
    /// pipeline's iteration order).
    fn step(
        &mut self,
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: &BTreeMap<SensorId, usize>,
    ) -> (Vec<SensorId>, Vec<SensorId>) {
        match self {
            Backend::Inline { config, sensors } => {
                let mut raw_alarms = Vec::new();
                let mut filtered_alarms = Vec::new();
                for (&id, &label) in labels {
                    let sensor = sensors
                        .entry(id)
                        .or_insert_with(|| SensorRuntime::new(config, num_slots));
                    let step = sensor.step(window_index, label, correct);
                    if step.raw {
                        raw_alarms.push(id);
                    }
                    if step.filtered {
                        filtered_alarms.push(id);
                    }
                }
                (raw_alarms, filtered_alarms)
            }
            Backend::Threads { senders, replies } => {
                let num_shards = senders.len();
                let mut batches: Vec<Vec<(SensorId, usize)>> = vec![Vec::new(); num_shards];
                for (&id, &label) in labels {
                    batches[shard_of(id, num_shards)].push((id, label));
                }
                for (sender, labels) in senders.iter().zip(batches) {
                    sender
                        .send(Job::Step {
                            window_index,
                            correct,
                            num_slots,
                            labels,
                        })
                        .expect("worker alive");
                }
                let mut raw_alarms = Vec::new();
                let mut filtered_alarms = Vec::new();
                for _ in 0..num_shards {
                    match replies.recv().expect("worker alive") {
                        Reply::Stepped { raw, filtered } => {
                            raw_alarms.extend(raw);
                            filtered_alarms.extend(filtered);
                        }
                        _ => unreachable!("step job answered with step reply"),
                    }
                }
                raw_alarms.sort_unstable();
                filtered_alarms.sort_unstable();
                (raw_alarms, filtered_alarms)
            }
        }
    }

    /// Resizes every shard's estimators after model-state growth.
    fn grow(&mut self, num_slots: usize) {
        match self {
            Backend::Inline { sensors, .. } => {
                for s in sensors.values_mut() {
                    s.grow(num_slots);
                }
            }
            Backend::Threads { senders, .. } => {
                for sender in senders {
                    sender.send(Job::Grow { num_slots }).expect("worker alive");
                }
            }
        }
    }

    /// Collects every shard's sensors back onto the coordinator.
    fn finish(self) -> BTreeMap<SensorId, SensorRuntime> {
        match self {
            Backend::Inline { sensors, .. } => sensors,
            Backend::Threads { senders, replies } => {
                for sender in &senders {
                    sender.send(Job::Finish).expect("worker alive");
                }
                let num_shards = senders.len();
                drop(senders);
                let mut sensors = BTreeMap::new();
                for _ in 0..num_shards {
                    match replies.recv().expect("worker alive") {
                        Reply::Done(batch) => sensors.extend(batch),
                        _ => unreachable!("finish job answered with done reply"),
                    }
                }
                sensors
            }
        }
    }
}

/// Sharded multi-collector engine over one trace.
///
/// Construct once, then [`Engine::process_trace`] per trace. The
/// engine is the batch counterpart to the streaming
/// [`sentinet_core::Pipeline`]: it owns the shard pool for the
/// duration of a trace and returns an [`EngineRun`] exposing the same
/// post-run queries.
#[derive(Debug, Clone)]
pub struct Engine {
    config: PipelineConfig,
    sample_period: u64,
    num_shards: usize,
}

impl Engine {
    /// Creates an engine; `sample_period` as in
    /// [`sentinet_core::Pipeline::new`], `num_shards ≥ 1` worker
    /// shards (1 = inline serial execution, no threads).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `sample_period == 0`,
    /// or `num_shards == 0`.
    pub fn new(config: PipelineConfig, sample_period: u64, num_shards: usize) -> Self {
        config.validate();
        assert!(sample_period > 0, "sample period must be positive");
        assert!(num_shards > 0, "need at least one shard");
        Self {
            config,
            sample_period,
            num_shards,
        }
    }

    /// The configured shard count.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Processes a whole trace and returns the completed run.
    pub fn process_trace(&self, trace: &Trace) -> EngineRun {
        if self.num_shards == 1 {
            let mut backend = Backend::Inline {
                config: self.config.clone(),
                sensors: BTreeMap::new(),
            };
            let (global, outcomes) = self.drive(trace, &mut backend);
            EngineRun {
                global,
                sensors: backend.finish(),
                outcomes,
            }
        } else {
            crossbeam::thread::scope(|scope| {
                let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
                let mut senders = Vec::with_capacity(self.num_shards);
                for _ in 0..self.num_shards {
                    let (job_tx, job_rx) = crossbeam::channel::unbounded();
                    let reply_tx = reply_tx.clone();
                    let config = self.config.clone();
                    scope.spawn(move |_| worker(config, job_rx, reply_tx));
                    senders.push(job_tx);
                }
                let mut backend = Backend::Threads {
                    senders,
                    replies: reply_rx,
                };
                let (global, outcomes) = self.drive(trace, &mut backend);
                EngineRun {
                    global,
                    sensors: backend.finish(),
                    outcomes,
                }
            })
            .expect("worker threads join cleanly")
        }
    }

    /// The coordinator loop: windowing plus the global stages, with
    /// per-sensor stages delegated to the backend.
    fn drive(&self, trace: &Trace, backend: &mut Backend) -> (GlobalModel, Vec<WindowOutcome>) {
        let mut global = GlobalModel::new(self.config.clone());
        let mut windower = Windower::new(self.config.window_samples as u64 * self.sample_period);
        let mut scratch = WindowScratch::new();
        let mut outcomes = Vec::new();
        for (time, sensor, reading) in trace.delivered() {
            for window in windower.push(time, sensor, reading.values()) {
                if let Some(o) = Self::window_pass(&mut global, backend, &mut scratch, &window) {
                    outcomes.push(o);
                }
                windower.recycle(window);
            }
        }
        if let Some(window) = windower.finish() {
            if let Some(o) = Self::window_pass(&mut global, backend, &mut scratch, &window) {
                outcomes.push(o);
            }
        }
        (global, outcomes)
    }

    /// One window through the same stage order as the serial
    /// pipeline's `analyze_window`.
    fn window_pass(
        global: &mut GlobalModel,
        backend: &mut Backend,
        scratch: &mut WindowScratch,
        window: &ObservationWindow,
    ) -> Option<WindowOutcome> {
        if !global.absorb_bootstrap(window) {
            return None;
        }
        let trim = global.config().observable_trim;
        let majority_fraction = global.config().majority_fraction;
        let mean = window.trimmed_mean_with(trim, scratch);
        if global.cover_window_mean(mean) {
            backend.grow(global.num_slots());
        }
        let mean = mean?;

        let representatives = window.sensor_means();
        let (observable, labels) = {
            let states = global.states().expect("bootstrapped above");
            let observable = states.nearest(mean)?.0;
            (observable, backend.label(states, &representatives)?)
        };
        let (correct, decisive) = majority_vote(&labels, majority_fraction)?;

        if decisive {
            global.record_decisive(correct, observable);
        }

        let window_index = global.windows_processed();
        let num_slots = global.num_slots();
        let (raw_alarms, filtered_alarms) = if decisive {
            backend.step(window_index, correct, num_slots, &labels)
        } else {
            (Vec::new(), Vec::new())
        };

        let points: Vec<Vec<f64>> = representatives.into_values().collect();
        let (cluster_events, grew) = global.finish_window(&points);
        if grew {
            backend.grow(global.num_slots());
        }

        Some(WindowOutcome {
            index: window_index,
            start: window.start,
            observable,
            correct,
            raw_alarms,
            filtered_alarms,
            cluster_events,
        })
    }
}

/// A completed engine run: every window outcome plus the final models,
/// answering the same post-run queries as the serial pipeline.
#[derive(Debug)]
pub struct EngineRun {
    global: GlobalModel,
    sensors: BTreeMap<SensorId, SensorRuntime>,
    outcomes: Vec<WindowOutcome>,
}

impl EngineRun {
    /// Every processed window, in order.
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    /// Consumes the run, returning the outcomes.
    pub fn into_outcomes(self) -> Vec<WindowOutcome> {
        self.outcomes
    }

    /// The global model (states, `M_CO`, histories).
    pub fn global(&self) -> &GlobalModel {
        &self.global
    }

    /// Number of windows fully processed (post-bootstrap).
    pub fn windows_processed(&self) -> u64 {
        self.global.windows_processed()
    }

    /// Sensors seen so far.
    pub fn sensor_ids(&self) -> Vec<SensorId> {
        self.sensors.keys().copied().collect()
    }

    /// The per-sensor `M_CE` estimator.
    pub fn m_ce(&self, sensor: SensorId) -> Option<&OnlineHmmEstimator> {
        self.sensors.get(&sensor).map(SensorRuntime::m_ce)
    }

    /// The raw-alarm history of a sensor as `(window, raw)` pairs.
    pub fn raw_alarm_history(&self, sensor: SensorId) -> Option<&[(u64, bool)]> {
        self.sensors.get(&sensor).map(SensorRuntime::raw_history)
    }

    /// The error/attack tracks opened for a sensor.
    pub fn tracks(&self, sensor: SensorId) -> Option<&[TrackRecord]> {
        self.sensors.get(&sensor).map(SensorRuntime::tracks)
    }

    /// Whether a filtered alarm was ever raised for the sensor.
    pub fn ever_alarmed(&self, sensor: SensorId) -> bool {
        self.sensors
            .get(&sensor)
            .map(SensorRuntime::ever_alarmed)
            .unwrap_or(false)
    }

    /// Memoized network-level verdict (see
    /// [`sentinet_core::Pipeline::network_attack`]).
    pub fn network_attack(&self) -> Option<AttackType> {
        self.global.network_attack()
    }

    /// Classifies one sensor (see [`sentinet_core::Pipeline::classify`]).
    pub fn classify(&self, sensor: SensorId) -> Diagnosis {
        self.global.classify(self.sensors.get(&sensor))
    }

    /// Classifies one sensor with the verdict's confidence.
    pub fn classify_with_confidence(&self, sensor: SensorId) -> (Diagnosis, f64) {
        self.global
            .classify_with_confidence(self.sensors.get(&sensor))
    }

    /// Classifies every sensor seen so far.
    pub fn classify_all(&self) -> BTreeMap<SensorId, Diagnosis> {
        self.sensors
            .iter()
            .map(|(&id, rt)| (id, self.global.classify(Some(rt))))
            .collect()
    }

    /// The `(window, correct, observable)` decisive-window history.
    pub fn state_history(&self) -> &[(u64, usize, usize)] {
        self.global.state_history()
    }

    /// Builds the operator-facing snapshot, identical in content to
    /// [`sentinet_core::Pipeline::report`] on the same trace.
    pub fn report(&self) -> PipelineReport {
        let key_states = match (self.global.states(), self.global.correct_model()) {
            (Some(states), Some(m_c)) => m_c
                .key_states(self.global.config().key_state_occupancy)
                .into_iter()
                .filter_map(|slot| {
                    states.centroid_any(slot).map(|c| StateSummary {
                        slot,
                        centroid: c.to_vec(),
                        occupancy: m_c.occupancy()[slot],
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        let sensors = self
            .sensors
            .iter()
            .map(|(&id, rt)| {
                let hist = rt.raw_history();
                let raw_alarm_rate = if hist.is_empty() {
                    0.0
                } else {
                    hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
                };
                SensorSummary {
                    sensor: id,
                    diagnosis: self.global.classify(Some(rt)),
                    raw_alarm_rate,
                    tracks: rt.tracks().iter().map(|t| (t.opened, t.closed)).collect(),
                }
            })
            .collect();
        PipelineReport {
            windows_processed: self.global.windows_processed(),
            key_states,
            network_attack: self.network_attack(),
            sensors,
        }
    }

    /// Builds the recovery plan from the run's diagnoses, identical to
    /// [`sentinet_core::RecoveryPlan::from_pipeline`] on the same
    /// trace.
    pub fn recovery_plan(&self) -> RecoveryPlan {
        let actions = self
            .sensors
            .iter()
            .map(|(&id, rt)| {
                let d = self.global.classify(Some(rt));
                (id, RecoveryAction::for_diagnosis(&d))
            })
            .collect();
        RecoveryPlan { actions }
    }
}
