//! `sentinet-engine` — sharded multi-collector execution of the
//! detection pipeline.
//!
//! The serial [`sentinet_core::Pipeline`] interleaves two kinds of
//! per-window work:
//!
//! - **per-sensor stages** — alarm filter update, `M_CE` online
//!   estimation, error/attack track management — which touch only one
//!   sensor's state ([`sentinet_core::SensorRuntime`]);
//! - **global stages** — clustering, observable/correct state
//!   identification, `M_CO`/`M_C`/`M_O` estimation, majority voting —
//!   which need every sensor's vote ([`sentinet_core::GlobalModel`]).
//!
//! The [`Engine`] shards the per-sensor stages across `num_shards`
//! worker threads (sensor *s* lives on shard `s mod num_shards` for
//! its whole life) while a single coordinator runs the global stages.
//! Per window the coordinator hands each shard a batched **label** job
//! (model-state snapshot + that shard's sensor representatives) and,
//! on decisive windows, a batched **step** job; explicit **grow** jobs
//! keep worker-side estimators sized to the coordinator's model-state
//! slots.
//!
//! The majority vote itself cannot be sharded: Eq. 4 elects the state
//! backed by the most sensors *across the whole network*, and every
//! subsequent stage (alarm generation, `M_CO`/`M_CE` updates) consumes
//! the elected state — so the vote is a per-window barrier between the
//! parallel label stage and the parallel step stage.
//!
//! Because every per-sensor float operation happens in the same order
//! on exactly one thread, and the global stages run unchanged on the
//! coordinator, the engine's output is **bit-for-bit identical** to
//! the serial pipeline at any shard count; `num_shards = 1` runs
//! inline without spawning threads at all.
//!
//! Multi-shard runs are **supervised** (see [`supervisor`]): each
//! worker is checkpointed every window, a crashed worker is restored
//! from its checkpoint and replayed, and a worker that keeps crashing
//! is quarantined — the run then completes degraded
//! ([`EngineRun::degraded`]) instead of aborting. The [`chaos`] module
//! injects deterministic worker faults through the same seam so the
//! recovery machinery is testable; the headline invariant — any fault
//! plan within the restart budget yields output bit-identical to the
//! uninterrupted serial pipeline — is checked by the `xtask` model
//! checker's fault schedules.
//!
//! The worker/coordinator message protocol is public in [`protocol`],
//! and the coordinator loop is generic over [`ShardBackend`], so the
//! `xtask` shard-schedule model checker can drive the *same* stage
//! code under every worker/coordinator interleaving and assert the
//! majority-vote barrier yields bit-identical outcomes.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sentinet_core::PipelineConfig;
//! use sentinet_engine::Engine;
//! use sentinet_sim::{gdi, simulate};
//!
//! let cfg = gdi::day_config();
//! let trace = simulate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(1));
//! let engine = Engine::new(PipelineConfig::default(), cfg.sample_period, 2);
//! let run = engine.process_trace(&trace).expect("workers healthy");
//! assert!(!run.outcomes().is_empty());
//! assert!(run.degraded().is_none());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use sentinet_cluster::ModelStates;
use sentinet_core::classify::{AttackType, Diagnosis};
use sentinet_core::{
    majority_vote, DegradedStatus, GlobalModel, ObservationWindow, PipelineConfig, PipelineReport,
    RecoveryAction, RecoveryPlan, SensorRuntime, SensorSummary, StateSummary, TrackRecord,
    WindowOutcome, WindowScratch, Windower,
};
use sentinet_hmm::OnlineHmmEstimator;
use sentinet_sim::{SensorId, Trace};
use std::collections::BTreeMap;
use std::fmt;

pub mod chaos;
pub mod supervisor;

pub use chaos::{corrupt_frames, corrupt_records, ChaosPlan, FaultKind, FaultPoint, FaultSpec};
pub use supervisor::SupervisorConfig;

pub mod protocol {
    //! The worker/coordinator message protocol of the sharded engine.
    //!
    //! One [`ShardWorker`] lives on each worker thread and owns the
    //! [`SensorRuntime`]s of its shard. The coordinator sends [`Job`]s,
    //! the worker answers with [`Reply`]s, and the coordinator folds
    //! arrival-ordered replies back into the serial pipeline's shapes
    //! via [`collect_labels`] / [`collect_steps`].
    //!
    //! Everything here is deterministic given a delivery order, which
    //! is exactly what the `xtask` model checker exploits: it replays
    //! the protocol under every worker/coordinator schedule and asserts
    //! the fold is order-insensitive.

    use super::*;
    use sentinet_core::{CheckpointError, SensorSnapshot};

    /// Work dispatched from the coordinator to one shard.
    ///
    /// `Clone` so the supervisor can keep a replay log and re-deliver
    /// an in-flight job to a restarted worker.
    #[derive(Debug, Clone)]
    pub enum Job {
        /// Label each representative against a model-state snapshot.
        Label {
            /// Snapshot of the coordinator's model states.
            states: ModelStates,
            /// This shard's `(sensor, window-mean)` representatives.
            means: Vec<(SensorId, Vec<f64>)>,
        },
        /// Run the per-sensor step of a decisive window.
        Step {
            /// Index of the window being stepped.
            window_index: u64,
            /// The majority-elected correct state `c_i`.
            correct: usize,
            /// Model-state slot count (sizes new estimators).
            num_slots: usize,
            /// This shard's `(sensor, label)` pairs.
            labels: Vec<(SensorId, usize)>,
        },
        /// Grow every sensor estimator to the new slot count.
        Grow {
            /// New model-state slot count.
            num_slots: usize,
        },
        /// Snapshot every sensor's state for the supervisor checkpoint.
        Snapshot,
        /// Hand the shard's sensors back and exit.
        Finish,
    }

    /// A shard's answer to a [`Job`].
    #[derive(Debug)]
    pub enum Reply {
        /// Labels for a [`Job::Label`]; `None` marks a sensor outside
        /// every active model state.
        Labels(Vec<(SensorId, Option<usize>)>),
        /// Alarm lists for a [`Job::Step`], in the shard's ascending
        /// sensor order.
        Stepped {
            /// Sensors whose label disagreed with the correct state.
            raw: Vec<SensorId>,
            /// Sensors whose filtered alarm is raised after this window.
            filtered: Vec<SensorId>,
        },
        /// Per-sensor checkpoints, answering [`Job::Snapshot`].
        Snapshot(Vec<(SensorId, SensorSnapshot)>),
        /// The shard's sensors, answering [`Job::Finish`].
        Done(BTreeMap<SensorId, SensorRuntime>),
    }

    /// The shard that owns sensor `id` under `num_shards` shards.
    pub fn shard_of(id: SensorId, num_shards: usize) -> usize {
        id.0 as usize % num_shards
    }

    /// The per-sensor half of the engine: executes [`Job`]s against the
    /// shard's own [`SensorRuntime`]s. Used verbatim by the engine's
    /// worker threads and by the `xtask` schedule explorer.
    #[derive(Debug)]
    pub struct ShardWorker {
        config: PipelineConfig,
        sensors: BTreeMap<SensorId, SensorRuntime>,
    }

    impl ShardWorker {
        /// Creates a worker with no sensors yet (they appear on their
        /// first [`Job::Step`]).
        pub fn new(config: PipelineConfig) -> Self {
            Self {
                config,
                sensors: BTreeMap::new(),
            }
        }

        /// Rebuilds a worker from checkpointed sensor state, as taken
        /// by [`ShardWorker::snapshot`] — the supervisor's restart
        /// path.
        ///
        /// # Errors
        ///
        /// [`CheckpointError`] if any snapshot is internally
        /// inconsistent (see
        /// [`SensorRuntime::from_snapshot`](sentinet_core::SensorRuntime::from_snapshot)).
        pub fn from_snapshot(
            config: PipelineConfig,
            snapshots: Vec<(SensorId, SensorSnapshot)>,
        ) -> Result<Self, CheckpointError> {
            let mut sensors = BTreeMap::new();
            for (id, snap) in snapshots {
                sensors.insert(id, SensorRuntime::from_snapshot(snap)?);
            }
            Ok(Self { config, sensors })
        }

        /// Checkpoints every sensor the shard owns, in ascending
        /// sensor order.
        pub fn snapshot(&self) -> Vec<(SensorId, SensorSnapshot)> {
            self.sensors
                .iter()
                .map(|(&id, rt)| (id, rt.snapshot()))
                .collect()
        }

        /// Executes one job. [`Job::Grow`] has no reply; every other
        /// job answers with exactly one [`Reply`]. After [`Job::Finish`]
        /// the worker is empty and should not be reused.
        pub fn handle(&mut self, job: Job) -> Option<Reply> {
            match job {
                Job::Label { states, means } => {
                    let labels = means
                        .iter()
                        .map(|(id, mean)| (*id, states.nearest(mean).map(|(s, _)| s)))
                        .collect();
                    Some(Reply::Labels(labels))
                }
                Job::Step {
                    window_index,
                    correct,
                    num_slots,
                    labels,
                } => {
                    let mut raw = Vec::new();
                    let mut filtered = Vec::new();
                    for (id, label) in labels {
                        let sensor = self
                            .sensors
                            .entry(id)
                            .or_insert_with(|| SensorRuntime::new(&self.config, num_slots));
                        let step = sensor.step(window_index, label, correct);
                        if step.raw {
                            raw.push(id);
                        }
                        if step.filtered {
                            filtered.push(id);
                        }
                    }
                    Some(Reply::Stepped { raw, filtered })
                }
                Job::Grow { num_slots } => {
                    for s in self.sensors.values_mut() {
                        s.grow(num_slots);
                    }
                    None
                }
                Job::Snapshot => Some(Reply::Snapshot(self.snapshot())),
                Job::Finish => Some(Reply::Done(std::mem::take(&mut self.sensors))),
            }
        }

        /// The shard's sensors (for post-run inspection).
        pub fn sensors(&self) -> &BTreeMap<SensorId, SensorRuntime> {
            &self.sensors
        }

        /// Consumes the worker, returning its sensors.
        pub fn into_sensors(self) -> BTreeMap<SensorId, SensorRuntime> {
            self.sensors
        }
    }

    /// Folds label replies (in arrival order) into the serial
    /// pipeline's label map. Returns `None` if any sensor fell outside
    /// every active model state — the serial pipeline then drops the
    /// whole window, so the engine must too — or if a reply is not a
    /// [`Reply::Labels`] (protocol corruption; unreachable with the
    /// engine's own workers).
    ///
    /// The fold is insensitive to arrival order: labels land in a
    /// [`BTreeMap`] keyed by sensor. The model checker asserts this
    /// under every schedule.
    pub fn collect_labels(replies: Vec<Reply>) -> Option<BTreeMap<SensorId, usize>> {
        let mut labels = BTreeMap::new();
        for reply in replies {
            let Reply::Labels(batch) = reply else {
                debug_assert!(false, "label barrier answered with a non-label reply");
                return None;
            };
            for (id, label) in batch {
                labels.insert(id, label?);
            }
        }
        Some(labels)
    }

    /// Folds step replies (in arrival order) into ascending-sensor
    /// alarm lists — the serial pipeline's iteration order. The final
    /// sort is what makes the fold arrival-order-insensitive; replies
    /// that are not [`Reply::Stepped`] are ignored (protocol
    /// corruption; unreachable with the engine's own workers).
    pub fn collect_steps(replies: Vec<Reply>) -> (Vec<SensorId>, Vec<SensorId>) {
        let mut raw_alarms = Vec::new();
        let mut filtered_alarms = Vec::new();
        for reply in replies {
            let Reply::Stepped { raw, filtered } = reply else {
                debug_assert!(false, "step barrier answered with a non-step reply");
                continue;
            };
            raw_alarms.extend(raw);
            filtered_alarms.extend(filtered);
        }
        raw_alarms.sort_unstable();
        filtered_alarms.sort_unstable();
        (raw_alarms, filtered_alarms)
    }
}

/// A failure of the shard protocol that the supervisor could not hide.
///
/// With the supervised backend these are edge conditions — worker
/// crashes are absorbed by restart/quarantine — but the coordinator
/// loop is typed to surface them instead of silently answering neutral
/// values as the pre-supervisor engine did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A worker vanished and could not be restored or quarantined.
    WorkerLost {
        /// The shard whose worker was lost.
        shard: usize,
    },
    /// A reply violated the protocol (wrong variant for the barrier).
    Protocol {
        /// The offending shard.
        shard: usize,
        /// What the coordinator expected vs. saw.
        what: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::WorkerLost { shard } => {
                write!(f, "shard {shard}: worker lost beyond recovery")
            }
            ShardError::Protocol { shard, what } => {
                write!(f, "shard {shard}: protocol violation: {what}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// How the coordinator executes per-sensor work. The engine ships two
/// implementations — inline (serial, `num_shards = 1`) and the
/// supervised thread pool — and the `xtask` model checker adds a
/// schedule-exploring third, all driven by the same [`window_pass`]
/// coordinator code.
pub trait ShardBackend {
    /// Labels every representative; `Ok(None)` if any sensor falls
    /// outside all active model states (the serial pipeline then drops
    /// the whole window, so the engine must too).
    ///
    /// # Errors
    ///
    /// [`ShardError`] if a shard's worker failed beyond recovery.
    fn label(
        &mut self,
        states: &ModelStates,
        representatives: &BTreeMap<SensorId, Vec<f64>>,
    ) -> Result<Option<BTreeMap<SensorId, usize>>, ShardError>;

    /// Runs the per-sensor step of a decisive window; returns the raw
    /// and filtered alarm lists in ascending sensor order (the serial
    /// pipeline's iteration order).
    ///
    /// # Errors
    ///
    /// [`ShardError`] if a shard's worker failed beyond recovery.
    fn step(
        &mut self,
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: &BTreeMap<SensorId, usize>,
    ) -> Result<(Vec<SensorId>, Vec<SensorId>), ShardError>;

    /// Resizes every shard's estimators after model-state growth.
    ///
    /// # Errors
    ///
    /// [`ShardError`] if a shard's worker failed beyond recovery.
    fn grow(&mut self, num_slots: usize) -> Result<(), ShardError>;
}

/// The single-shard backend: per-sensor stages run inline on the
/// coordinator's thread, no channels, no allocation beyond the sensor
/// map itself. This is the engine's no-chaos hot path.
struct InlineBackend {
    config: PipelineConfig,
    sensors: BTreeMap<SensorId, SensorRuntime>,
}

impl ShardBackend for InlineBackend {
    fn label(
        &mut self,
        states: &ModelStates,
        representatives: &BTreeMap<SensorId, Vec<f64>>,
    ) -> Result<Option<BTreeMap<SensorId, usize>>, ShardError> {
        let mut labels = BTreeMap::new();
        for (&id, mean) in representatives {
            match states.nearest(mean) {
                Some((label, _)) => {
                    labels.insert(id, label);
                }
                None => return Ok(None),
            }
        }
        Ok(Some(labels))
    }

    fn step(
        &mut self,
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: &BTreeMap<SensorId, usize>,
    ) -> Result<(Vec<SensorId>, Vec<SensorId>), ShardError> {
        let mut raw_alarms = Vec::new();
        let mut filtered_alarms = Vec::new();
        for (&id, &label) in labels {
            let sensor = self
                .sensors
                .entry(id)
                .or_insert_with(|| SensorRuntime::new(&self.config, num_slots));
            let step = sensor.step(window_index, label, correct);
            if step.raw {
                raw_alarms.push(id);
            }
            if step.filtered {
                filtered_alarms.push(id);
            }
        }
        Ok((raw_alarms, filtered_alarms))
    }

    fn grow(&mut self, num_slots: usize) -> Result<(), ShardError> {
        for s in self.sensors.values_mut() {
            s.grow(num_slots);
        }
        Ok(())
    }
}

/// Sharded multi-collector engine over one trace.
///
/// Construct once, then [`Engine::process_trace`] per trace. The
/// engine is the batch counterpart to the streaming
/// [`sentinet_core::Pipeline`]: it owns the shard pool for the
/// duration of a trace and returns an [`EngineRun`] exposing the same
/// post-run queries.
#[derive(Debug, Clone)]
pub struct Engine {
    config: PipelineConfig,
    sample_period: u64,
    num_shards: usize,
    supervisor: SupervisorConfig,
    chaos: ChaosPlan,
}

impl Engine {
    /// Creates an engine; `sample_period` as in
    /// [`sentinet_core::Pipeline::new`], `num_shards ≥ 1` worker
    /// shards (1 = inline serial execution, no threads).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `sample_period == 0`,
    /// or `num_shards == 0`.
    pub fn new(config: PipelineConfig, sample_period: u64, num_shards: usize) -> Self {
        config.validate();
        assert!(sample_period > 0, "sample period must be positive");
        assert!(num_shards > 0, "need at least one shard");
        Self {
            config,
            sample_period,
            num_shards,
            supervisor: SupervisorConfig::default(),
            chaos: ChaosPlan::new(),
        }
    }

    /// Replaces the supervisor tunables (restart budget, reply
    /// timeout, backoff) used by multi-shard runs.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Arms a chaos plan: the listed faults are injected into worker
    /// shards at the chosen windows. A non-empty plan forces the
    /// supervised backend even at one shard, since faults need a
    /// worker thread to kill.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// The configured shard count.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Processes a whole trace and returns the completed run.
    ///
    /// # Errors
    ///
    /// [`ShardError`] only if a worker failed beyond what the
    /// supervisor can recover or quarantine — crashes within the
    /// restart budget are invisible here, and crashes beyond it
    /// surface as [`EngineRun::degraded`], not as an error.
    pub fn process_trace(&self, trace: &Trace) -> Result<EngineRun, ShardError> {
        if self.num_shards == 1 && self.chaos.is_empty() {
            let mut backend = InlineBackend {
                config: self.config.clone(),
                sensors: BTreeMap::new(),
            };
            let (global, outcomes) =
                drive_trace(&self.config, self.sample_period, trace, &mut backend)?;
            Ok(EngineRun {
                global,
                sensors: backend.sensors,
                outcomes,
                degraded: None,
                shard_restarts: Vec::new(),
            })
        } else {
            let mut backend = supervisor::SupervisedBackend::launch(
                self.config.clone(),
                self.supervisor.clone(),
                self.chaos.clone(),
                self.num_shards,
            );
            let (global, outcomes) =
                drive_trace(&self.config, self.sample_period, trace, &mut backend)?;
            let harvest = backend.finish()?;
            Ok(EngineRun {
                global,
                sensors: harvest.sensors,
                outcomes,
                degraded: harvest.degraded,
                shard_restarts: harvest.shard_restarts,
            })
        }
    }
}

/// The coordinator loop: windowing plus the global stages, with
/// per-sensor stages delegated to `backend`. This is the exact loop
/// [`Engine::process_trace`] runs; it is public so the `xtask`
/// schedule explorer can drive it with a schedule-controlled backend.
///
/// # Errors
///
/// Propagates the backend's [`ShardError`]s.
pub fn drive_trace(
    config: &PipelineConfig,
    sample_period: u64,
    trace: &Trace,
    backend: &mut impl ShardBackend,
) -> Result<(GlobalModel, Vec<WindowOutcome>), ShardError> {
    let mut global = GlobalModel::new(config.clone());
    let mut windower = Windower::new(config.window_samples as u64 * sample_period);
    let mut scratch = WindowScratch::new();
    let mut outcomes = Vec::new();
    for (time, sensor, reading) in trace.delivered() {
        for window in windower.push(time, sensor, reading.values()) {
            if let Some(o) = window_pass(&mut global, backend, &mut scratch, &window)? {
                outcomes.push(o);
            }
            windower.recycle(window);
        }
    }
    if let Some(window) = windower.finish() {
        if let Some(o) = window_pass(&mut global, backend, &mut scratch, &window)? {
            outcomes.push(o);
        }
    }
    Ok((global, outcomes))
}

/// One window through the same stage order as the serial pipeline's
/// `analyze_window`: bootstrap absorption, observable-state coverage,
/// the parallel label stage, the majority-vote barrier, the parallel
/// step stage, and model-state maintenance. `Ok(None)` means the
/// window was dropped (bootstrap, indecisive vote, uncovered mean) —
/// exactly when the serial pipeline drops it.
///
/// # Errors
///
/// Propagates the backend's [`ShardError`]s.
pub fn window_pass(
    global: &mut GlobalModel,
    backend: &mut impl ShardBackend,
    scratch: &mut WindowScratch,
    window: &ObservationWindow,
) -> Result<Option<WindowOutcome>, ShardError> {
    if !global.absorb_bootstrap(window) {
        return Ok(None);
    }
    let trim = global.config().observable_trim;
    let majority_fraction = global.config().majority_fraction;
    let mean = window.trimmed_mean_with(trim, scratch);
    if global.cover_window_mean(mean) {
        backend.grow(global.num_slots())?;
    }
    let Some(mean) = mean else {
        return Ok(None);
    };

    let representatives = window.sensor_means();
    let (observable, labels) = {
        let Some(states) = global.states() else {
            return Ok(None);
        };
        let Some((observable, _)) = states.nearest(mean) else {
            return Ok(None);
        };
        match backend.label(states, &representatives)? {
            Some(labels) => (observable, labels),
            None => return Ok(None),
        }
    };
    let Some((correct, decisive)) = majority_vote(&labels, majority_fraction) else {
        return Ok(None);
    };

    if decisive {
        global.record_decisive(correct, observable);
    }

    let window_index = global.windows_processed();
    let num_slots = global.num_slots();
    let (raw_alarms, filtered_alarms) = if decisive {
        backend.step(window_index, correct, num_slots, &labels)?
    } else {
        (Vec::new(), Vec::new())
    };

    let points: Vec<Vec<f64>> = representatives.into_values().collect();
    let (cluster_events, grew) = global.finish_window(&points);
    if grew {
        backend.grow(global.num_slots())?;
    }

    Ok(Some(WindowOutcome {
        index: window_index,
        start: window.start,
        observable,
        correct,
        raw_alarms,
        filtered_alarms,
        cluster_events,
    }))
}

/// A completed engine run: every window outcome plus the final models,
/// answering the same post-run queries as the serial pipeline.
#[derive(Debug)]
pub struct EngineRun {
    global: GlobalModel,
    sensors: BTreeMap<SensorId, SensorRuntime>,
    outcomes: Vec<WindowOutcome>,
    degraded: Option<DegradedStatus>,
    shard_restarts: Vec<(usize, u32)>,
}

impl EngineRun {
    /// Every processed window, in order.
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    /// Consumes the run, returning the outcomes.
    pub fn into_outcomes(self) -> Vec<WindowOutcome> {
        self.outcomes
    }

    /// The global model (states, `M_CO`, histories).
    pub fn global(&self) -> &GlobalModel {
        &self.global
    }

    /// Number of windows fully processed (post-bootstrap).
    pub fn windows_processed(&self) -> u64 {
        self.global.windows_processed()
    }

    /// `Some` iff the supervisor quarantined at least one shard: the
    /// listed sensors stopped being stepped (and voting) partway
    /// through the run. A run that recovered every crash within budget
    /// reports `None` here and is bit-identical to the serial
    /// pipeline.
    pub fn degraded(&self) -> Option<&DegradedStatus> {
        self.degraded.as_ref()
    }

    /// `(shard, restart count)` for every shard the supervisor
    /// respawned at least once, quarantined or not. Non-empty with
    /// `degraded() == None` means every crash was recovered exactly.
    pub fn shard_restarts(&self) -> &[(usize, u32)] {
        &self.shard_restarts
    }

    /// Sensors seen so far.
    pub fn sensor_ids(&self) -> Vec<SensorId> {
        self.sensors.keys().copied().collect()
    }

    /// The per-sensor `M_CE` estimator.
    pub fn m_ce(&self, sensor: SensorId) -> Option<&OnlineHmmEstimator> {
        self.sensors.get(&sensor).map(SensorRuntime::m_ce)
    }

    /// The raw-alarm history of a sensor as `(window, raw)` pairs.
    pub fn raw_alarm_history(&self, sensor: SensorId) -> Option<&[(u64, bool)]> {
        self.sensors.get(&sensor).map(SensorRuntime::raw_history)
    }

    /// The error/attack tracks opened for a sensor.
    pub fn tracks(&self, sensor: SensorId) -> Option<&[TrackRecord]> {
        self.sensors.get(&sensor).map(SensorRuntime::tracks)
    }

    /// Whether a filtered alarm was ever raised for the sensor.
    pub fn ever_alarmed(&self, sensor: SensorId) -> bool {
        self.sensors
            .get(&sensor)
            .map(SensorRuntime::ever_alarmed)
            .unwrap_or(false)
    }

    /// Memoized network-level verdict (see
    /// [`sentinet_core::Pipeline::network_attack`]).
    pub fn network_attack(&self) -> Option<AttackType> {
        self.global.network_attack()
    }

    /// Classifies one sensor (see [`sentinet_core::Pipeline::classify`]).
    pub fn classify(&self, sensor: SensorId) -> Diagnosis {
        self.global.classify(self.sensors.get(&sensor))
    }

    /// Classifies one sensor with the verdict's confidence.
    pub fn classify_with_confidence(&self, sensor: SensorId) -> (Diagnosis, f64) {
        self.global
            .classify_with_confidence(self.sensors.get(&sensor))
    }

    /// Classifies every sensor seen so far.
    pub fn classify_all(&self) -> BTreeMap<SensorId, Diagnosis> {
        self.sensors
            .iter()
            .map(|(&id, rt)| (id, self.global.classify(Some(rt))))
            .collect()
    }

    /// The `(window, correct, observable)` decisive-window history.
    pub fn state_history(&self) -> &[(u64, usize, usize)] {
        self.global.state_history()
    }

    /// Builds the operator-facing snapshot, identical in content to
    /// [`sentinet_core::Pipeline::report`] on the same trace — plus
    /// the degraded-mode status when shards were quarantined.
    pub fn report(&self) -> PipelineReport {
        let key_states = match (self.global.states(), self.global.correct_model()) {
            (Some(states), Some(m_c)) => m_c
                .key_states(self.global.config().key_state_occupancy)
                .into_iter()
                .filter_map(|slot| {
                    states.centroid_any(slot).map(|c| StateSummary {
                        slot,
                        centroid: c.to_vec(),
                        occupancy: m_c.occupancy()[slot],
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        let sensors = self
            .sensors
            .iter()
            .map(|(&id, rt)| {
                let hist = rt.raw_history();
                let raw_alarm_rate = if hist.is_empty() {
                    0.0
                } else {
                    hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
                };
                SensorSummary {
                    sensor: id,
                    diagnosis: self.global.classify(Some(rt)),
                    raw_alarm_rate,
                    tracks: rt.tracks().iter().map(|t| (t.opened, t.closed)).collect(),
                }
            })
            .collect();
        PipelineReport {
            windows_processed: self.global.windows_processed(),
            key_states,
            network_attack: self.network_attack(),
            sensors,
            degraded: self.degraded.clone(),
        }
    }

    /// Builds the recovery plan from the run's diagnoses, identical to
    /// [`sentinet_core::RecoveryPlan::from_pipeline`] on the same
    /// trace — except that quarantined sensors are forced to
    /// [`RecoveryAction::MaskAndService`]: their shard stopped
    /// contributing mid-run, so they need servicing regardless of what
    /// their stale data says.
    pub fn recovery_plan(&self) -> RecoveryPlan {
        let actions = self
            .sensors
            .iter()
            .map(|(&id, rt)| {
                let d = self.global.classify(Some(rt));
                (id, RecoveryAction::for_diagnosis(&d))
            })
            .collect();
        let mut plan = RecoveryPlan { actions };
        if let Some(degraded) = &self.degraded {
            plan.mask_quarantined(degraded);
        }
        plan
    }
}
