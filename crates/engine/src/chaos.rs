//! Deterministic chaos plans: seeded, replayable system-fault
//! injection for the sharded engine.
//!
//! A [`ChaosPlan`] names *where* a fault fires — shard, window, and
//! protocol point (label or step barrier) — and *what* fires: a worker
//! panic, a swallowed reply, or a delayed reply. The supervisor
//! ([`crate::supervisor`]) arms each fault just before dispatching the
//! matching job, so the same plan against the same trace reproduces
//! the same crash sites exactly; the `xtask` model checker exploits
//! this to prove kill-anywhere determinism, and the
//! `sentinet --chaos-seed` flag exposes [`ChaosPlan::seeded`] plans to
//! operators.
//!
//! Window coordinates count *label barriers*: window 0 is the first
//! post-bootstrap window that reaches the label stage. A fault aimed
//! at a window the run never reaches simply never fires.
//!
//! [`corrupt_records`] covers the third fault class — ingest-boundary
//! corruption (NaN/∞ payloads, duplicated and reordered timestamps) —
//! to be fed through the `sentinet-sim` sanitizer rather than the
//! shard protocol. [`corrupt_frames`] covers the fourth: *wire-level*
//! corruption of already-encoded frames (torn tails, flipped CRC
//! bytes, duplicated frames), injected below the parser so the
//! gateway's framing layer — not post-parse validation — must catch
//! it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_sim::RawRecord;

/// Which protocol barrier of a window a fault fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The label barrier (before the majority vote).
    Label,
    /// The step barrier of a decisive window (after the vote). If the
    /// window is indecisive the barrier never happens and the fault
    /// does not fire.
    Step,
}

/// What happens to the worker when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics inside the per-sensor code path; the panic is
    /// caught by the worker's unwind boundary and reported to the
    /// supervisor as a crash.
    Panic,
    /// The worker executes the job but swallows its reply and keeps
    /// running — a hung/partitioned worker. The supervisor's reply
    /// timeout treats it as crashed and supersedes it.
    DropReply,
    /// The worker sleeps before answering. Below the supervisor's
    /// reply timeout this is harmless jitter; above it, the worker is
    /// superseded and its late reply discarded by the epoch filter.
    DelayReply {
        /// How long the worker sleeps before replying.
        millis: u64,
    },
}

/// One scheduled fault: fire `kind` the next `count` times shard
/// `shard` receives the `point` job of window `window`.
///
/// `count > 1` re-fires the fault on the supervisor's re-delivery
/// after recovery, so `count = max_shard_restarts + 1` is the recipe
/// for forcing a quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The shard whose worker is targeted.
    pub shard: usize,
    /// Window coordinate (label-barrier count, 0-based).
    pub window: u64,
    /// Which barrier of that window.
    pub point: FaultPoint,
    /// What fires.
    pub kind: FaultKind,
    /// How many times it fires before burning out.
    pub count: u32,
}

/// A deterministic, replayable fault schedule for one engine run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// The scheduled faults, matched in order.
    pub faults: Vec<FaultSpec>,
}

impl ChaosPlan {
    /// An empty plan (no faults — the engine's default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds one fault to the plan.
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// The single-fault plan used throughout the test suites: one
    /// worker panic at the given shard/window/point.
    pub fn panic_at(shard: usize, window: u64, point: FaultPoint) -> Self {
        Self::new().with_fault(FaultSpec {
            shard,
            window,
            point,
            kind: FaultKind::Panic,
            count: 1,
        })
    }

    /// A reproducible random plan: `num_faults` single-shot faults
    /// drawn uniformly over `num_shards × num_windows × {label, step}`
    /// and the three fault kinds. The same seed always yields the same
    /// plan — this is what `--chaos-seed` runs.
    pub fn seeded(seed: u64, num_shards: usize, num_windows: u64, num_faults: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = num_shards.max(1);
        let windows = num_windows.max(1) as usize;
        let mut plan = Self::new();
        for _ in 0..num_faults {
            let shard = rng.gen_range(0usize..shards);
            let window = rng.gen_range(0usize..windows) as u64;
            let point = if rng.gen_range(0usize..2) == 0 {
                FaultPoint::Label
            } else {
                FaultPoint::Step
            };
            let kind = match rng.gen_range(0usize..3) {
                0 => FaultKind::Panic,
                1 => FaultKind::DropReply,
                _ => FaultKind::DelayReply {
                    millis: rng.gen_range(1u64..6),
                },
            };
            plan = plan.with_fault(FaultSpec {
                shard,
                window,
                point,
                kind,
                count: 1,
            });
        }
        plan
    }

    /// Consumes one firing of the first matching live fault, if any.
    /// Called by the supervisor just before dispatching the matching
    /// job; decrementing on fire is what makes re-delivery after a
    /// recovery run clean (for `count = 1`) or crash again (for
    /// higher counts).
    pub(crate) fn take(
        &mut self,
        shard: usize,
        window: u64,
        point: FaultPoint,
    ) -> Option<FaultKind> {
        let fault = self
            .faults
            .iter_mut()
            .find(|f| f.shard == shard && f.window == window && f.point == point && f.count > 0)?;
        fault.count -= 1;
        Some(fault.kind)
    }
}

/// Corrupts a record stream the way broken ADCs and store-and-forward
/// radios do: NaN/∞ payloads, duplicated timestamps, and stale
/// (out-of-order) retransmissions, each injected with probability
/// `rate` per record, deterministically from `seed`. Every clean
/// record is preserved; corruption is either applied to a copy's
/// payload or appended as an extra record, so feeding the output
/// through the `sentinet-sim` sanitizer must recover exactly the
/// accepted originals.
pub fn corrupt_records(records: &[RawRecord], seed: u64, rate: f64) -> Vec<RawRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(records.len());
    for record in records {
        let corrupt = rng.gen::<f64>() < rate;
        let pick = rng.gen_range(0usize..4);
        match (corrupt, pick) {
            (true, 0) => {
                let mut bad = record.clone();
                if let Some(v) = bad.values.first_mut() {
                    *v = f64::NAN;
                }
                out.push(bad);
            }
            (true, 1) => {
                let mut bad = record.clone();
                if let Some(v) = bad.values.last_mut() {
                    *v = f64::INFINITY;
                }
                out.push(bad);
            }
            (true, 2) => {
                out.push(record.clone());
                out.push(record.clone()); // duplicate timestamp
            }
            (true, _) => {
                out.push(record.clone());
                let mut stale = record.clone();
                stale.time = stale.time.saturating_sub(1);
                out.push(stale); // out-of-order retransmission
            }
            (false, _) => out.push(record.clone()),
        }
    }
    out
}

/// Wire-level corruption over already-encoded frames (opaque byte
/// vectors — this function knows nothing of the gateway's codec, so
/// it can corrupt any framed byte stream). Roughly `rate` of the
/// frames are attacked, deterministically from `seed`, with one of:
///
/// * **truncated frame** — the tail is cut mid-record (a torn write
///   or dropped carrier), leaving 1..len-1 bytes;
/// * **flipped CRC byte** — one bit of the 4-byte CRC trailer flips,
///   so the payload parses but the checksum must reject it;
/// * **duplicated frame** — the frame is delivered twice back to
///   back (a retransmission whose ack was lost).
///
/// Truncation and CRC flips *replace* the clean frame (the damage
/// models a frame that never arrives intact), so consumers must treat
/// them as connection-fatal losses to be re-delivered by retry.
/// Empty frames pass through untouched.
pub fn corrupt_frames(frames: &[Vec<u8>], seed: u64, rate: f64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(frames.len());
    for frame in frames {
        let corrupt = rng.gen::<f64>() < rate;
        let pick = rng.gen_range(0usize..3);
        if !corrupt || frame.is_empty() {
            out.push(frame.clone());
            continue;
        }
        match pick {
            0 => {
                // Torn tail: keep a strict, nonempty prefix (1-byte
                // frames pass through — there is nothing to tear).
                let keep = if frame.len() < 2 {
                    frame.len()
                } else {
                    1 + rng.gen_range(0..frame.len() - 1)
                };
                out.push(frame[..keep].to_vec());
            }
            1 => {
                // Flip one bit of the CRC trailer (last 4 bytes).
                let mut bad = frame.clone();
                let tail = bad.len().saturating_sub(4);
                let at = tail + rng.gen_range(0..bad.len() - tail);
                let bit = rng.gen_range(0u32..8);
                bad[at] ^= 1 << bit;
                out.push(bad);
            }
            _ => {
                out.push(frame.clone());
                out.push(frame.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinet_sim::{sanitize_records, SensorId};

    #[test]
    fn take_matches_and_burns_out() {
        let mut plan = ChaosPlan::panic_at(1, 3, FaultPoint::Label);
        assert_eq!(plan.take(0, 3, FaultPoint::Label), None);
        assert_eq!(plan.take(1, 2, FaultPoint::Label), None);
        assert_eq!(plan.take(1, 3, FaultPoint::Step), None);
        assert_eq!(plan.take(1, 3, FaultPoint::Label), Some(FaultKind::Panic));
        assert_eq!(plan.take(1, 3, FaultPoint::Label), None, "burned out");
    }

    #[test]
    fn multi_count_faults_refire() {
        let mut plan = ChaosPlan::new().with_fault(FaultSpec {
            shard: 0,
            window: 0,
            point: FaultPoint::Step,
            kind: FaultKind::DropReply,
            count: 2,
        });
        assert!(plan.take(0, 0, FaultPoint::Step).is_some());
        assert!(plan.take(0, 0, FaultPoint::Step).is_some());
        assert!(plan.take(0, 0, FaultPoint::Step).is_none());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = ChaosPlan::seeded(42, 3, 10, 8);
        let b = ChaosPlan::seeded(42, 3, 10, 8);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            assert!(f.shard < 3);
            assert!(f.window < 10);
            assert_eq!(f.count, 1);
        }
        let c = ChaosPlan::seeded(43, 3, 10, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn corrupt_records_is_deterministic_and_sanitizer_recovers() {
        let clean: Vec<RawRecord> = (0..50)
            .map(|i| RawRecord {
                time: 300 * (i as u64 + 1),
                sensor: SensorId((i % 5) as u16),
                values: vec![15.0 + i as f64 * 0.1, 80.0],
            })
            .collect();
        let a = corrupt_records(&clean, 7, 0.4);
        let b = corrupt_records(&clean, 7, 0.4);
        // Bitwise comparison: injected NaNs are != themselves.
        let bits = |records: &[RawRecord]| -> Vec<(u64, u16, Vec<u64>)> {
            records
                .iter()
                .map(|r| {
                    let vs = r.values.iter().map(|v| v.to_bits()).collect();
                    (r.time, r.sensor.0, vs)
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed, same corruption");
        assert!(a.len() > clean.len(), "duplicates/replays were appended");

        let (trace, report) = sanitize_records(a);
        assert!(!report.is_clean(), "corruption must be caught");
        // Every record the sanitizer accepted is finite and per-sensor
        // strictly increasing — the estimators never see the garbage.
        assert_eq!(trace.delivered().count(), report.accepted);
        for (_, _, reading) in trace.delivered() {
            assert!(reading.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn zero_rate_is_identity() {
        let clean: Vec<RawRecord> = (0..10)
            .map(|i| RawRecord {
                time: 300 * (i as u64 + 1),
                sensor: SensorId(0),
                values: vec![1.0],
            })
            .collect();
        assert_eq!(corrupt_records(&clean, 1, 0.0), clean);
    }

    #[test]
    fn corrupt_frames_is_deterministic_and_hits_every_mode() {
        let frames: Vec<Vec<u8>> = (0..200u32)
            .map(|i| i.to_le_bytes().iter().cycle().take(24).copied().collect())
            .collect();
        let a = corrupt_frames(&frames, 11, 0.5);
        let b = corrupt_frames(&frames, 11, 0.5);
        assert_eq!(a, b, "same seed, same corruption");
        assert_eq!(corrupt_frames(&frames, 11, 0.0), frames, "zero rate");

        let clean: std::collections::BTreeSet<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let truncated = a.iter().filter(|f| f.len() < 24 && !f.is_empty()).count();
        let flipped = a
            .iter()
            .filter(|f| f.len() == 24 && !clean.contains(f.as_slice()))
            .count();
        assert!(truncated > 0, "no torn frames injected");
        assert!(flipped > 0, "no CRC flips injected");
        assert!(a.len() > frames.len(), "no duplicate frames injected");
        // Flips touch only the 4-byte CRC trailer.
        for f in a.iter().filter(|f| f.len() == 24) {
            if let Some(orig) = frames.iter().find(|o| o[..20] == f[..20]) {
                let diff = orig.iter().zip(f.iter()).filter(|(x, y)| x != y).count();
                assert!(diff <= 1, "at most one flipped byte");
            }
        }
    }
}
