//! Determinism/equivalence suite: the sharded engine must produce
//! output **bit-for-bit identical** to the serial
//! `sentinet_core::Pipeline` at every shard count, on clean, faulty,
//! and attacked fixed-seed scenarios.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_engine::Engine;
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{gdi, simulate, SensorId, Trace, DAY_S};

fn clean_scenario(seed: u64, days: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg.sample_period)
}

fn stuck_at_scenario(seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.duration = 4 * DAY_S;
    let mut rng = StdRng::seed_from_u64(seed);
    let clean = simulate(&cfg, &mut rng);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    (faulty, cfg.sample_period)
}

fn creation_scenario(seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.duration = 5 * DAY_S;
    cfg.environment = sentinet_sim::EnvironmentModel::Constant(vec![12.0, 95.0]);
    let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    let attacks: Vec<AttackInjection> = (0..4)
        .map(|i| AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            start: 2 * DAY_S + i * 12 * 3600,
            end: Some(2 * DAY_S + i * 12 * 3600 + 6 * 3600),
        })
        .collect();
    let attacked = inject_attacks(&clean, &attacks, &cfg.ranges);
    (attacked, cfg.sample_period)
}

/// Asserts the engine at `num_shards` matches the serial pipeline on
/// every observable product: window outcomes, decisive-window history,
/// diagnoses, confidences, network verdict, alarm/track state, and the
/// per-sensor `M_CE` matrices (exact equality — the per-sensor float
/// work runs in serial order on exactly one thread).
fn assert_equivalent(trace: &Trace, sample_period: u64, num_shards: usize) {
    let mut pipeline = Pipeline::new(PipelineConfig::default(), sample_period);
    let serial_outcomes = pipeline.process_trace(trace);

    let engine = Engine::new(PipelineConfig::default(), sample_period, num_shards);
    let run = engine.process_trace(trace).expect("healthy run");

    assert!(run.degraded().is_none(), "no faults, no degradation");
    assert!(run.shard_restarts().is_empty(), "no faults, no restarts");
    assert_eq!(
        run.outcomes(),
        serial_outcomes.as_slice(),
        "window outcomes diverged at {num_shards} shards"
    );
    assert_eq!(run.windows_processed(), pipeline.windows_processed());
    assert_eq!(run.state_history(), pipeline.state_history());
    assert_eq!(run.sensor_ids(), pipeline.sensor_ids());
    assert_eq!(run.network_attack(), pipeline.network_attack());
    assert_eq!(run.classify_all(), pipeline.classify_all());
    for id in pipeline.sensor_ids() {
        assert_eq!(run.ever_alarmed(id), pipeline.ever_alarmed(id), "{id}");
        assert_eq!(run.tracks(id), pipeline.tracks(id), "{id}");
        assert_eq!(
            run.raw_alarm_history(id),
            pipeline.raw_alarm_history(id),
            "{id}"
        );
        let (serial_m_ce, engine_m_ce) = (pipeline.m_ce(id).unwrap(), run.m_ce(id).unwrap());
        assert_eq!(serial_m_ce, engine_m_ce, "M_CE diverged for {id}");
        let (sd, sc) = pipeline.classify_with_confidence(id);
        let (ed, ec) = run.classify_with_confidence(id);
        assert_eq!(sd, ed, "{id}");
        assert_eq!(sc.to_bits(), ec.to_bits(), "confidence diverged for {id}");
    }
}

#[test]
fn clean_trace_is_shard_invariant() {
    let (trace, period) = clean_scenario(11, 3);
    for shards in [1, 2, 4] {
        assert_equivalent(&trace, period, shards);
    }
}

#[test]
fn stuck_at_trace_is_shard_invariant() {
    let (trace, period) = stuck_at_scenario(20);
    for shards in [1, 2, 4] {
        assert_equivalent(&trace, period, shards);
    }
}

#[test]
fn creation_attack_trace_is_shard_invariant() {
    let (trace, period) = creation_scenario(7);
    for shards in [1, 2, 4] {
        assert_equivalent(&trace, period, shards);
    }
}

#[test]
fn engine_runs_are_deterministic_across_repeats() {
    let (trace, period) = stuck_at_scenario(33);
    let engine = Engine::new(PipelineConfig::default(), period, 3);
    let a = engine.process_trace(&trace).expect("healthy run");
    let b = engine.process_trace(&trace).expect("healthy run");
    assert_eq!(a.outcomes(), b.outcomes());
    assert_eq!(a.classify_all(), b.classify_all());
}

#[test]
fn shard_count_larger_than_sensor_count_is_fine() {
    let (trace, period) = clean_scenario(5, 2);
    assert_equivalent(&trace, period, 8);
}
