//! Chaos integration suite: the supervised engine under injected
//! system faults must either recover **bit-identically** to the serial
//! pipeline (crashes within the restart budget) or degrade explicitly
//! (quarantine) — never abort, never silently diverge.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig, RecoveryAction};
use sentinet_engine::{ChaosPlan, Engine, FaultKind, FaultPoint, FaultSpec, SupervisorConfig};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{gdi, simulate, SensorId, Trace, DAY_S};
use std::sync::Once;
use std::time::Duration;

/// Silences the panic hook for the chaos harness's own injected
/// panics; real panics still print. Installed once per test binary.
fn silence_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Short timeouts so DropReply faults resolve quickly in tests.
fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        reply_timeout: Duration::from_millis(200),
        restart_backoff: Duration::from_millis(1),
        ..SupervisorConfig::default()
    }
}

fn scenario(seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.duration = 2 * DAY_S;
    let mut rng = StdRng::seed_from_u64(seed);
    let clean = simulate(&cfg, &mut rng);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(4),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    (faulty, cfg.sample_period)
}

/// Runs the chaos plan at `num_shards` and asserts the crashed-and-
/// restored run is bit-identical to the serial pipeline on every
/// observable product.
fn assert_recovers_bit_identically(
    trace: &Trace,
    sample_period: u64,
    num_shards: usize,
    plan: ChaosPlan,
) {
    silence_chaos_panics();
    let mut pipeline = Pipeline::new(PipelineConfig::default(), sample_period);
    let serial_outcomes = pipeline.process_trace(trace);

    let engine = Engine::new(PipelineConfig::default(), sample_period, num_shards)
        .with_supervisor(fast_supervisor())
        .with_chaos(plan.clone());
    let run = engine.process_trace(trace).expect("supervised run");

    assert!(
        run.degraded().is_none(),
        "{plan:?}: within budget, must not quarantine"
    );
    assert_eq!(
        run.outcomes(),
        serial_outcomes.as_slice(),
        "{plan:?}: outcomes diverged"
    );
    assert_eq!(run.state_history(), pipeline.state_history());
    assert_eq!(run.classify_all(), pipeline.classify_all());
    assert_eq!(run.network_attack(), pipeline.network_attack());
    for id in pipeline.sensor_ids() {
        assert_eq!(run.raw_alarm_history(id), pipeline.raw_alarm_history(id));
        assert_eq!(run.tracks(id), pipeline.tracks(id));
        assert_eq!(run.ever_alarmed(id), pipeline.ever_alarmed(id));
        assert_eq!(
            pipeline.m_ce(id).unwrap(),
            run.m_ce(id).unwrap(),
            "{plan:?}: M_CE diverged for {id}"
        );
    }
    // The full operator-facing report — including the degraded field —
    // must be indistinguishable from the serial pipeline's.
    assert_eq!(run.report(), pipeline.report(), "{plan:?}: report diverged");
}

#[test]
fn single_panic_at_label_recovers_bit_identically() {
    let (trace, period) = scenario(21);
    for shard in 0..2 {
        for window in [0, 5, 20] {
            assert_recovers_bit_identically(
                &trace,
                period,
                2,
                ChaosPlan::panic_at(shard, window, FaultPoint::Label),
            );
        }
    }
}

#[test]
fn single_panic_at_step_recovers_bit_identically() {
    let (trace, period) = scenario(21);
    for shard in 0..2 {
        assert_recovers_bit_identically(
            &trace,
            period,
            2,
            ChaosPlan::panic_at(shard, 7, FaultPoint::Step),
        );
    }
}

#[test]
fn dropped_and_delayed_replies_recover_bit_identically() {
    let (trace, period) = scenario(22);
    for kind in [FaultKind::DropReply, FaultKind::DelayReply { millis: 5 }] {
        assert_recovers_bit_identically(
            &trace,
            period,
            2,
            ChaosPlan::new().with_fault(FaultSpec {
                shard: 1,
                window: 3,
                point: FaultPoint::Label,
                kind,
                count: 1,
            }),
        );
    }
}

#[test]
fn restarts_are_reported_even_when_fully_recovered() {
    silence_chaos_panics();
    let (trace, period) = scenario(23);
    let engine = Engine::new(PipelineConfig::default(), period, 2)
        .with_supervisor(fast_supervisor())
        .with_chaos(ChaosPlan::panic_at(0, 2, FaultPoint::Label));
    let run = engine.process_trace(&trace).expect("supervised run");
    assert!(run.degraded().is_none());
    assert_eq!(run.shard_restarts(), &[(0, 1)]);
}

#[test]
fn seeded_plans_are_replayable() {
    silence_chaos_panics();
    let (trace, period) = scenario(24);
    // Drop the delay faults: a DelayReply below the reply timeout is
    // harmless jitter but slow; keep the deterministic kinds.
    let plan = ChaosPlan {
        faults: ChaosPlan::seeded(99, 2, 10, 4)
            .faults
            .into_iter()
            .filter(|f| f.kind != FaultKind::DropReply)
            .map(|mut f| {
                if let FaultKind::DelayReply { millis } = &mut f.kind {
                    *millis = 1;
                }
                f
            })
            .collect(),
    };
    let engine = |p: ChaosPlan| {
        Engine::new(PipelineConfig::default(), period, 2)
            .with_supervisor(fast_supervisor())
            .with_chaos(p)
    };
    let a = engine(plan.clone()).process_trace(&trace).expect("run a");
    let b = engine(plan).process_trace(&trace).expect("run b");
    assert_eq!(a.outcomes(), b.outcomes());
    assert_eq!(a.classify_all(), b.classify_all());
    assert_eq!(a.shard_restarts(), b.shard_restarts());
    assert_eq!(a.report(), b.report());
}

#[test]
fn exhausting_the_restart_budget_quarantines_instead_of_aborting() {
    silence_chaos_panics();
    let (trace, period) = scenario(25);
    let budget = 2u32;
    // count = budget + 1: the fault re-fires on every re-delivery
    // until the shard is quarantined.
    let plan = ChaosPlan::new().with_fault(FaultSpec {
        shard: 1,
        window: 4,
        point: FaultPoint::Label,
        kind: FaultKind::Panic,
        count: budget + 1,
    });
    let engine =
        Engine::new(PipelineConfig::default(), period, 2).with_supervisor(SupervisorConfig {
            max_shard_restarts: budget,
            ..fast_supervisor()
        });
    let run = engine
        .with_chaos(plan)
        .process_trace(&trace)
        .expect("degraded, not dead");

    let degraded = run.degraded().expect("shard 1 must be quarantined");
    // Shard 1 of 2 owns the odd sensors; all 10 GDI sensors existed at
    // the crash window, so all five odd ones are quarantined.
    assert_eq!(
        degraded.quarantined_sensors,
        [1, 3, 5, 7, 9].map(SensorId).to_vec()
    );
    assert_eq!(degraded.shard_restarts, vec![(1, budget)]);
    // The run kept going on the surviving shard.
    assert!(run.windows_processed() > 5);
    // Quarantined sensors still answer post-run queries from their
    // last checkpoint...
    assert!(run.m_ce(SensorId(1)).is_some());
    // ...the report carries the degraded status...
    assert_eq!(run.report().degraded.as_ref(), Some(degraded));
    // ...and the recovery plan forces them into servicing.
    let plan = run.recovery_plan();
    for id in [1u16, 3, 5, 7, 9] {
        assert_eq!(
            plan.action(SensorId(id)),
            &RecoveryAction::MaskAndService,
            "sensor{id}"
        );
    }
    assert_eq!(plan.action(SensorId(0)), &RecoveryAction::None);
}

#[test]
fn chaos_at_one_shard_uses_the_supervised_backend() {
    silence_chaos_panics();
    let (trace, period) = scenario(26);
    let mut pipeline = Pipeline::new(PipelineConfig::default(), period);
    let serial = pipeline.process_trace(&trace);
    let engine = Engine::new(PipelineConfig::default(), period, 1)
        .with_supervisor(fast_supervisor())
        .with_chaos(ChaosPlan::panic_at(0, 1, FaultPoint::Label));
    let run = engine.process_trace(&trace).expect("supervised run");
    assert_eq!(run.outcomes(), serial.as_slice());
    assert_eq!(run.shard_restarts(), &[(0, 1)]);
}
