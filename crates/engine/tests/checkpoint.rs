//! Checkpoint round-trip at the system level: snapshotting every
//! sensor through the text codec and restoring must preserve the
//! operator-facing outputs — diagnosis, confidence, alarm and track
//! history — bit-for-bit, and a restored worker must continue exactly
//! like the original.

use sentinet_core::checkpoint::{decode_shard, encode_shard};
use sentinet_core::{Pipeline, PipelineConfig, SensorRuntime};
use sentinet_engine::protocol::{collect_labels, collect_steps, Job, Reply, ShardWorker};
use sentinet_engine::{drive_trace, ShardBackend, ShardError};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{gdi, simulate, SensorId, Trace, DAY_S};
use std::collections::BTreeMap;

/// A trivially faithful one-worker backend: every job runs in-process,
/// so the resulting `GlobalModel` and sensors are reachable directly.
struct LocalBackend {
    worker: ShardWorker,
}

impl ShardBackend for LocalBackend {
    fn label(
        &mut self,
        states: &sentinet_cluster::ModelStates,
        representatives: &BTreeMap<SensorId, Vec<f64>>,
    ) -> Result<Option<BTreeMap<SensorId, usize>>, ShardError> {
        let means = representatives
            .iter()
            .map(|(&id, mean)| (id, mean.clone()))
            .collect();
        let reply = self
            .worker
            .handle(Job::Label {
                states: states.clone(),
                means,
            })
            .expect("label replies");
        Ok(collect_labels(vec![reply]))
    }

    fn step(
        &mut self,
        window_index: u64,
        correct: usize,
        num_slots: usize,
        labels: &BTreeMap<SensorId, usize>,
    ) -> Result<(Vec<SensorId>, Vec<SensorId>), ShardError> {
        let reply = self
            .worker
            .handle(Job::Step {
                window_index,
                correct,
                num_slots,
                labels: labels.iter().map(|(&id, &l)| (id, l)).collect(),
            })
            .expect("step replies");
        Ok(collect_steps(vec![reply]))
    }

    fn grow(&mut self, num_slots: usize) -> Result<(), ShardError> {
        assert!(self.worker.handle(Job::Grow { num_slots }).is_none());
        Ok(())
    }
}

fn scenario() -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.duration = 3 * DAY_S;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(41);
    let clean = simulate(&cfg, &mut rng);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(2),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    (faulty, cfg.sample_period)
}

#[test]
fn restore_preserves_classification_and_alarm_outputs() {
    let (trace, period) = scenario();
    let config = PipelineConfig::default();

    // Serial reference for the classification outputs.
    let mut pipeline = Pipeline::new(config.clone(), period);
    pipeline.process_trace(&trace);

    let mut backend = LocalBackend {
        worker: ShardWorker::new(config.clone()),
    };
    let (global, _) = drive_trace(&config, period, &trace, &mut backend).expect("local backend");

    let shard = backend.worker.snapshot();
    let decoded = decode_shard(&encode_shard(&shard)).expect("codec round trip");
    assert_eq!(decoded, shard, "codec changed the snapshot");

    let restored_worker = ShardWorker::from_snapshot(config, decoded).expect("snapshots are valid");
    let originals = backend.worker.into_sensors();
    let restored = restored_worker.into_sensors();
    assert_eq!(
        originals.keys().collect::<Vec<_>>(),
        restored.keys().collect::<Vec<_>>()
    );
    assert!(originals.keys().any(|&id| id == SensorId(2)));

    for (id, original) in &originals {
        let twin = &restored[id];
        // Classification and confidence from the restored state must be
        // bit-identical to both the original runtime and the pipeline.
        assert_eq!(
            global.classify(Some(original)),
            global.classify(Some(twin)),
            "{id}: diagnosis changed across restore"
        );
        let (diag_orig, conf_orig) = global.classify_with_confidence(Some(original));
        let (diag_twin, conf_twin) = global.classify_with_confidence(Some(twin));
        assert_eq!(diag_orig, diag_twin, "{id}");
        assert_eq!(conf_orig.to_bits(), conf_twin.to_bits(), "{id}: confidence");
        assert_eq!(diag_twin, pipeline.classify(*id), "{id}: vs serial");

        // Alarm and track products survive the round trip exactly.
        assert_eq!(original.raw_history(), twin.raw_history(), "{id}");
        assert_eq!(original.tracks(), twin.tracks(), "{id}");
        assert_eq!(original.ever_alarmed(), twin.ever_alarmed(), "{id}");
        assert_eq!(original.m_ce(), twin.m_ce(), "{id}");
    }
}

#[test]
fn restored_worker_continues_bit_identically_mid_run() {
    let (trace, period) = scenario();
    let config = PipelineConfig::default();

    let mut backend = LocalBackend {
        worker: ShardWorker::new(config.clone()),
    };
    drive_trace(&config, period, &trace, &mut backend).expect("local backend");

    // Restore mid-state, then step both workers through the same
    // additional windows: every reply must match.
    let decoded = decode_shard(&encode_shard(&backend.worker.snapshot())).expect("round trip");
    let mut twin = ShardWorker::from_snapshot(config, decoded).expect("valid snapshots");
    let ids: Vec<SensorId> = backend
        .worker
        .snapshot()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    let start = 1000u64;
    for w in 0..8u64 {
        let labels: Vec<(SensorId, usize)> = ids
            .iter()
            .map(|&id| (id, if (w + u64::from(id.0)) % 3 == 0 { 1 } else { 0 }))
            .collect();
        let job = Job::Step {
            window_index: start + w,
            correct: 0,
            num_slots: 2,
            labels,
        };
        let (a, b) = (backend.worker.handle(job.clone()), twin.handle(job));
        match (a, b) {
            (
                Some(Reply::Stepped { raw, filtered }),
                Some(Reply::Stepped {
                    raw: raw_t,
                    filtered: filtered_t,
                }),
            ) => {
                assert_eq!(raw, raw_t, "window {w}: raw alarms diverged");
                assert_eq!(filtered, filtered_t, "window {w}: filtered alarms diverged");
            }
            other => panic!("unexpected replies {other:?}"),
        }
    }
    let (a, b): (BTreeMap<_, SensorRuntime>, BTreeMap<_, SensorRuntime>) =
        (backend.worker.into_sensors(), twin.into_sensors());
    for (id, original) in &a {
        assert_eq!(original.m_ce(), b[id].m_ce(), "{id}: M_CE diverged");
        assert_eq!(original.tracks(), b[id].tracks(), "{id}: tracks diverged");
    }
}
