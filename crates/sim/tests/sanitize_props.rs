//! Property tests for the ingest sanitizer: whatever arrives off the
//! wire — NaN/∞ payloads, empty readings, duplicate and regressed
//! timestamps, inconsistent dimensionality, in any interleaving —
//! sanitization never panics, accounts for every record exactly once,
//! and the accepted stream is well-formed (finite, per-sensor strictly
//! increasing, dimension-consistent). The estimators never see garbage
//! unflagged.

use proptest::prelude::*;
use sentinet_sim::{sanitize_records, RawRecord, Sanitizer, SensorId};
use std::collections::BTreeMap;

/// Arbitrary wire input: short bursts of records over a handful of
/// sensors and a tight timestamp range, so duplicates, regressions and
/// dimension flips all occur frequently. Values are drawn from a pool
/// that includes every non-finite class.
fn raw_records() -> impl Strategy<Value = Vec<RawRecord>> {
    prop::collection::vec(
        (
            0u64..40,
            0u16..4,
            prop::collection::vec(
                prop::sample::select(vec![
                    17.0,
                    -3.5,
                    0.0,
                    f64::NAN,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                ]),
                0..4,
            ),
        ),
        0..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(time, sensor, values)| RawRecord {
                time,
                sensor: SensorId(sensor),
                values,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn every_record_is_accounted_for(records in raw_records()) {
        let total = records.len();
        let (trace, report) = sanitize_records(records);
        prop_assert_eq!(report.accepted + report.rejected.len(), total);
        prop_assert_eq!(trace.delivered().count(), report.accepted);
    }

    fn accepted_stream_is_well_formed(records in raw_records()) {
        let (trace, _report) = sanitize_records(records);
        let mut latest: BTreeMap<SensorId, u64> = BTreeMap::new();
        let mut dims: Option<usize> = None;
        for (time, sensor, reading) in trace.delivered() {
            prop_assert!(!reading.values().is_empty(), "empty reading reached the trace");
            for v in reading.values() {
                prop_assert!(v.is_finite(), "non-finite value reached the trace");
            }
            let d = *dims.get_or_insert(reading.values().len());
            prop_assert_eq!(reading.values().len(), d, "dimensionality drifted");
            if let Some(&prev) = latest.get(&sensor) {
                prop_assert!(time > prev, "{} regressed t={} after t={}", sensor, time, prev);
            }
            latest.insert(sensor, time);
        }
    }

    fn sanitization_is_idempotent(records in raw_records()) {
        let (trace, _first) = sanitize_records(records);
        let accepted: Vec<RawRecord> = trace
            .delivered()
            .map(|(time, sensor, reading)| RawRecord {
                time,
                sensor,
                values: reading.values().to_vec(),
            })
            .collect();
        let count = accepted.len();
        let (again, second) = sanitize_records(accepted);
        prop_assert!(second.is_clean(), "accepted output re-rejected: {:?}", second.rejected);
        prop_assert_eq!(again.delivered().count(), count);
    }

    fn rejections_never_advance_history(time in 1u64..100, sensor in 0u16..4) {
        let id = SensorId(sensor);
        let mut s = Sanitizer::new();
        let clean = |t: u64, v: f64| RawRecord { time: t, sensor: id, values: vec![v] };
        s.accept(clean(time, 1.0)).expect("clean record");
        // A rejected NaN at a later stamp must not claim the stamp...
        prop_assert!(s
            .accept(RawRecord { time: time + 1, sensor: id, values: vec![f64::NAN] })
            .is_err());
        // ...so the clean retransmission at that stamp still lands.
        prop_assert!(s.accept(clean(time + 1, 2.0)).is_ok());
    }
}
