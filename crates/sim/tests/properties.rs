//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_sim::{
    read_trace, simulate, write_trace, AttributeRange, DiurnalParams, EnvironmentModel, Gaussian,
    SimConfig, DAY_S,
};

fn any_config() -> impl Strategy<Value = SimConfig> {
    (
        1u16..8,
        1u64..4,     // hours of duration
        0.0f64..0.5, // loss
        0.0f64..0.3, // malformed
        0.0f64..3.0, // noise
    )
        .prop_map(|(sensors, hours, loss, malformed, noise)| SimConfig {
            num_sensors: sensors,
            sample_period: 300,
            duration: hours * 3600,
            noise_std: vec![noise, noise],
            ranges: vec![
                AttributeRange::new(-40.0, 60.0),
                AttributeRange::new(0.0, 100.0),
            ],
            loss_prob: loss,
            burst: None,
            malformed_prob: malformed,
            environment: EnvironmentModel::gdi(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_is_sorted_and_complete(cfg in any_config(), seed in 0u64..1000) {
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        // One record per (instant, sensor), sorted.
        let expected = cfg.num_samples() * cfg.num_sensors as u64;
        prop_assert_eq!(trace.len() as u64, expected);
        for pair in trace.records().windows(2) {
            prop_assert!((pair[0].time, pair[0].sensor) < (pair[1].time, pair[1].sensor));
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless(cfg in any_config(), seed in 0u64..1000) {
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let mut buf = Vec::new();
        write_trace(&trace, 2, &mut buf).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(trace, parsed);
    }

    #[test]
    fn csv_parser_never_panics_on_garbage(lines in prop::collection::vec(".{0,40}", 0..20)) {
        let mut text = String::from("time,sensor,status,v0\n");
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        // Must return Ok or Err, never panic.
        let _ = read_trace(text.as_bytes());
    }

    #[test]
    fn diurnal_values_bounded(
        t in 0u64..(40 * DAY_S),
        t_min in -10.0f64..15.0,
        spread in 1.0f64..30.0,
        seasonal in 0.0f64..3.0,
    ) {
        let p = DiurnalParams {
            t_min,
            t_max: t_min + spread,
            seasonal_amplitude: seasonal,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p);
        let v = env.value(t);
        prop_assert!(v[0] >= t_min - seasonal - 1e-9);
        prop_assert!(v[0] <= t_min + spread + seasonal + 1e-9);
        prop_assert!((0.0..=100.0).contains(&v[1]));
    }

    #[test]
    fn gaussian_sampling_matches_parameters(
        mean in -50.0f64..50.0,
        std in 0.0f64..5.0,
        seed in 0u64..200,
    ) {
        let g = Gaussian::new(mean, std);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        prop_assert!((m - mean).abs() < 0.2 + std * 0.12, "mean {m} vs {mean}");
        if std > 0.5 {
            let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
            prop_assert!(
                (var.sqrt() - std).abs() < 0.35 * std,
                "std {} vs {std}",
                var.sqrt()
            );
        }
    }

    #[test]
    fn loss_rate_tracks_configured_probability(
        loss in 0.0f64..0.5,
        seed in 0u64..100,
    ) {
        let cfg = SimConfig {
            num_sensors: 5,
            sample_period: 300,
            duration: 24 * 3600,
            noise_std: vec![0.5, 0.5],
            ranges: vec![
                AttributeRange::new(-40.0, 60.0),
                AttributeRange::new(0.0, 100.0),
            ],
            loss_prob: loss,
            burst: None,
            malformed_prob: 0.0,
            environment: EnvironmentModel::gdi(),
        };
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let rate = trace.loss_rate();
        // 1440 Bernoulli trials: allow 5σ slack.
        let sigma = (loss * (1.0 - loss) / 1440.0).sqrt();
        prop_assert!((rate - loss).abs() < 5.0 * sigma + 1e-9, "rate {rate} vs {loss}");
    }

    #[test]
    fn piecewise_respects_segments(
        values in prop::collection::vec(-10.0f64..10.0, 1..6),
        probe in 0u64..10_000,
    ) {
        let segs: Vec<(u64, Vec<f64>)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 * 1_000, vec![v]))
            .collect();
        let env = EnvironmentModel::Piecewise(segs.clone());
        let got = env.value(probe)[0];
        let expect = segs
            .iter()
            .rev()
            .find(|(start, _)| *start <= probe)
            .map(|(_, v)| v[0])
            .unwrap_or(segs[0].1[0]);
        prop_assert_eq!(got, expect);
    }
}
