//! Great-Duck-Island-calibrated environment and sensor-network trace
//! simulator for the `sentinet` error/attack detector.
//!
//! The original paper evaluates on one month of real mote data from the
//! Great Duck Island deployment, which is not publicly archived. This
//! crate provides the faithful synthetic substitute described in
//! `DESIGN.md`: a diurnal temperature/humidity process `Θ(t)` sampled by
//! `K` noisy sensors over a lossy network, producing a collector-side
//! [`Trace`] with delivered, lost, and malformed packets.
//!
//! # Examples
//!
//! Simulate the paper's one-day workload:
//!
//! ```
//! use rand::SeedableRng;
//! use sentinet_sim::{gdi, simulate};
//!
//! let config = gdi::day_config(); // or month_config()
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let trace = simulate(&config, &mut rng);
//! assert_eq!(trace.sensors().len(), 10);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
mod environment;
pub mod gdi;
mod network;
pub mod sanitize;
mod stats;
mod types;

pub use csv::{read_trace, read_trace_sanitized, write_trace, CsvError};
pub use environment::{DiurnalParams, EnvironmentModel, DAY_S};
pub use network::{ground_truth, simulate, AttributeRange, BurstLoss, SimConfig};
pub use sanitize::{
    sanitize_records, IngestError, IngestReport, RawRecord, Sanitizer, SanitizerSnapshot,
};
pub use stats::{clamp, standard_normal, Gaussian};
pub use types::{Payload, Reading, SensorId, Timestamp, Trace, TraceRecord};
