//! Small statistics utilities: Gaussian sampling via Box–Muller.
//!
//! `rand_distr` is not on this project's approved dependency list, so
//! the zero-mean measurement noise `N_j` of the paper's sensor model
//! (`p_j = Θ(t) + N_j`, §3.1) is sampled with a hand-rolled, fully
//! tested Box–Muller transform.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normal distribution `N(mean, std²)` sampled via Box–Muller.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_sim::Gaussian;
///
/// let g = Gaussian::new(10.0, 2.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = g.sample(&mut rng);
/// assert!((x - 10.0).abs() < 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            std >= 0.0 && std.is_finite() && mean.is_finite(),
            "mean/std must be finite and std non-negative (got mean={mean}, std={std})"
        );
        Self { mean, std }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// Draws a standard normal `N(0, 1)` variate via the Box–Muller
/// transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Clamps `x` into the inclusive admissible range `[lo, hi]`.
///
/// The paper keeps injected values "within their admissible range, e.g.
/// [0, 100] for humidity" (§4.2); sensors and injectors both use this.
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "invalid range [{lo}, {hi}]");
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let g = Gaussian::new(5.0, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn zero_std_is_deterministic() {
        let g = Gaussian::new(3.5, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn samples_are_finite() {
        let g = Gaussian::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..10_000).all(|_| g.sample(&mut rng).is_finite()));
    }

    #[test]
    fn tail_mass_is_roughly_normal() {
        // ~4.55% of mass outside 2σ for a normal distribution.
        let g = Gaussian::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let outside = (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count() as f64 / n as f64;
        assert!((outside - 0.0455).abs() < 0.005, "tail {outside}");
    }

    #[test]
    #[should_panic(expected = "std non-negative")]
    fn negative_std_panics() {
        Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(-5.0, 0.0, 100.0), 0.0);
        assert_eq!(clamp(105.0, 0.0, 100.0), 100.0);
        assert_eq!(clamp(50.0, 0.0, 100.0), 50.0);
    }

    #[test]
    fn getters_roundtrip() {
        let g = Gaussian::new(1.0, 2.0);
        assert_eq!(g.mean(), 1.0);
        assert_eq!(g.std(), 2.0);
    }
}
