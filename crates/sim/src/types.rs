//! Core data types shared across the simulator and the detector.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sensor node (mote) in the deployment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SensorId(pub u16);

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sensor{}", self.0)
    }
}

impl From<u16> for SensorId {
    fn from(v: u16) -> Self {
        SensorId(v)
    }
}

/// Simulation time in seconds since deployment start.
pub type Timestamp = u64;

/// A multi-attribute sensor reading `p = ⟨x_1, …, x_n⟩` (§3.1).
///
/// For the Great Duck Island reproduction, `values = [temperature °C,
/// relative humidity %]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    values: Vec<f64>,
}

impl Reading {
    /// Creates a reading from attribute values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "a reading needs at least one attribute");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "reading attributes must be finite: {values:?}"
        );
        Self { values }
    }

    /// The attribute values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of attributes `n`.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Euclidean distance to another point (used by state mapping,
    /// Eqs. 2–3).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn distance(&self, other: &[f64]) -> f64 {
        assert_eq!(self.values.len(), other.len(), "dimension mismatch");
        self.values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl From<Vec<f64>> for Reading {
    fn from(values: Vec<f64>) -> Self {
        Reading::new(values)
    }
}

impl fmt::Display for Reading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v:.1}")?;
        }
        write!(f, ")")
    }
}

/// One record of a collected trace: the message `⟨t, p⟩` a sensor sent
/// to the collector, or evidence that the packet was lost/corrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Sampling time.
    pub time: Timestamp,
    /// Reporting sensor.
    pub sensor: SensorId,
    /// The payload: `Delivered` readings reach the collector; `Lost`
    /// packets never arrive; `Malformed` packets arrive but fail
    /// parsing and are discarded by the collector (the paper notes both
    /// kinds occur in the GDI data).
    pub payload: Payload,
}

/// Delivery outcome of a sensor message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Reading delivered intact.
    Delivered(Reading),
    /// Packet dropped by the network.
    Lost,
    /// Packet delivered but malformed (collector discards it).
    Malformed,
}

impl Payload {
    /// The reading if delivered intact.
    pub fn reading(&self) -> Option<&Reading> {
        match self {
            Payload::Delivered(r) => Some(r),
            _ => None,
        }
    }

    /// True when the collector can use this record.
    pub fn is_delivered(&self) -> bool {
        matches!(self, Payload::Delivered(_))
    }
}

/// An entire collected trace, ordered by time then sensor id.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace from records, sorting them by (time, sensor).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| (r.time, r.sensor));
        Self { records }
    }

    /// Appends a record, keeping order if the record is in sequence.
    pub fn push(&mut self, record: TraceRecord) {
        debug_assert!(
            self.records
                .last()
                .map(|l| (l.time, l.sensor) <= (record.time, record.sensor))
                .unwrap_or(true),
            "records must be pushed in (time, sensor) order"
        );
        self.records.push(record);
    }

    /// All records in (time, sensor) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (including lost/malformed ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over delivered `(time, sensor, reading)` triples only —
    /// the collector's view of the network.
    pub fn delivered(&self) -> impl Iterator<Item = (Timestamp, SensorId, &Reading)> {
        self.records.iter().filter_map(|r| match &r.payload {
            Payload::Delivered(reading) => Some((r.time, r.sensor, reading)),
            _ => None,
        })
    }

    /// Fraction of records that were lost or malformed.
    pub fn loss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let bad = self
            .records
            .iter()
            .filter(|r| !r.payload.is_delivered())
            .count();
        bad as f64 / self.records.len() as f64
    }

    /// Distinct sensor ids appearing in the trace, sorted.
    pub fn sensors(&self) -> Vec<SensorId> {
        let mut ids: Vec<SensorId> = self.records.iter().map(|r| r.sensor).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The delivered readings of one sensor as `(time, reading)` pairs.
    pub fn sensor_series(&self, sensor: SensorId) -> Vec<(Timestamp, &Reading)> {
        self.records
            .iter()
            .filter(|r| r.sensor == sensor)
            .filter_map(|r| r.payload.reading().map(|p| (r.time, p)))
            .collect()
    }

    /// Consumes the trace, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace::from_records(iter.into_iter().collect())
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
        self.records.sort_by_key(|r| (r.time, r.sensor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: Timestamp, s: u16, v: Option<Vec<f64>>) -> TraceRecord {
        TraceRecord {
            time: t,
            sensor: SensorId(s),
            payload: match v {
                Some(v) => Payload::Delivered(Reading::new(v)),
                None => Payload::Lost,
            },
        }
    }

    #[test]
    fn reading_distance() {
        let r = Reading::new(vec![3.0, 4.0]);
        assert!((r.distance(&[0.0, 0.0]) - 5.0).abs() < 1e-12);
        assert_eq!(r.dims(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_reading_panics() {
        Reading::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_reading_panics() {
        Reading::new(vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_dim_mismatch_panics() {
        Reading::new(vec![1.0]).distance(&[1.0, 2.0]);
    }

    #[test]
    fn trace_sorting_and_queries() {
        let t = Trace::from_records(vec![
            rec(600, 1, Some(vec![20.0, 80.0])),
            rec(300, 0, Some(vec![19.0, 81.0])),
            rec(300, 1, None),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[0].time, 300);
        assert_eq!(t.records()[0].sensor, SensorId(0));
        assert_eq!(t.sensors(), vec![SensorId(0), SensorId(1)]);
        assert_eq!(t.delivered().count(), 2);
        assert!((t.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        let s1 = t.sensor_series(SensorId(1));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].0, 600);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.loss_rate(), 0.0);
        assert!(t.sensors().is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: Trace = vec![rec(300, 0, Some(vec![1.0]))].into_iter().collect();
        t.extend(vec![rec(0, 1, Some(vec![2.0]))]);
        assert_eq!(t.records()[0].time, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SensorId(4).to_string(), "sensor4");
        assert_eq!(Reading::new(vec![12.04, 94.0]).to_string(), "(12.0,94.0)");
    }

    #[test]
    fn payload_accessors() {
        let p = Payload::Delivered(Reading::new(vec![1.0]));
        assert!(p.is_delivered());
        assert!(p.reading().is_some());
        assert!(!Payload::Lost.is_delivered());
        assert!(Payload::Malformed.reading().is_none());
    }
}
