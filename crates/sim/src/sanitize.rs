//! Ingest-boundary sanitization of raw sensor records.
//!
//! [`Reading::new`] deliberately panics on empty or non-finite values —
//! inside the pipeline those are programming errors. At the *ingest
//! boundary*, however, they are expected inputs: real deployments see
//! malformed packets (the paper's GDI data set motivates exactly this,
//! §3), NaN payloads from broken ADCs, and duplicate or out-of-order
//! timestamps from store-and-forward radios. The [`Sanitizer`] turns
//! each of those into a typed [`IngestError`] instead of a panic, so
//! corrupt input degrades into an accounted-for rejection and never
//! reaches the estimators unflagged.
//!
//! The sanitizer is deliberately strict about time: per sensor,
//! timestamps must be strictly increasing. A duplicate or regressed
//! timestamp is rejected rather than reordered — reordering would make
//! ingest output depend on buffering, breaking replay determinism.

use crate::types::{Payload, Reading, SensorId, Timestamp, Trace, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// One raw record as it arrives off the wire, before validation.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    /// Claimed sample timestamp.
    pub time: Timestamp,
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Claimed attribute values (possibly empty, NaN, or infinite).
    pub values: Vec<f64>,
}

/// Why the sanitizer rejected a record.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A delivered record carried no values.
    EmptyReading {
        /// Record timestamp.
        time: Timestamp,
        /// Reporting sensor.
        sensor: SensorId,
    },
    /// A value was NaN or infinite.
    NonFinite {
        /// Record timestamp.
        time: Timestamp,
        /// Reporting sensor.
        sensor: SensorId,
        /// Index of the offending attribute.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// The sensor already reported at this timestamp.
    DuplicateTimestamp {
        /// Record timestamp.
        time: Timestamp,
        /// Reporting sensor.
        sensor: SensorId,
    },
    /// The record's timestamp precedes the sensor's latest.
    OutOfOrder {
        /// Record timestamp.
        time: Timestamp,
        /// Reporting sensor.
        sensor: SensorId,
        /// The sensor's latest accepted timestamp.
        latest: Timestamp,
    },
    /// The record's dimensionality disagrees with the first accepted
    /// record.
    DimensionMismatch {
        /// Record timestamp.
        time: Timestamp,
        /// Reporting sensor.
        sensor: SensorId,
        /// Dimensionality established by the first accepted record.
        expected: usize,
        /// This record's dimensionality.
        actual: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::EmptyReading { time, sensor } => {
                write!(f, "t={time} {sensor}: delivered record with no values")
            }
            IngestError::NonFinite {
                time,
                sensor,
                index,
                value,
            } => write!(f, "t={time} {sensor}: non-finite value {value} at v{index}"),
            IngestError::DuplicateTimestamp { time, sensor } => {
                write!(f, "t={time} {sensor}: duplicate timestamp")
            }
            IngestError::OutOfOrder {
                time,
                sensor,
                latest,
            } => write!(
                f,
                "t={time} {sensor}: out of order (latest accepted t={latest})"
            ),
            IngestError::DimensionMismatch {
                time,
                sensor,
                expected,
                actual,
            } => write!(
                f,
                "t={time} {sensor}: {actual} value(s), expected {expected}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// Summary of one sanitization pass.
///
/// The gateway's transport layer resolves most delivery pathologies
/// *before* the sanitizer sees them (sequence-number deduplication,
/// watermark reordering, bounded-queue load shedding); those outcomes
/// are tallied in the transport-layer counters below so the report
/// accounts for every delivered record, while `rejected` stays the
/// sanitizer's own last-resort catalogue.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestReport {
    /// Records accepted into the trace.
    pub accepted: usize,
    /// Every rejection, in input order.
    pub rejected: Vec<IngestError>,
    /// Retransmitted frames dropped by sequence-number deduplication,
    /// plus same-timestamp duplicates caught by the reorder buffer.
    pub duplicates: usize,
    /// Records that arrived behind the reorder watermark and were
    /// dropped as hopelessly late.
    pub late: usize,
    /// Records dropped oldest-first under overload (explicit load
    /// shedding, never silent).
    pub shed: usize,
}

impl IngestReport {
    /// Whether anything was rejected.
    pub fn is_clean(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Streaming ingest validator: feed raw records in arrival order, get
/// back well-formed [`TraceRecord`]s or typed rejections.
#[derive(Debug, Default)]
pub struct Sanitizer {
    latest: BTreeMap<SensorId, Timestamp>,
    dims: Option<usize>,
}

/// Plain-data image of a [`Sanitizer`], for checkpointing ingest state
/// alongside the pipeline it feeds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SanitizerSnapshot {
    /// Per-sensor latest accepted timestamp, in sensor order.
    pub latest: Vec<(SensorId, Timestamp)>,
    /// Dimensionality established by the first accepted record.
    pub dims: Option<usize>,
}

impl Sanitizer {
    /// Creates a sanitizer with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures the sanitizer's history for checkpointing.
    pub fn snapshot(&self) -> SanitizerSnapshot {
        SanitizerSnapshot {
            latest: self.latest.iter().map(|(&s, &t)| (s, t)).collect(),
            dims: self.dims,
        }
    }

    /// Rebuilds a sanitizer from a snapshot; accept/reject decisions
    /// continue exactly as the captured instance's would.
    pub fn from_snapshot(snapshot: SanitizerSnapshot) -> Self {
        Self {
            latest: snapshot.latest.into_iter().collect(),
            dims: snapshot.dims,
        }
    }

    /// Validates one delivered record. On success the record is
    /// remembered as the sensor's latest and a well-formed
    /// [`TraceRecord`] is returned; on failure the sensor's history is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Any [`IngestError`] variant; see the enum for the catalogue.
    pub fn accept(&mut self, raw: RawRecord) -> Result<TraceRecord, IngestError> {
        let RawRecord {
            time,
            sensor,
            values,
        } = raw;
        if values.is_empty() {
            return Err(IngestError::EmptyReading { time, sensor });
        }
        if let Some((index, &value)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(IngestError::NonFinite {
                time,
                sensor,
                index,
                value,
            });
        }
        if let Some(expected) = self.dims {
            if values.len() != expected {
                return Err(IngestError::DimensionMismatch {
                    time,
                    sensor,
                    expected,
                    actual: values.len(),
                });
            }
        }
        match self.latest.get(&sensor) {
            Some(&latest) if time == latest => {
                return Err(IngestError::DuplicateTimestamp { time, sensor });
            }
            Some(&latest) if time < latest => {
                return Err(IngestError::OutOfOrder {
                    time,
                    sensor,
                    latest,
                });
            }
            _ => {}
        }
        self.dims.get_or_insert(values.len());
        self.latest.insert(sensor, time);
        Ok(TraceRecord {
            time,
            sensor,
            payload: Payload::Delivered(Reading::new(values)),
        })
    }
}

/// Sanitizes a batch of raw records into a [`Trace`] plus an
/// [`IngestReport`] accounting for every rejection. Never panics,
/// whatever the input.
pub fn sanitize_records(records: impl IntoIterator<Item = RawRecord>) -> (Trace, IngestReport) {
    let mut sanitizer = Sanitizer::new();
    let mut report = IngestReport::default();
    let mut accepted = Vec::new();
    for raw in records {
        match sanitizer.accept(raw) {
            Ok(record) => {
                accepted.push(record);
                report.accepted += 1;
            }
            Err(e) => report.rejected.push(e),
        }
    }
    (Trace::from_records(accepted), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(time: Timestamp, sensor: u16, values: Vec<f64>) -> RawRecord {
        RawRecord {
            time,
            sensor: SensorId(sensor),
            values,
        }
    }

    #[test]
    fn clean_records_pass_through() {
        let (trace, report) = sanitize_records(vec![
            raw(300, 0, vec![17.0, 80.0]),
            raw(300, 1, vec![17.5, 81.0]),
            raw(600, 0, vec![18.0, 79.0]),
        ]);
        assert!(report.is_clean());
        assert_eq!(report.accepted, 3);
        assert_eq!(trace.delivered().count(), 3);
    }

    #[test]
    fn nan_and_inf_are_rejected_not_panicking() {
        let (trace, report) = sanitize_records(vec![
            raw(300, 0, vec![f64::NAN, 80.0]),
            raw(300, 1, vec![17.5, f64::INFINITY]),
            raw(600, 0, vec![18.0, 79.0]),
        ]);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.rejected.len(), 2);
        assert!(matches!(
            report.rejected[0],
            IngestError::NonFinite { index: 0, .. }
        ));
        assert_eq!(trace.delivered().count(), 1);
    }

    #[test]
    fn duplicate_and_regressed_timestamps_are_rejected() {
        let (_, report) = sanitize_records(vec![
            raw(600, 0, vec![1.0]),
            raw(600, 0, vec![2.0]),
            raw(300, 0, vec![3.0]),
            raw(900, 0, vec![4.0]),
        ]);
        assert_eq!(report.accepted, 2);
        assert!(matches!(
            report.rejected[0],
            IngestError::DuplicateTimestamp { .. }
        ));
        assert!(matches!(
            report.rejected[1],
            IngestError::OutOfOrder { latest: 600, .. }
        ));
    }

    #[test]
    fn per_sensor_ordering_is_independent() {
        let (_, report) = sanitize_records(vec![
            raw(900, 0, vec![1.0]),
            raw(300, 1, vec![2.0]), // earlier, but a different sensor
        ]);
        assert!(report.is_clean());
    }

    #[test]
    fn empty_and_mismatched_dims_are_rejected() {
        let (_, report) = sanitize_records(vec![
            raw(300, 0, vec![]),
            raw(300, 1, vec![1.0, 2.0]),
            raw(600, 1, vec![1.0]),
        ]);
        assert_eq!(report.accepted, 1);
        assert!(matches!(
            report.rejected[0],
            IngestError::EmptyReading { .. }
        ));
        assert!(matches!(
            report.rejected[1],
            IngestError::DimensionMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejection_leaves_history_untouched() {
        let mut s = Sanitizer::new();
        s.accept(raw(600, 0, vec![1.0])).unwrap();
        // A rejected NaN at t=900 must not advance the latest stamp...
        assert!(s.accept(raw(900, 0, vec![f64::NAN])).is_err());
        // ...so a later clean record at t=900 is still accepted.
        assert!(s.accept(raw(900, 0, vec![2.0])).is_ok());
    }

    #[test]
    fn sanitizer_snapshot_round_trips() {
        let mut s = Sanitizer::new();
        s.accept(raw(600, 0, vec![1.0, 2.0])).unwrap();
        s.accept(raw(300, 4, vec![3.0, 4.0])).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.dims, Some(2));
        let mut restored = Sanitizer::from_snapshot(snap.clone());
        assert_eq!(restored.snapshot(), snap);
        // Restored history still rejects what the original would.
        assert!(matches!(
            restored.accept(raw(600, 0, vec![5.0, 6.0])),
            Err(IngestError::DuplicateTimestamp { .. })
        ));
        assert!(matches!(
            restored.accept(raw(900, 0, vec![5.0])),
            Err(IngestError::DimensionMismatch { .. })
        ));
        assert!(restored.accept(raw(900, 0, vec![5.0, 6.0])).is_ok());
    }

    #[test]
    fn errors_display_their_context() {
        let (_, report) = sanitize_records(vec![
            raw(300, 3, vec![f64::NEG_INFINITY]),
            raw(300, 3, vec![1.0]),
        ]);
        let shown: Vec<String> = report.rejected.iter().map(ToString::to_string).collect();
        assert!(shown[0].contains("non-finite"), "{shown:?}");
        assert!(shown[0].contains("sensor3"), "{shown:?}");
    }
}
