//! Hand-rolled CSV serialization of traces.
//!
//! Format, one record per line, header included:
//!
//! ```text
//! time,sensor,status,v0,v1,...
//! 300,0,ok,17.2,83.9
//! 300,1,lost,,
//! 600,1,malformed,,
//! ```
//!
//! A deliberately tiny dialect (no quoting — all fields are numeric or
//! fixed keywords) so no external CSV crate is needed.

use crate::sanitize::{IngestReport, RawRecord, Sanitizer};
use crate::types::{Payload, Reading, SensorId, Trace, TraceRecord};
use std::error::Error as StdError;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error reading trace csv: {e}"),
            CsvError::Parse { line, reason } => {
                write!(f, "trace csv parse error at line {line}: {reason}")
            }
        }
    }
}

impl StdError for CsvError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `trace` to `w` in the trace-CSV dialect.
///
/// `dims` is the attribute dimensionality used for the header and for
/// padding lost/malformed rows.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, dims: usize, mut w: W) -> Result<(), CsvError> {
    write!(w, "time,sensor,status")?;
    for i in 0..dims {
        write!(w, ",v{i}")?;
    }
    writeln!(w)?;
    for r in trace.records() {
        write!(w, "{},{},", r.time, r.sensor.0)?;
        match &r.payload {
            Payload::Delivered(reading) => {
                write!(w, "ok")?;
                for v in reading.values() {
                    write!(w, ",{v}")?;
                }
            }
            Payload::Lost => {
                write!(w, "lost")?;
                for _ in 0..dims {
                    write!(w, ",")?;
                }
            }
            Payload::Malformed => {
                write!(w, "malformed")?;
                for _ in 0..dims {
                    write!(w, ",")?;
                }
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// One parsed CSV row before validation: either a delivered reading
/// with raw (not yet finite-checked) values, or a lost/malformed stub.
enum ParsedRow {
    Delivered(RawRecord),
    Stub(TraceRecord),
}

/// Parses the syntactic layer of one data row; value semantics
/// (finiteness, ordering) are left to the caller.
fn parse_row(lineno: usize, line: &str) -> Result<ParsedRow, CsvError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() < 3 {
        return Err(CsvError::Parse {
            line: lineno,
            reason: "fewer than 3 fields".into(),
        });
    }
    let time: u64 = fields[0].parse().map_err(|e| CsvError::Parse {
        line: lineno,
        reason: format!("bad time {:?}: {e}", fields[0]),
    })?;
    let sensor: u16 = fields[1].parse().map_err(|e| CsvError::Parse {
        line: lineno,
        reason: format!("bad sensor {:?}: {e}", fields[1]),
    })?;
    match fields[2] {
        "ok" => {
            let mut values = Vec::with_capacity(fields.len() - 3);
            for f in &fields[3..] {
                values.push(f.parse::<f64>().map_err(|e| CsvError::Parse {
                    line: lineno,
                    reason: format!("bad value {f:?}: {e}"),
                })?);
            }
            Ok(ParsedRow::Delivered(RawRecord {
                time,
                sensor: SensorId(sensor),
                values,
            }))
        }
        "lost" => Ok(ParsedRow::Stub(TraceRecord {
            time,
            sensor: SensorId(sensor),
            payload: Payload::Lost,
        })),
        "malformed" => Ok(ParsedRow::Stub(TraceRecord {
            time,
            sensor: SensorId(sensor),
            payload: Payload::Malformed,
        })),
        other => Err(CsvError::Parse {
            line: lineno,
            reason: format!("unknown status {other:?}"),
        }),
    }
}

fn parse_rows<R: BufRead>(r: R) -> Result<Vec<(usize, ParsedRow)>, CsvError> {
    let mut rows = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if !line.starts_with("time,sensor,status") {
                return Err(CsvError::Parse {
                    line: lineno,
                    reason: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        rows.push((lineno, parse_row(lineno, &line)?));
    }
    Ok(rows)
}

/// Reads a trace from `r` (the dialect produced by [`write_trace`]).
///
/// This is the *strict* reader: any semantic defect — empty or
/// non-finite values included, which `"NaN".parse::<f64>()` happily
/// produces — is a typed [`CsvError::Parse`], never a panic. Use
/// [`read_trace_sanitized`] to degrade gracefully instead of failing
/// the whole file.
///
/// # Errors
///
/// - [`CsvError::Io`] on read failure.
/// - [`CsvError::Parse`] on any malformed line, including an unknown
///   status keyword, non-numeric values, and non-finite values.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, CsvError> {
    let mut records = Vec::new();
    for (lineno, row) in parse_rows(r)? {
        match row {
            ParsedRow::Delivered(raw) => {
                if raw.values.is_empty() {
                    return Err(CsvError::Parse {
                        line: lineno,
                        reason: "delivered record with no values".into(),
                    });
                }
                if let Some(v) = raw.values.iter().find(|v| !v.is_finite()) {
                    return Err(CsvError::Parse {
                        line: lineno,
                        reason: format!("non-finite value {v}"),
                    });
                }
                records.push(TraceRecord {
                    time: raw.time,
                    sensor: raw.sensor,
                    payload: Payload::Delivered(Reading::new(raw.values)),
                });
            }
            ParsedRow::Stub(record) => records.push(record),
        }
    }
    Ok(Trace::from_records(records))
}

/// Reads a trace from `r`, routing delivered rows through the ingest
/// [`Sanitizer`]: NaN/Inf payloads, duplicate and out-of-order
/// timestamps, and empty/ragged readings are *dropped and accounted
/// for* in the returned [`IngestReport`] instead of failing the file.
/// Syntax errors (bad header, unknown status, non-numeric fields) still
/// fail hard — a file that corrupt is not a sensor fault.
///
/// # Errors
///
/// - [`CsvError::Io`] on read failure.
/// - [`CsvError::Parse`] on syntactically malformed lines.
pub fn read_trace_sanitized<R: BufRead>(r: R) -> Result<(Trace, IngestReport), CsvError> {
    let mut sanitizer = Sanitizer::new();
    let mut report = IngestReport::default();
    let mut records = Vec::new();
    for (_, row) in parse_rows(r)? {
        match row {
            ParsedRow::Delivered(raw) => match sanitizer.accept(raw) {
                Ok(record) => {
                    records.push(record);
                    report.accepted += 1;
                }
                Err(e) => report.rejected.push(e),
            },
            ParsedRow::Stub(record) => records.push(record),
        }
    }
    Ok((Trace::from_records(records), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::EnvironmentModel;
    use crate::network::{simulate, AttributeRange, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> Trace {
        let cfg = SimConfig {
            num_sensors: 3,
            sample_period: 300,
            duration: 1_500,
            noise_std: vec![0.5, 1.0],
            ranges: vec![
                AttributeRange::new(-40.0, 60.0),
                AttributeRange::new(0.0, 100.0),
            ],
            loss_prob: 0.2,
            burst: None,
            malformed_prob: 0.1,
            environment: EnvironmentModel::gdi(),
        };
        simulate(&cfg, &mut StdRng::seed_from_u64(77))
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, 2, &mut buf).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, parsed);
    }

    #[test]
    fn header_is_first_line() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), 2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("time,sensor,status,v0,v1\n"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace("nope\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_status() {
        let data = "time,sensor,status,v0\n300,0,weird,1.0\n";
        let err = read_trace(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown status"));
    }

    #[test]
    fn rejects_non_numeric_value() {
        let data = "time,sensor,status,v0\n300,0,ok,abc\n";
        let err = read_trace(data.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_delivered_without_values() {
        let data = "time,sensor,status\n300,0,ok\n";
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = "time,sensor,status,v0\n\n300,0,ok,1.5\n\n";
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lost_and_malformed_roundtrip() {
        let data = "time,sensor,status,v0\n300,0,lost,\n600,1,malformed,\n";
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.delivered().count(), 0);
    }

    #[test]
    fn strict_reader_rejects_non_finite_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let data = format!("time,sensor,status,v0\n300,0,ok,{bad}\n");
            let err = read_trace(data.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn sanitized_reader_drops_and_accounts_for_bad_rows() {
        let data = "time,sensor,status,v0\n\
                    300,0,ok,17.0\n\
                    300,0,ok,17.5\n\
                    600,0,ok,NaN\n\
                    600,1,lost,\n\
                    900,0,ok,18.0\n";
        let (trace, report) = read_trace_sanitized(data.as_bytes()).unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected.len(), 2); // duplicate + NaN
        assert_eq!(trace.delivered().count(), 2);
        assert_eq!(trace.len(), 3); // the lost stub passes through
    }

    #[test]
    fn sanitized_reader_still_fails_on_syntax_errors() {
        let data = "time,sensor,status,v0\n300,0,weird,1.0\n";
        assert!(read_trace_sanitized(data.as_bytes()).is_err());
    }
}
