//! Environment models: the hidden multi-dimensional process `Θ(t)`.
//!
//! The paper models the sensed phenomenon as an unknown parameter vector
//! `Θ(t)` changing slowly relative to the observation window (§3.1). For
//! the Great Duck Island reproduction, [`EnvironmentModel::gdi`] builds
//! a diurnal temperature/humidity process calibrated so that the online
//! clustering recovers the paper's four key states
//! (12, 94), (17, 84), (24, 70), (31, 56) — which lie exactly on the
//! line `H = 118 − 2·T` (a fact we exploit for calibration).

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Seconds in a simulated day.
pub const DAY_S: u64 = 86_400;

/// The hidden environment process `Θ(t)`.
///
/// Implemented as an enum (not a trait object) so simulation configs
/// stay serializable and comparable.
///
/// # Examples
///
/// ```
/// use sentinet_sim::EnvironmentModel;
///
/// let env = EnvironmentModel::gdi();
/// let theta = env.value(6 * 3600); // 6 AM
/// assert_eq!(theta.len(), 2);      // temperature, humidity
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnvironmentModel {
    /// Constant environment — every attribute fixed. Useful in unit
    /// tests and as a building block of attack scenarios.
    Constant(Vec<f64>),
    /// A day-periodic sinusoidal temperature with linearly coupled
    /// humidity, mimicking the GDI coastal climate.
    Diurnal(DiurnalParams),
    /// Piecewise-constant schedule: ordered `(start_time, values)`
    /// segments; the last segment extends to infinity.
    Piecewise(Vec<(u64, Vec<f64>)>),
}

/// Parameters of the diurnal model.
///
/// Temperature follows
/// `T(t) = T_min + (T_max − T_min)·(1 − cos(2π·(t − t_peak_offset)/day))/2`
/// and humidity is `H = h_intercept + h_slope·T`, clamped to
/// `[0, 100]` — the coupling observed in the paper's Fig. 6/7 states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalParams {
    /// Daily minimum temperature (°C), reached at night.
    pub t_min: f64,
    /// Daily maximum temperature (°C), reached mid-afternoon.
    pub t_max: f64,
    /// Seconds after midnight at which temperature is minimal.
    pub trough_time: u64,
    /// Humidity intercept in `H = h_intercept + h_slope · T`.
    pub h_intercept: f64,
    /// Humidity slope (negative: warm air is drier on GDI).
    pub h_slope: f64,
    /// Day-to-day temperature modulation amplitude (°C); a slow
    /// multi-day wobble so one month of data is not 30 identical days.
    pub seasonal_amplitude: f64,
    /// Period of the slow modulation in days.
    pub seasonal_period_days: f64,
    /// Linear climate trend in °C per day (heat waves, cold fronts,
    /// seasonal progression). The online clustering must track it.
    pub trend_per_day: f64,
}

impl Default for DiurnalParams {
    fn default() -> Self {
        Self {
            t_min: 12.0,
            t_max: 31.0,
            trough_time: 4 * 3600, // coldest at 4 AM
            h_intercept: 118.0,
            h_slope: -2.0,
            seasonal_amplitude: 1.5,
            seasonal_period_days: 9.0,
            trend_per_day: 0.0,
        }
    }
}

impl EnvironmentModel {
    /// The Great-Duck-Island-calibrated diurnal environment used by all
    /// paper-reproduction experiments.
    pub fn gdi() -> Self {
        EnvironmentModel::Diurnal(DiurnalParams::default())
    }

    /// Number of attributes this model produces.
    pub fn num_attributes(&self) -> usize {
        match self {
            EnvironmentModel::Constant(v) => v.len(),
            EnvironmentModel::Diurnal(_) => 2,
            EnvironmentModel::Piecewise(segs) => segs.first().map(|(_, v)| v.len()).unwrap_or(0),
        }
    }

    /// Evaluates `Θ(t)`.
    ///
    /// # Panics
    ///
    /// Panics for an empty [`EnvironmentModel::Piecewise`] schedule.
    pub fn value(&self, t: u64) -> Vec<f64> {
        match self {
            EnvironmentModel::Constant(v) => v.clone(),
            EnvironmentModel::Diurnal(p) => {
                let day_phase =
                    2.0 * PI * ((t + DAY_S - p.trough_time % DAY_S) % DAY_S) as f64 / DAY_S as f64;
                let seasonal = p.seasonal_amplitude
                    * (2.0 * PI * t as f64 / (p.seasonal_period_days * DAY_S as f64)).sin();
                let trend = p.trend_per_day * t as f64 / DAY_S as f64;
                let temp = p.t_min
                    + (p.t_max - p.t_min) * (1.0 - day_phase.cos()) / 2.0
                    + seasonal
                    + trend;
                let hum = (p.h_intercept + p.h_slope * temp).clamp(0.0, 100.0);
                vec![temp, hum]
            }
            EnvironmentModel::Piecewise(segs) => {
                assert!(!segs.is_empty(), "piecewise schedule must be non-empty");
                let mut current = &segs[0].1;
                for (start, v) in segs {
                    if *start <= t {
                        current = v;
                    } else {
                        break;
                    }
                }
                current.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let env = EnvironmentModel::Constant(vec![20.0, 70.0]);
        assert_eq!(env.value(0), vec![20.0, 70.0]);
        assert_eq!(env.value(1_000_000), vec![20.0, 70.0]);
        assert_eq!(env.num_attributes(), 2);
    }

    #[test]
    fn diurnal_extremes_at_trough_and_peak() {
        let p = DiurnalParams {
            seasonal_amplitude: 0.0,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p.clone());
        let at_trough = env.value(p.trough_time);
        assert!(
            (at_trough[0] - p.t_min).abs() < 1e-9,
            "trough {at_trough:?}"
        );
        let at_peak = env.value(p.trough_time + DAY_S / 2);
        assert!((at_peak[0] - p.t_max).abs() < 1e-9, "peak {at_peak:?}");
    }

    #[test]
    fn diurnal_humidity_coupling_hits_paper_states() {
        let p = DiurnalParams {
            seasonal_amplitude: 0.0,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p);
        // At the trough T=12 → H=94; at the peak T=31 → H=56.
        let lo = env.value(4 * 3600);
        assert!((lo[0] - 12.0).abs() < 1e-9 && (lo[1] - 94.0).abs() < 1e-9);
        let hi = env.value(16 * 3600);
        assert!((hi[0] - 31.0).abs() < 1e-9 && (hi[1] - 56.0).abs() < 1e-9);
        // Intermediate paper states (17,84) and (24,70) lie on the curve:
        // solve T for 17 and 24 — the coupling guarantees H.
        for t in (0..DAY_S).step_by(300) {
            let v = env.value(t);
            assert!((v[1] - (118.0 - 2.0 * v[0])).abs() < 1e-9);
        }
    }

    #[test]
    fn diurnal_is_day_periodic_without_seasonal() {
        let p = DiurnalParams {
            seasonal_amplitude: 0.0,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p);
        for t in [0u64, 3_600, 40_000] {
            assert_eq!(env.value(t), env.value(t + DAY_S));
        }
    }

    #[test]
    fn seasonal_wobble_changes_days() {
        let env = EnvironmentModel::gdi();
        let d0 = env.value(12 * 3600);
        let d4 = env.value(12 * 3600 + 4 * DAY_S);
        assert!((d0[0] - d4[0]).abs() > 0.1, "seasonal modulation absent");
    }

    #[test]
    fn humidity_clamped_to_admissible_range() {
        let p = DiurnalParams {
            t_min: -20.0, // would push H above 100
            t_max: 80.0,  // would push H below 0
            seasonal_amplitude: 0.0,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p);
        for t in (0..DAY_S).step_by(600) {
            let v = env.value(t);
            assert!((0.0..=100.0).contains(&v[1]), "H out of range: {v:?}");
        }
    }

    #[test]
    fn trend_shifts_days_linearly() {
        let p = DiurnalParams {
            seasonal_amplitude: 0.0,
            trend_per_day: 0.5,
            ..Default::default()
        };
        let env = EnvironmentModel::Diurnal(p);
        let d0 = env.value(12 * 3600)[0];
        let d10 = env.value(12 * 3600 + 10 * DAY_S)[0];
        assert!((d10 - d0 - 5.0).abs() < 1e-9, "trend drift {}", d10 - d0);
    }

    #[test]
    fn piecewise_schedule() {
        let env = EnvironmentModel::Piecewise(vec![
            (0, vec![10.0]),
            (100, vec![20.0]),
            (200, vec![30.0]),
        ]);
        assert_eq!(env.value(0), vec![10.0]);
        assert_eq!(env.value(99), vec![10.0]);
        assert_eq!(env.value(100), vec![20.0]);
        assert_eq!(env.value(5_000), vec![30.0]);
        assert_eq!(env.num_attributes(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_piecewise_panics() {
        EnvironmentModel::Piecewise(vec![]).value(0);
    }
}
