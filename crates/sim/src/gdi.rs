//! Great Duck Island presets (paper §4).
//!
//! The paper's evaluation uses one month of data from 10 outside motes
//! sampling temperature and humidity every 5 minutes. These presets
//! reproduce that workload on the calibrated diurnal environment and
//! expose the key model states the paper reports, for calibration
//! assertions in benchmarks.

use crate::environment::{EnvironmentModel, DAY_S};
use crate::network::{AttributeRange, SimConfig};

/// Number of outside motes used by the paper's experiments.
pub const NUM_SENSORS: u16 = 10;

/// GDI sampling period: 5 minutes.
pub const SAMPLE_PERIOD: u64 = 300;

/// The four key environment states of the paper's Fig. 7, as
/// (temperature, humidity) tuples.
pub const KEY_STATES: [(f64, f64); 4] = [(12.0, 94.0), (17.0, 84.0), (24.0, 70.0), (31.0, 56.0)];

/// Packet loss probability calibrated to the paper's remark that "about
/// a hundred sensor readings [are available] in average" per 12-sample
/// window of 10 sensors (i.e. ≈ 17% of 120 packets unusable).
pub const LOSS_PROB: f64 = 0.12;

/// Malformed packet probability (delivered but discarded).
pub const MALFORMED_PROB: f64 = 0.05;

/// Per-attribute measurement noise (°C, %RH).
pub const NOISE_STD: [f64; 2] = [0.6, 1.5];

fn base_config(duration: u64) -> SimConfig {
    SimConfig {
        num_sensors: NUM_SENSORS,
        sample_period: SAMPLE_PERIOD,
        duration,
        noise_std: NOISE_STD.to_vec(),
        ranges: vec![
            AttributeRange::new(-40.0, 60.0),
            AttributeRange::new(0.0, 100.0),
        ],
        loss_prob: LOSS_PROB,
        burst: None,
        malformed_prob: MALFORMED_PROB,
        environment: EnvironmentModel::gdi(),
    }
}

/// One simulated day — the Fig. 6 workload.
pub fn day_config() -> SimConfig {
    base_config(DAY_S)
}

/// One simulated week — the Fig. 8 workload.
pub fn week_config() -> SimConfig {
    base_config(7 * DAY_S)
}

/// One simulated month (30 days) — the workload behind Fig. 7, the
/// fault-classification study (Tables 2–5), and the attack studies.
pub fn month_config() -> SimConfig {
    base_config(30 * DAY_S)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn month_has_expected_volume() {
        let c = month_config();
        c.validate();
        // 30 days × 288 samples/day × 10 sensors.
        assert_eq!(c.num_samples() * c.num_sensors as u64, 86_400);
    }

    #[test]
    fn key_states_lie_on_environment_curve() {
        for (t, h) in KEY_STATES {
            assert!((h - (118.0 - 2.0 * t)).abs() < 1e-9);
        }
    }

    #[test]
    fn average_readings_per_window_match_paper() {
        // Paper: "about a hundred sensor readings in average" per
        // 12-sample window (120 packets max).
        let c = day_config();
        let trace = simulate(&c, &mut StdRng::seed_from_u64(1));
        let delivered = trace.delivered().count() as f64;
        let windows = c.num_samples() as f64 / 12.0;
        let per_window = delivered / windows;
        assert!(
            (95.0..=105.0).contains(&per_window),
            "deliveries per window: {per_window}"
        );
    }

    #[test]
    fn day_and_week_durations() {
        assert_eq!(day_config().duration, 86_400);
        assert_eq!(week_config().duration, 7 * 86_400);
    }
}
