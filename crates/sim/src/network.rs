//! Sensor and network models: from `Θ(t)` to the collector's trace.
//!
//! Each sensor `j` periodically samples `p_j = Θ(t) + N_j` (zero-mean
//! Gaussian noise, §3.1) and sends a `⟨t, p⟩` message to the collector.
//! The lossy wireless link drops some packets and corrupts others —
//! the paper notes the GDI data contains "missing and malformed sensor
//! packets", which this module reproduces with Bernoulli models.

use crate::environment::EnvironmentModel;
use crate::stats::{clamp, Gaussian};
use crate::types::{Payload, Reading, SensorId, Timestamp, Trace, TraceRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Admissible range of one attribute; readings are clamped into it
/// (e.g. relative humidity lives in `[0, 100]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeRange {
    /// Lower admissible bound.
    pub lo: f64,
    /// Upper admissible bound.
    pub hi: f64,
}

impl AttributeRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid attribute range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Clamps `x` into the range.
    pub fn clamp(&self, x: f64) -> f64 {
        clamp(x, self.lo, self.hi)
    }
}

/// Gilbert–Elliott burst-loss parameters: each sensor's link is a
/// two-state Markov chain (Good/Bad). In Good the packet-loss
/// probability is the config's base `loss_prob`; in Bad it is
/// `loss_bad`. Real mote radios lose packets in bursts (fading,
/// collisions, dying hardware), not independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Per-sample probability of a Good → Bad transition.
    pub p_enter_bad: f64,
    /// Per-sample probability of a Bad → Good transition.
    pub p_exit_bad: f64,
    /// Packet-loss probability while the link is Bad.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// Stationary fraction of time the link spends in the Bad state.
    pub fn bad_fraction(&self) -> f64 {
        self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)
    }

    /// Long-run average packet-loss probability given the Good-state
    /// base loss `loss_good`.
    pub fn average_loss(&self, loss_good: f64) -> f64 {
        let pb = self.bad_fraction();
        (1.0 - pb) * loss_good + pb * self.loss_bad
    }

    fn validate(&self) {
        assert!(
            self.p_enter_bad > 0.0
                && self.p_enter_bad <= 1.0
                && self.p_exit_bad > 0.0
                && self.p_exit_bad <= 1.0
                && (0.0..=1.0).contains(&self.loss_bad),
            "invalid burst-loss parameters {self:?}"
        );
    }
}

/// Full simulation scenario configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of sensors `K` reporting to the collector.
    pub num_sensors: u16,
    /// Sampling period in seconds (GDI: 300 s = 5 minutes).
    pub sample_period: u64,
    /// Total simulated duration in seconds.
    pub duration: u64,
    /// Per-attribute measurement noise standard deviation.
    pub noise_std: Vec<f64>,
    /// Per-attribute admissible ranges (readings are clamped).
    pub ranges: Vec<AttributeRange>,
    /// Probability a packet is lost in transit (the Good-state loss
    /// when `burst` is set).
    pub loss_prob: f64,
    /// Optional Gilbert–Elliott burst-loss model layered on top of the
    /// base loss probability.
    pub burst: Option<BurstLoss>,
    /// Probability a delivered packet is malformed and discarded.
    pub malformed_prob: f64,
    /// The hidden environment process.
    pub environment: EnvironmentModel,
}

impl SimConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree or probabilities leave `[0, 1]` —
    /// configs are construction-time values, so this is a programmer
    /// error, not a runtime condition.
    pub fn validate(&self) {
        let n = self.environment.num_attributes();
        assert!(self.num_sensors > 0, "need at least one sensor");
        assert!(self.sample_period > 0, "sample period must be positive");
        assert_eq!(self.noise_std.len(), n, "noise dims must match environment");
        assert_eq!(self.ranges.len(), n, "range dims must match environment");
        assert!(
            (0.0..=1.0).contains(&self.loss_prob) && (0.0..=1.0).contains(&self.malformed_prob),
            "probabilities must be in [0, 1]"
        );
        if let Some(b) = &self.burst {
            b.validate();
        }
    }

    /// Number of sampling instants in the scenario.
    pub fn num_samples(&self) -> u64 {
        self.duration / self.sample_period
    }
}

/// Simulates the scenario, producing the collector-side [`Trace`].
///
/// Every sensor samples at every multiple of `sample_period`; the trace
/// records delivered readings as well as lost/malformed packets (the
/// latter two carry no reading and are ignored by the collector but are
/// kept for ground-truth accounting).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_sim::{gdi, simulate};
///
/// let cfg = gdi::day_config();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let trace = simulate(&cfg, &mut rng);
/// assert!(trace.delivered().count() > 0);
/// ```
pub fn simulate<R: Rng + ?Sized>(config: &SimConfig, rng: &mut R) -> Trace {
    config.validate();
    let noise: Vec<Gaussian> = config
        .noise_std
        .iter()
        .map(|&s| Gaussian::new(0.0, s))
        .collect();
    let mut records =
        Vec::with_capacity((config.num_samples() as usize) * config.num_sensors as usize);
    // Per-sensor Gilbert–Elliott link state (false = Good).
    let mut link_bad = vec![false; config.num_sensors as usize];
    let mut t = 0u64;
    while t < config.duration {
        let theta = config.environment.value(t);
        for s in 0..config.num_sensors {
            let loss_prob = match &config.burst {
                Some(b) => {
                    let bad = &mut link_bad[s as usize];
                    if *bad {
                        if rng.gen::<f64>() < b.p_exit_bad {
                            *bad = false;
                        }
                    } else if rng.gen::<f64>() < b.p_enter_bad {
                        *bad = true;
                    }
                    if *bad {
                        b.loss_bad
                    } else {
                        config.loss_prob
                    }
                }
                None => config.loss_prob,
            };
            let payload = if rng.gen::<f64>() < loss_prob {
                Payload::Lost
            } else if rng.gen::<f64>() < config.malformed_prob {
                Payload::Malformed
            } else {
                let values: Vec<f64> = theta
                    .iter()
                    .zip(&noise)
                    .zip(&config.ranges)
                    .map(|((&th, g), r)| r.clamp(th + g.sample(rng)))
                    .collect();
                Payload::Delivered(Reading::new(values))
            };
            records.push(TraceRecord {
                time: t,
                sensor: SensorId(s),
                payload,
            });
        }
        t += config.sample_period;
    }
    Trace::from_records(records)
}

/// Ground truth for a scenario: the noiseless environment value at each
/// sampling instant, as `(time, Θ(t))` pairs. Benchmarks compare the
/// recovered Markov model `M_C` against this.
pub fn ground_truth(config: &SimConfig) -> Vec<(Timestamp, Vec<f64>)> {
    let mut out = Vec::with_capacity(config.num_samples() as usize);
    let mut t = 0u64;
    while t < config.duration {
        out.push((t, config.environment.value(t)));
        t += config.sample_period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig {
            num_sensors: 5,
            sample_period: 300,
            duration: 3_600,
            noise_std: vec![0.5, 1.0],
            ranges: vec![
                AttributeRange::new(-40.0, 60.0),
                AttributeRange::new(0.0, 100.0),
            ],
            loss_prob: 0.1,
            burst: None,
            malformed_prob: 0.05,
            environment: EnvironmentModel::gdi(),
        }
    }

    fn burst() -> BurstLoss {
        BurstLoss {
            p_enter_bad: 0.02,
            p_exit_bad: 0.2,
            loss_bad: 0.9,
        }
    }

    #[test]
    fn burst_average_loss_matches_formula() {
        let mut c = cfg();
        c.duration = 300 * 20_000;
        c.num_sensors = 1;
        c.loss_prob = 0.05;
        c.burst = Some(burst());
        let mut rng = StdRng::seed_from_u64(21);
        let trace = simulate(&c, &mut rng);
        let expect_loss = burst().average_loss(0.05);
        // Observed bad fraction includes malformed (5% of delivered):
        // bad = loss + (1 - loss)·malformed.
        let expect = expect_loss + (1.0 - expect_loss) * 0.05;
        let rate = trace.loss_rate();
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs {expect}");
    }

    #[test]
    fn burst_losses_are_bursty() {
        // At matched average loss, GE loss runs are much longer than
        // Bernoulli runs.
        fn mean_loss_run(trace: &Trace) -> f64 {
            let mut runs = Vec::new();
            let mut run = 0usize;
            for r in trace.records() {
                if matches!(r.payload, Payload::Lost) {
                    run += 1;
                } else if run > 0 {
                    runs.push(run);
                    run = 0;
                }
            }
            if run > 0 {
                runs.push(run);
            }
            runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64
        }
        let mut base = cfg();
        base.num_sensors = 1;
        base.duration = 300 * 30_000;
        base.malformed_prob = 0.0;
        let b = burst();
        let avg = b.average_loss(0.02);

        let mut ge = base.clone();
        ge.loss_prob = 0.02;
        ge.burst = Some(b);
        let mut bern = base.clone();
        bern.loss_prob = avg;

        let ge_trace = simulate(&ge, &mut StdRng::seed_from_u64(31));
        let bern_trace = simulate(&bern, &mut StdRng::seed_from_u64(31));
        let ge_run = mean_loss_run(&ge_trace);
        let bern_run = mean_loss_run(&bern_trace);
        assert!(
            ge_run > 1.5 * bern_run,
            "GE runs {ge_run:.2} vs Bernoulli {bern_run:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid burst-loss")]
    fn invalid_burst_params_panic() {
        let mut c = cfg();
        c.burst = Some(BurstLoss {
            p_enter_bad: 0.0,
            p_exit_bad: 0.5,
            loss_bad: 0.9,
        });
        c.validate();
    }

    #[test]
    fn simulate_produces_expected_record_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = simulate(&cfg(), &mut rng);
        // 12 sampling instants × 5 sensors.
        assert_eq!(trace.len(), 60);
    }

    #[test]
    fn loss_rates_are_plausible() {
        let mut c = cfg();
        c.duration = 300 * 2_000;
        let mut rng = StdRng::seed_from_u64(2);
        let trace = simulate(&c, &mut rng);
        // Expected bad fraction = loss + (1-loss)·malformed ≈ 0.145.
        let rate = trace.loss_rate();
        assert!((rate - 0.145).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let mut c = cfg();
        c.loss_prob = 0.0;
        c.malformed_prob = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let trace = simulate(&c, &mut rng);
        assert_eq!(trace.delivered().count(), trace.len());
    }

    #[test]
    fn readings_track_environment() {
        let mut c = cfg();
        c.loss_prob = 0.0;
        c.malformed_prob = 0.0;
        c.noise_std = vec![0.1, 0.1];
        let mut rng = StdRng::seed_from_u64(4);
        let trace = simulate(&c, &mut rng);
        for (t, _, reading) in trace.delivered() {
            let theta = c.environment.value(t);
            assert!((reading.values()[0] - theta[0]).abs() < 1.0);
            assert!((reading.values()[1] - theta[1]).abs() < 1.0);
        }
    }

    #[test]
    fn readings_respect_ranges() {
        let mut c = cfg();
        c.noise_std = vec![50.0, 50.0]; // huge noise to force clamping
        let mut rng = StdRng::seed_from_u64(5);
        let trace = simulate(&c, &mut rng);
        for (_, _, r) in trace.delivered() {
            assert!((-40.0..=60.0).contains(&r.values()[0]));
            assert!((0.0..=100.0).contains(&r.values()[1]));
        }
    }

    #[test]
    fn determinism_under_same_seed() {
        let c = cfg();
        let t1 = simulate(&c, &mut StdRng::seed_from_u64(9));
        let t2 = simulate(&c, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }

    #[test]
    fn ground_truth_matches_sampling_grid() {
        let c = cfg();
        let gt = ground_truth(&c);
        assert_eq!(gt.len(), 12);
        assert_eq!(gt[0].0, 0);
        assert_eq!(gt[11].0, 3_300);
    }

    #[test]
    #[should_panic(expected = "noise dims")]
    fn validate_catches_dimension_mismatch() {
        let mut c = cfg();
        c.noise_std = vec![0.5];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "invalid attribute range")]
    fn bad_range_panics() {
        AttributeRange::new(5.0, 1.0);
    }
}
