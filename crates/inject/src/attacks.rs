//! Malicious-attack injection (paper §3.3, *sensor attack model*).
//!
//! The adversary controls a subset of sensors (the paper compromises
//! one third) and — crucially — *knows the underlying dynamics of the
//! environment*: at every sampling instant the malicious sensors see
//! what the correct sensors report and forge values that move the
//! **network-observed mean** where the adversary wants it:
//!
//! - **Dynamic Creation** pushes the observed mean to a spurious target
//!   state while the true environment is elsewhere;
//! - **Dynamic Deletion** pins the observed mean at a frozen value when
//!   the true environment moves away (deleting the new state);
//! - **Dynamic Change** shifts the observed mean by a constant offset,
//!   preserving temporal structure but altering attributes;
//! - **Mixed** alternates creation and deletion phases.
//!
//! To move the mean of `N` delivered readings from `θ` to `τ` with `m`
//! compromised deliveries, each compromised sensor reports
//! `θ + (N/m)·(τ − θ)`, clamped to the admissible ranges — the paper
//! explicitly keeps "malicious values within their admissible range",
//! which is why its deletion example cannot hold humidity exactly.

use sentinet_sim::{AttributeRange, Payload, Reading, SensorId, Timestamp, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An attack strategy executed by the compromised sensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackModel {
    /// Force the observed mean to `target` (introducing a spurious
    /// environment state).
    DynamicCreation {
        /// The spurious state the adversary fabricates.
        target: Vec<f64>,
    },
    /// Pin the observed mean at `freeze_at` (deleting the states the
    /// environment actually visits).
    DynamicDeletion {
        /// The stale state the adversary keeps the network reporting.
        freeze_at: Vec<f64>,
    },
    /// Shift the observed mean by `offset` relative to the truth,
    /// keeping temporal behaviour intact.
    DynamicChange {
        /// Constant displacement applied to the observed mean.
        offset: Vec<f64>,
    },
    /// Alternate between a creation and a deletion phase with the given
    /// period (seconds), starting with creation.
    Mixed {
        /// Creation-phase target.
        creation_target: Vec<f64>,
        /// Deletion-phase frozen value.
        freeze_at: Vec<f64>,
        /// Phase length in seconds.
        phase_period: u64,
    },
}

/// An attack campaign: which sensors are compromised, what they do,
/// and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackInjection {
    /// Compromised sensors.
    pub sensors: Vec<SensorId>,
    /// The strategy they execute.
    pub model: AttackModel,
    /// Attack onset (inclusive).
    pub start: Timestamp,
    /// Attack end (exclusive); `None` = until the trace ends.
    pub end: Option<Timestamp>,
}

impl AttackInjection {
    /// An attack active from `start` until the end of the trace.
    pub fn from_onset(sensors: Vec<SensorId>, model: AttackModel, start: Timestamp) -> Self {
        Self {
            sensors,
            model,
            start,
            end: None,
        }
    }

    fn active_at(&self, t: Timestamp) -> bool {
        t >= self.start && self.end.map(|e| t < e).unwrap_or(true)
    }
}

/// Applies an attack campaign to a trace.
///
/// At each sampling instant the correct (non-compromised) delivered
/// readings determine the truth estimate `θ`; each compromised delivery
/// is replaced with the forged value that steers the all-sensor mean to
/// the attack's goal, clamped into `ranges`.
///
/// # Panics
///
/// Panics if attack parameter dimensions disagree with the readings or
/// `ranges`, or if an injection lists no sensors.
pub fn inject_attacks(
    trace: &Trace,
    attacks: &[AttackInjection],
    ranges: &[AttributeRange],
) -> Trace {
    for a in attacks {
        assert!(!a.sensors.is_empty(), "attack with no compromised sensors");
    }
    // Group delivered record indices by timestamp.
    let mut by_time: BTreeMap<Timestamp, Vec<usize>> = BTreeMap::new();
    for (i, rec) in trace.records().iter().enumerate() {
        if rec.payload.is_delivered() {
            by_time.entry(rec.time).or_default().push(i);
        }
    }

    let mut records = trace.records().to_vec();
    for (&t, idxs) in &by_time {
        for attack in attacks {
            if !attack.active_at(t) {
                continue;
            }
            let compromised: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|&i| attack.sensors.contains(&records[i].sensor))
                .collect();
            if compromised.is_empty() {
                continue;
            }
            let honest: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|&i| !attack.sensors.contains(&records[i].sensor))
                .collect();
            // Truth estimate θ: mean of honest readings (fall back to
            // the pre-attack values of compromised sensors if the whole
            // window was compromised).
            let theta = mean_of(&records, if honest.is_empty() { idxs } else { &honest });
            let dims = theta.len();
            assert_eq!(ranges.len(), dims, "range dims must match readings");

            let goal: Option<Vec<f64>> = match &attack.model {
                AttackModel::DynamicCreation { target } => {
                    assert_eq!(target.len(), dims, "creation target dims");
                    Some(target.clone())
                }
                AttackModel::DynamicDeletion { freeze_at } => {
                    assert_eq!(freeze_at.len(), dims, "deletion freeze dims");
                    Some(freeze_at.clone())
                }
                AttackModel::DynamicChange { offset } => {
                    assert_eq!(offset.len(), dims, "change offset dims");
                    Some(theta.iter().zip(offset).map(|(&a, &b)| a + b).collect())
                }
                AttackModel::Mixed {
                    creation_target,
                    freeze_at,
                    phase_period,
                } => {
                    assert!(*phase_period > 0, "phase period must be positive");
                    assert_eq!(creation_target.len(), dims, "mixed creation dims");
                    assert_eq!(freeze_at.len(), dims, "mixed freeze dims");
                    let phase = (t.saturating_sub(attack.start) / phase_period) % 2;
                    Some(if phase == 0 {
                        creation_target.clone()
                    } else {
                        freeze_at.clone()
                    })
                }
            };

            if let Some(tau) = goal {
                let n = idxs.len() as f64;
                let m = compromised.len() as f64;
                // Each forged reading: θ + (N/m)(τ − θ), clamped.
                let forged: Vec<f64> = (0..dims)
                    .map(|d| {
                        let v = theta[d] + (n / m) * (tau[d] - theta[d]);
                        ranges[d].clamp(v)
                    })
                    .collect();
                for &i in &compromised {
                    records[i].payload = Payload::Delivered(Reading::new(forged.clone()));
                }
            }
        }
    }
    Trace::from_records(records)
}

fn mean_of(records: &[sentinet_sim::TraceRecord], idxs: &[usize]) -> Vec<f64> {
    let first = idxs
        .iter()
        .find_map(|&i| records[i].payload.reading())
        // sentinet-allow(expect-used): the attack model guarantees at least one delivered reading per window
        .expect("at least one delivered reading");
    let dims = first.dims();
    let mut sum = vec![0.0; dims];
    let mut count = 0.0;
    for &i in idxs {
        if let Some(r) = records[i].payload.reading() {
            for (s, &v) in sum.iter_mut().zip(r.values()) {
                *s += v;
            }
            count += 1.0;
        }
    }
    sum.iter_mut().for_each(|s| *s /= count);
    sum
}

/// Convenience: the first `k` sensor ids — the paper compromises "one
/// third of the available sensors".
pub fn first_k_sensors(k: u16) -> Vec<SensorId> {
    (0..k).map(SensorId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentinet_sim::{gdi, simulate, EnvironmentModel};

    fn clean_trace() -> (Trace, Vec<AttributeRange>) {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        cfg.noise_std = vec![0.1, 0.1];
        let ranges = cfg.ranges.clone();
        (simulate(&cfg, &mut StdRng::seed_from_u64(1)), ranges)
    }

    fn observed_mean(trace: &Trace, t: Timestamp) -> Vec<f64> {
        let readings: Vec<&Reading> = trace
            .records()
            .iter()
            .filter(|r| r.time == t)
            .filter_map(|r| r.payload.reading())
            .collect();
        let dims = readings[0].dims();
        let mut m = vec![0.0; dims];
        for r in &readings {
            for (s, &v) in m.iter_mut().zip(r.values()) {
                *s += v;
            }
        }
        m.iter_mut().for_each(|s| *s /= readings.len() as f64);
        m
    }

    #[test]
    fn creation_moves_observed_mean_to_target() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(3), // 3 of 10
            AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            0,
        );
        let out = inject_attacks(&trace, &[attack], &ranges);
        // At 4 AM truth is (12, 94); the observed mean should be pulled
        // to ~ (25, 69) unless clamping binds.
        let m = observed_mean(&out, 4 * 3600);
        assert!((m[0] - 25.0).abs() < 1.5, "mean {m:?}");
        assert!((m[1] - 69.0).abs() < 3.0, "mean {m:?}");
    }

    #[test]
    fn deletion_pins_observed_mean() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicDeletion {
                freeze_at: vec![24.0, 70.0],
            },
            start: 10 * 3600,
            end: Some(18 * 3600),
        };
        let out = inject_attacks(&trace, &[attack], &ranges);
        // Mid-afternoon truth is ~(31, 56); observed stays near (24, 70)
        // temperature-wise (humidity clamping may bind, as in the paper).
        let m = observed_mean(&out, 14 * 3600);
        assert!((m[0] - 24.0).abs() < 2.0, "mean {m:?}");
        // Outside the window, mean matches truth again.
        let after = observed_mean(&out, 20 * 3600);
        let truth = observed_mean(&trace, 20 * 3600);
        assert!((after[0] - truth[0]).abs() < 0.5);
    }

    #[test]
    fn change_offsets_observed_mean() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(3),
            AttackModel::DynamicChange {
                offset: vec![-8.0, 0.0],
            },
            0,
        );
        let out = inject_attacks(&trace, &[attack], &ranges);
        for hour in [2u64, 8, 14, 20] {
            let truth = observed_mean(&trace, hour * 3600);
            let m = observed_mean(&out, hour * 3600);
            assert!(
                (m[0] - (truth[0] - 8.0)).abs() < 1.0,
                "hour {hour}: {m:?} vs truth {truth:?}"
            );
        }
    }

    #[test]
    fn mixed_alternates_phases() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(5),
            AttackModel::Mixed {
                creation_target: vec![40.0, 30.0],
                freeze_at: vec![12.0, 94.0],
                phase_period: 6 * 3600,
            },
            0,
        );
        let out = inject_attacks(&trace, &[attack], &ranges);
        // Phase 0 (t < 6h): creation toward (40, 30).
        let m0 = observed_mean(&out, 2 * 3600);
        // Phase 1 (6h ≤ t < 12h): freeze at (12, 94).
        let m1 = observed_mean(&out, 8 * 3600);
        assert!(m0[0] > 25.0, "creation phase mean {m0:?}");
        assert!((m1[0] - 12.0).abs() < 3.0, "deletion phase mean {m1:?}");
    }

    #[test]
    fn forged_values_respect_ranges() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(1), // single sensor must push very hard
            AttackModel::DynamicCreation {
                target: vec![55.0, 5.0],
            },
            0,
        );
        let out = inject_attacks(&trace, &[attack], &ranges);
        for (_, r) in out.sensor_series(SensorId(0)) {
            assert!(r.values()[0] <= 60.0, "temp {r}");
            assert!(r.values()[1] >= 0.0, "hum {r}");
        }
    }

    #[test]
    fn honest_sensors_untouched() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(3),
            AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            0,
        );
        let out = inject_attacks(&trace, &[attack], &ranges);
        for s in 3..10 {
            assert_eq!(
                out.sensor_series(SensorId(s)),
                trace.sensor_series(SensorId(s)),
                "sensor {s} modified"
            );
        }
    }

    #[test]
    fn constant_environment_creation_scenario() {
        // The paper's Fig. 11: correct environment roughly constant,
        // adversary forges a new state.
        let mut cfg = gdi::day_config();
        cfg.environment = EnvironmentModel::Constant(vec![12.0, 95.0]);
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        cfg.noise_std = vec![0.1, 0.1];
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(3));
        let attack = AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            start: 12 * 3600,
            end: None,
        };
        let out = inject_attacks(&trace, &[attack], &cfg.ranges);
        let before = observed_mean(&out, 6 * 3600);
        let during = observed_mean(&out, 18 * 3600);
        assert!((before[0] - 12.0).abs() < 0.5);
        assert!((during[0] - 25.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "no compromised sensors")]
    fn empty_sensor_list_panics() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            vec![],
            AttackModel::DynamicChange {
                offset: vec![0.0, 0.0],
            },
            0,
        );
        inject_attacks(&trace, &[attack], &ranges);
    }

    #[test]
    #[should_panic(expected = "creation target dims")]
    fn dim_mismatch_panics() {
        let (trace, ranges) = clean_trace();
        let attack = AttackInjection::from_onset(
            first_k_sensors(2),
            AttackModel::DynamicCreation { target: vec![1.0] },
            0,
        );
        inject_attacks(&trace, &[attack], &ranges);
    }

    #[test]
    fn first_k_sensors_helper() {
        assert_eq!(first_k_sensors(2), vec![SensorId(0), SensorId(1)]);
        assert!(first_k_sensors(0).is_empty());
    }
}
