//! Accidental-error injection (paper §3.3, *sensor fault model*).
//!
//! Transforms a clean trace by corrupting the delivered readings of a
//! chosen sensor according to one of the paper's fault models:
//! stuck-at-value, calibration (multiplicative), additive, and random
//! noise — plus the drift-to-stuck behaviour the paper actually observed
//! on GDI sensor 6 (humidity decaying to ≈ 0 and sticking, Fig. 8).

use rand::Rng;
use sentinet_sim::{AttributeRange, Gaussian, Payload, Reading, SensorId, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// A fault model to apply to a sensor's readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// The sensor constantly reports `value` (Stuck-at-Value Error).
    StuckAt {
        /// The fixed reading reported.
        value: Vec<f64>,
    },
    /// Readings decay linearly toward `target` over `drift_duration`
    /// seconds, then stick — the paper's observed sensor-6 behaviour.
    DriftToStuck {
        /// The value the sensor decays to and then sticks at.
        target: Vec<f64>,
        /// Seconds taken to decay from the true reading to `target`.
        drift_duration: u64,
    },
    /// Readings are multiplied per-attribute by `gain` (Calibration
    /// Error); the paper's sensor 7 reports humidity ≈ 10 % high.
    Calibration {
        /// Per-attribute multiplicative gain.
        gain: Vec<f64>,
    },
    /// Readings are offset per-attribute by `offset` (Additive Error).
    Additive {
        /// Per-attribute additive offset.
        offset: Vec<f64>,
    },
    /// Readings gain extra zero-mean noise with per-attribute `std`
    /// (Random Noise Error).
    RandomNoise {
        /// Per-attribute noise standard deviation.
        std: Vec<f64>,
    },
    /// The sensor's radio degrades: each delivered packet is dropped
    /// with probability `drop_prob` on top of the network's own loss.
    /// Models the paper's observation that dying GDI sensors also shed
    /// packets (their data "contains missing and malformed packets").
    Outage {
        /// Additional per-packet drop probability in `[0, 1]`.
        drop_prob: f64,
    },
}

/// A fault applied to one sensor over a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// The faulty sensor.
    pub sensor: SensorId,
    /// The fault model.
    pub model: FaultModel,
    /// Fault onset time (inclusive).
    pub start: Timestamp,
    /// Fault end time (exclusive); `None` = until the trace ends.
    pub end: Option<Timestamp>,
}

impl FaultInjection {
    /// A fault active from `start` until the end of the trace.
    pub fn from_onset(sensor: SensorId, model: FaultModel, start: Timestamp) -> Self {
        Self {
            sensor,
            model,
            start,
            end: None,
        }
    }

    fn active_at(&self, t: Timestamp) -> bool {
        t >= self.start && self.end.map(|e| t < e).unwrap_or(true)
    }
}

/// Applies `injections` to `trace`, returning the corrupted trace.
/// Faulty readings are clamped into `ranges` (a real degraded sensor
/// still reports admissible values; the paper's sensor 6 bottoms out at
/// humidity ≈ 0, not below).
///
/// Lost/malformed records are untouched: a fault corrupts what the
/// sensor *reports*, not whether the network delivers it.
///
/// # Panics
///
/// Panics if a fault model's parameter dimensionality disagrees with
/// the readings it corrupts, or `ranges` disagrees with the readings.
pub fn inject_faults<R: Rng + ?Sized>(
    trace: &Trace,
    injections: &[FaultInjection],
    ranges: &[AttributeRange],
    rng: &mut R,
) -> Trace {
    let records = trace
        .records()
        .iter()
        .map(|rec| {
            let mut rec = rec.clone();
            for inj in injections {
                if inj.sensor != rec.sensor || !inj.active_at(rec.time) {
                    continue;
                }
                if let FaultModel::Outage { drop_prob } = &inj.model {
                    assert!(
                        (0.0..=1.0).contains(drop_prob),
                        "outage drop probability must be in [0, 1]"
                    );
                    if rec.payload.is_delivered() && rng.gen::<f64>() < *drop_prob {
                        rec.payload = Payload::Lost;
                    }
                    continue;
                }
                if let Payload::Delivered(reading) = &rec.payload {
                    let corrupted =
                        apply_fault(&inj.model, reading, rec.time, inj.start, ranges, rng);
                    rec.payload = Payload::Delivered(corrupted);
                }
            }
            rec
        })
        .collect();
    Trace::from_records(records)
}

fn apply_fault<R: Rng + ?Sized>(
    model: &FaultModel,
    truth: &Reading,
    t: Timestamp,
    onset: Timestamp,
    ranges: &[AttributeRange],
    rng: &mut R,
) -> Reading {
    let v = truth.values();
    assert_eq!(ranges.len(), v.len(), "range dims must match readings");
    let raw: Vec<f64> = match model {
        FaultModel::StuckAt { value } => {
            assert_eq!(value.len(), v.len(), "stuck-at dims");
            value.clone()
        }
        FaultModel::DriftToStuck {
            target,
            drift_duration,
        } => {
            assert_eq!(target.len(), v.len(), "drift dims");
            assert!(*drift_duration > 0, "drift duration must be positive");
            let progress = ((t - onset) as f64 / *drift_duration as f64).min(1.0);
            v.iter()
                .zip(target)
                .map(|(&x, &tgt)| x + progress * (tgt - x))
                .collect()
        }
        FaultModel::Calibration { gain } => {
            assert_eq!(gain.len(), v.len(), "calibration dims");
            v.iter().zip(gain).map(|(&x, &g)| x * g).collect()
        }
        FaultModel::Additive { offset } => {
            assert_eq!(offset.len(), v.len(), "additive dims");
            v.iter().zip(offset).map(|(&x, &o)| x + o).collect()
        }
        FaultModel::RandomNoise { std } => {
            assert_eq!(std.len(), v.len(), "noise dims");
            v.iter()
                .zip(std)
                .map(|(&x, &s)| x + Gaussian::new(0.0, s).sample(rng))
                .collect()
        }
        // sentinet-allow(panic-used): Outage is rewritten into per-reading drops at delivery and never reaches sampling
        FaultModel::Outage { .. } => unreachable!("outage handled at delivery level"),
    };
    Reading::new(raw.iter().zip(ranges).map(|(&x, r)| r.clamp(x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentinet_sim::{gdi, simulate};

    fn clean_trace() -> (Trace, Vec<AttributeRange>) {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        let ranges = cfg.ranges.clone();
        (simulate(&cfg, &mut StdRng::seed_from_u64(1)), ranges)
    }

    #[test]
    fn stuck_at_fixes_readings() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(2));
        for (_, r) in out.sensor_series(SensorId(6)) {
            assert_eq!(r.values(), &[15.0, 1.0]);
        }
        // Other sensors untouched.
        assert_eq!(
            out.sensor_series(SensorId(0)),
            trace.sensor_series(SensorId(0))
        );
    }

    #[test]
    fn window_limits_fault_activity() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection {
            sensor: SensorId(2),
            model: FaultModel::StuckAt {
                value: vec![0.0, 0.0],
            },
            start: 3_600,
            end: Some(7_200),
        };
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(3));
        for (t, r) in out.sensor_series(SensorId(2)) {
            if (3_600..7_200).contains(&t) {
                assert_eq!(r.values(), &[0.0, 0.0]);
            } else {
                assert_ne!(r.values(), &[0.0, 0.0]);
            }
        }
    }

    #[test]
    fn drift_to_stuck_decays_then_sticks() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(6),
            FaultModel::DriftToStuck {
                target: vec![15.0, 1.0],
                drift_duration: 6 * 3_600,
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(4));
        let series = out.sensor_series(SensorId(6));
        let orig = trace.sensor_series(SensorId(6));
        // Early: close to truth. Late: stuck at target.
        assert!((series[0].1.values()[1] - orig[0].1.values()[1]).abs() < 1.0);
        let last = series.last().unwrap().1;
        assert_eq!(last.values(), &[15.0, 1.0]);
        // Humidity decreases monotonically-ish during the drift.
        let mid = series[series.len() / 4].1.values()[1];
        assert!(mid < orig[series.len() / 4].1.values()[1]);
    }

    #[test]
    fn calibration_scales_readings() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(7),
            FaultModel::Calibration {
                gain: vec![1.0, 1.1],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(5));
        for ((_, r_out), (_, r_in)) in out
            .sensor_series(SensorId(7))
            .iter()
            .zip(trace.sensor_series(SensorId(7)))
        {
            assert_eq!(r_out.values()[0], r_in.values()[0]);
            let expect = (r_in.values()[1] * 1.1).min(100.0);
            assert!((r_out.values()[1] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn additive_offsets_readings() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(3),
            FaultModel::Additive {
                offset: vec![5.0, -10.0],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(6));
        for ((_, r_out), (_, r_in)) in out
            .sensor_series(SensorId(3))
            .iter()
            .zip(trace.sensor_series(SensorId(3)))
        {
            assert!((r_out.values()[0] - (r_in.values()[0] + 5.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn random_noise_increases_variance() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(4),
            FaultModel::RandomNoise {
                std: vec![5.0, 5.0],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(7));
        let diffs: Vec<f64> = out
            .sensor_series(SensorId(4))
            .iter()
            .zip(trace.sensor_series(SensorId(4)))
            .map(|((_, a), (_, b))| a.values()[0] - b.values()[0])
            .collect();
        let var = diffs.iter().map(|d| d * d).sum::<f64>() / diffs.len() as f64;
        assert!((var - 25.0).abs() < 5.0, "noise var {var}");
    }

    #[test]
    fn readings_stay_in_admissible_range() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(
            SensorId(1),
            FaultModel::Additive {
                offset: vec![100.0, 100.0],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(8));
        for (_, r) in out.sensor_series(SensorId(1)) {
            assert!(r.values()[0] <= 60.0);
            assert!(r.values()[1] <= 100.0);
        }
    }

    #[test]
    fn lost_records_stay_lost() {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.5;
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(9));
        let inj = FaultInjection::from_onset(
            SensorId(0),
            FaultModel::StuckAt {
                value: vec![0.0, 0.0],
            },
            0,
        );
        let out = inject_faults(&trace, &[inj], &cfg.ranges, &mut StdRng::seed_from_u64(10));
        assert_eq!(out.loss_rate(), trace.loss_rate());
    }

    #[test]
    fn outage_drops_packets_for_target_only() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(SensorId(2), FaultModel::Outage { drop_prob: 0.7 }, 0);
        let out = inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(42));
        let delivered_before = trace.sensor_series(SensorId(2)).len() as f64;
        let delivered_after = out.sensor_series(SensorId(2)).len() as f64;
        let rate = 1.0 - delivered_after / delivered_before;
        assert!((rate - 0.7).abs() < 0.1, "drop rate {rate}");
        // Other sensors untouched.
        assert_eq!(
            out.sensor_series(SensorId(0)),
            trace.sensor_series(SensorId(0))
        );
        // Delivered values for the target are unmodified.
        for (t, r) in out.sensor_series(SensorId(2)) {
            let orig = trace
                .sensor_series(SensorId(2))
                .into_iter()
                .find(|(tt, _)| *tt == t)
                .unwrap()
                .1
                .clone();
            assert_eq!(r.clone(), orig);
        }
    }

    #[test]
    fn outage_composes_with_value_fault() {
        // A dying sensor both sticks and sheds packets — the paper's
        // sensor-6 reality.
        let (trace, ranges) = clean_trace();
        let injs = vec![
            FaultInjection::from_onset(
                SensorId(6),
                FaultModel::StuckAt {
                    value: vec![15.0, 1.0],
                },
                0,
            ),
            FaultInjection::from_onset(SensorId(6), FaultModel::Outage { drop_prob: 0.5 }, 0),
        ];
        let out = inject_faults(&trace, &injs, &ranges, &mut StdRng::seed_from_u64(43));
        let series = out.sensor_series(SensorId(6));
        assert!(!series.is_empty());
        assert!(series.len() < trace.sensor_series(SensorId(6)).len());
        for (_, r) in series {
            assert_eq!(r.values(), &[15.0, 1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "outage drop probability")]
    fn outage_bad_probability_panics() {
        let (trace, ranges) = clean_trace();
        let inj = FaultInjection::from_onset(SensorId(0), FaultModel::Outage { drop_prob: 1.5 }, 0);
        inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(44));
    }

    #[test]
    #[should_panic(expected = "stuck-at dims")]
    fn dimension_mismatch_panics() {
        let (trace, ranges) = clean_trace();
        let inj =
            FaultInjection::from_onset(SensorId(0), FaultModel::StuckAt { value: vec![1.0] }, 0);
        inject_faults(&trace, &[inj], &ranges, &mut StdRng::seed_from_u64(11));
    }
}
