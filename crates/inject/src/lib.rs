//! Fault and attack injection for the `sentinet` sensor-network
//! error/attack detector.
//!
//! Implements every model of the paper's §3.3 as trace transformers:
//!
//! - **Faults** ([`FaultModel`]): stuck-at-value, calibration
//!   (multiplicative), additive, random-noise, plus the drift-to-stuck
//!   behaviour the paper observed on GDI sensor 6;
//! - **Attacks** ([`AttackModel`]): dynamic creation, dynamic deletion,
//!   dynamic change, and mixed — executed by an adversary who sees the
//!   honest sensors' values each step and forges readings that steer
//!   the network-observed mean, clamped to admissible ranges (§4.2).
//!
//! # Examples
//!
//! Reproduce the paper's stuck-at scenario for sensor 6:
//!
//! ```
//! use rand::SeedableRng;
//! use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
//! use sentinet_sim::{gdi, simulate, SensorId};
//!
//! let cfg = gdi::day_config();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let clean = simulate(&cfg, &mut rng);
//! let faulty = inject_faults(
//!     &clean,
//!     &[FaultInjection::from_onset(
//!         SensorId(6),
//!         FaultModel::StuckAt { value: vec![15.0, 1.0] },
//!         0,
//!     )],
//!     &cfg.ranges,
//!     &mut rng,
//! );
//! assert_eq!(faulty.len(), clean.len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod attacks;
mod faults;

pub use attacks::{first_k_sensors, inject_attacks, AttackInjection, AttackModel};
pub use faults::{inject_faults, FaultInjection, FaultModel};
