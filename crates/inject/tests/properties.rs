//! Property-based tests for the fault/attack injectors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{
    simulate, AttributeRange, EnvironmentModel, Payload, SensorId, SimConfig, Trace,
};

fn base_config(duration: u64, loss: f64) -> SimConfig {
    SimConfig {
        num_sensors: 6,
        sample_period: 300,
        duration,
        noise_std: vec![0.5, 1.0],
        ranges: vec![
            AttributeRange::new(-40.0, 60.0),
            AttributeRange::new(0.0, 100.0),
        ],
        loss_prob: loss,
        burst: None,
        malformed_prob: 0.0,
        environment: EnvironmentModel::gdi(),
    }
}

fn structure_fingerprint(t: &Trace) -> Vec<(u64, u16, bool)> {
    t.records()
        .iter()
        .map(|r| (r.time, r.sensor.0, r.payload.is_delivered()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_injection_preserves_trace_structure(
        seed in 0u64..500,
        loss in 0.0f64..0.4,
        sensor in 0u16..6,
    ) {
        let cfg = base_config(4 * 3600, loss);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let out = inject_faults(
            &clean,
            &[FaultInjection::from_onset(
                SensorId(sensor),
                FaultModel::StuckAt { value: vec![10.0, 10.0] },
                0,
            )],
            &cfg.ranges,
            &mut StdRng::seed_from_u64(seed),
        );
        // Same record count, same timing, same delivery pattern.
        prop_assert_eq!(structure_fingerprint(&clean), structure_fingerprint(&out));
    }

    #[test]
    fn faulty_readings_always_in_admissible_range(
        seed in 0u64..200,
        gain in 0.1f64..5.0,
        offset in -200.0f64..200.0,
    ) {
        let cfg = base_config(2 * 3600, 0.0);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let out = inject_faults(
            &clean,
            &[
                FaultInjection::from_onset(
                    SensorId(0),
                    FaultModel::Calibration { gain: vec![gain, gain] },
                    0,
                ),
                FaultInjection::from_onset(
                    SensorId(1),
                    FaultModel::Additive { offset: vec![offset, offset] },
                    0,
                ),
                FaultInjection::from_onset(
                    SensorId(2),
                    FaultModel::RandomNoise { std: vec![50.0, 50.0] },
                    0,
                ),
            ],
            &cfg.ranges,
            &mut StdRng::seed_from_u64(seed + 1),
        );
        for (_, _, r) in out.delivered() {
            prop_assert!((-40.0..=60.0).contains(&r.values()[0]), "{r}");
            prop_assert!((0.0..=100.0).contains(&r.values()[1]), "{r}");
        }
    }

    #[test]
    fn uninjected_sensors_bitwise_identical(
        seed in 0u64..200,
        target in 0u16..6,
    ) {
        let cfg = base_config(2 * 3600, 0.1);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let out = inject_faults(
            &clean,
            &[FaultInjection::from_onset(
                SensorId(target),
                FaultModel::Additive { offset: vec![5.0, 5.0] },
                0,
            )],
            &cfg.ranges,
            &mut StdRng::seed_from_u64(seed + 2),
        );
        for s in 0..6u16 {
            if s != target {
                prop_assert_eq!(
                    clean.sensor_series(SensorId(s)),
                    out.sensor_series(SensorId(s))
                );
            }
        }
    }

    #[test]
    fn attack_injection_preserves_structure_and_ranges(
        seed in 0u64..200,
        m in 1u16..4,
        tx in -30.0f64..50.0,
        hy in 5.0f64..95.0,
    ) {
        let cfg = base_config(4 * 3600, 0.1);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let out = inject_attacks(
            &clean,
            &[AttackInjection::from_onset(
                first_k_sensors(m),
                AttackModel::DynamicCreation { target: vec![tx, hy] },
                0,
            )],
            &cfg.ranges,
        );
        prop_assert_eq!(structure_fingerprint(&clean), structure_fingerprint(&out));
        for (_, _, r) in out.delivered() {
            prop_assert!((-40.0..=60.0).contains(&r.values()[0]));
            prop_assert!((0.0..=100.0).contains(&r.values()[1]));
        }
        // Honest sensors untouched.
        for s in m..6 {
            prop_assert_eq!(
                clean.sensor_series(SensorId(s)),
                out.sensor_series(SensorId(s))
            );
        }
    }

    #[test]
    fn deletion_attack_moves_mean_toward_freeze(
        seed in 0u64..100,
    ) {
        // With unclamped goals the forged mean should land near the
        // freeze value during the attack window.
        let mut cfg = base_config(4 * 3600, 0.0);
        cfg.environment = EnvironmentModel::Constant(vec![25.0, 60.0]);
        cfg.noise_std = vec![0.1, 0.1];
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let freeze = vec![20.0, 70.0];
        let out = inject_attacks(
            &clean,
            &[AttackInjection::from_onset(
                first_k_sensors(2),
                AttackModel::DynamicDeletion { freeze_at: freeze.clone() },
                0,
            )],
            &cfg.ranges,
        );
        // Mean over one sampling instant.
        let t0 = 0u64;
        let vals: Vec<&sentinet_sim::Reading> = out
            .records()
            .iter()
            .filter(|r| r.time == t0)
            .filter_map(|r| r.payload.reading())
            .collect();
        let mean_t: f64 = vals.iter().map(|r| r.values()[0]).sum::<f64>() / vals.len() as f64;
        prop_assert!((mean_t - 20.0).abs() < 0.5, "mean {mean_t}");
    }

    #[test]
    fn attack_respects_time_window(
        seed in 0u64..100,
        start_h in 1u64..3,
    ) {
        let cfg = base_config(4 * 3600, 0.0);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let start = start_h * 3600;
        let out = inject_attacks(
            &clean,
            &[AttackInjection {
                sensors: first_k_sensors(2),
                model: AttackModel::DynamicChange { offset: vec![-5.0, 0.0] },
                start,
                end: Some(start + 3600),
            }],
            &cfg.ranges,
        );
        for (t, s, r) in out.delivered() {
            if s.0 < 2 && !(start..start + 3600).contains(&t) {
                // Outside the window the compromised sensors are honest.
                let orig = clean
                    .sensor_series(s)
                    .into_iter()
                    .find(|(tt, _)| *tt == t)
                    .map(|(_, rr)| rr.clone())
                    .expect("record exists in clean trace");
                prop_assert_eq!(r.clone(), orig);
            }
        }
    }

    #[test]
    fn lost_packets_never_resurrected(
        seed in 0u64..200,
    ) {
        let cfg = base_config(2 * 3600, 0.5);
        let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let out = inject_attacks(
            &clean,
            &[AttackInjection::from_onset(
                first_k_sensors(3),
                AttackModel::DynamicCreation { target: vec![30.0, 40.0] },
                0,
            )],
            &cfg.ranges,
        );
        for (a, b) in clean.records().iter().zip(out.records()) {
            prop_assert_eq!(
                matches!(a.payload, Payload::Lost),
                matches!(b.payload, Payload::Lost)
            );
        }
    }
}
