//! `sentinet-controller` — the fault-tolerant tier above many
//! collectors.
//!
//! The paper's pipeline assumes one collector sees the whole field;
//! scaling past that means many collector processes and a controller
//! that survives any one of them dying. This crate supplies that
//! tier, std-only like the gateway:
//!
//! - **Partitioning** ([`partition`]): a [`PartitionMap`] of
//!   contiguous sensor ranges, each owned by one collector at an
//!   epoch, with a five-state health machine
//!   (`Ok → Suspect → Dead → HandingOff → Ok | Orphaned`). All map
//!   mutation funnels through one commit path in [`federation`],
//!   pinned by the `partition-map-mutation` xtask lint.
//! - **Failover** ([`federation`]): the controller clock is the
//!   maximum routed stream time; a suspect partition whose acks trail
//!   the clock past the silence deadline is declared dead, and a
//!   standby adopts its WAL directory — checkpoint-v2 snapshot
//!   restore plus WAL-tail replay through the identical admission
//!   path — then the controller redelivers its routed log (dedup
//!   absorbs the durable prefix). Exhausted retries commit
//!   `Orphaned`: readings NACK and are counted, never dropped.
//! - **Migration** ([`federation`]): live, epoch-fenced range
//!   rebalancing — a contiguous sensor sub-range drains on its source,
//!   cuts a checkpoint-v2 snapshot at a WAL cursor, and a destination
//!   adopts it durably before the map commits; a kill at any protocol
//!   step either rolls back (source keeps the range) or rolls forward
//!   (destination owns it), never both and never neither.
//! - **Drills** ([`chaos`]): seeded, replayable [`DrillPlan`]s kill,
//!   hang or poison collectors at chosen admitted-record coordinates,
//!   against in-process collectors ([`inproc`]) or real spawned
//!   `sentinet serve` children fenced by SIGKILL ([`process`]).
//! - **Merging** ([`report`]): every partition's WAL replays into a
//!   [`FleetReport`] whose diagnosis half is byte-identical between a
//!   drilled run and an uninterrupted one.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod federation;
pub mod inproc;
pub mod nemesis;
pub mod partition;
pub mod process;
pub mod report;

pub use chaos::{CollectorFault, DrillFault, DrillPlan, NetDrill, NetFault};
pub use federation::{
    replay_report, BackendError, Federation, FederationConfig, FederationError, HandoffPolicy,
    LinkDown, LinkReply, MigrationKind, PartitionBackend, PartitionLink,
};
pub use inproc::{InProcessBackend, InProcessLink, Zombie};
pub use nemesis::{run_campaign, CampaignSummary, NemesisConfig, NemesisFailure, NemesisViolation};
pub use partition::{PartitionHealth, PartitionId, PartitionMap, PartitionMapError, SensorRange};
pub use process::{ProcessBackend, ProcessConfig, ProcessLink, WireProtocol};
pub use report::{FederationEvent, FleetReport, PartitionStatus};
