//! Deterministic collector-fault drills, in the mould of
//! `engine::chaos::ChaosPlan` and the storage `FaultPlan`: a plan is
//! plain replayable data naming which collector to break, when, and
//! how. The same plan replayed over the same trace produces the same
//! federation events, which is what lets the drill tests assert exact
//! failover behaviour.

use crate::partition::PartitionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a drilled collector misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectorFault {
    /// The collector process dies outright (SIGKILL shape): its link
    /// drops and its in-memory state is gone; only the WAL survives.
    Kill,
    /// The collector wedges: it stops acking but holds its resources
    /// until the controller fences it.
    Hang,
    /// The collector's storage poisons (injected `ENOSPC` on a WAL
    /// append): it fail-stops and NACKs every subsequent reading.
    Poison,
}

/// One fault at a chosen coordinate: break `partition`'s owning
/// collector once it has admitted `after_records` readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrillFault {
    /// Partition whose epoch-1 owner is drilled.
    pub partition: PartitionId,
    /// Admitted-record count at which the fault fires.
    pub after_records: u64,
    /// The failure mode.
    pub fault: CollectorFault,
}

/// How a controller↔collector link misbehaves — the network half of a
/// nemesis plan, distinct from [`CollectorFault`] (the process half)
/// and the gateway's `FaultPlan` (the disk half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Symmetric partition: sends fail while the collector stays
    /// alive — the canonical zombie-writer setup. After the controller
    /// fails the partition over, the old owner is exactly the stale
    /// process epoch fencing must stop.
    Partition,
    /// Asymmetric one-way loss: the reading reaches the collector and
    /// is durably admitted, but the ack never makes it back. The
    /// controller must treat it as lost and redeliver; dedup absorbs
    /// the duplicate.
    AckLoss,
    /// Duplicate delivery: the same reading arrives twice (a retry
    /// storm shape); sequence dedup must absorb the copy.
    Duplicate,
    /// Delayed duplicate: a stale retransmit of the previous reading
    /// lands just before the current one — the reorder/dedup path must
    /// absorb it without perturbing the report.
    Delay,
}

/// One network fault window on `partition`'s epoch-1 link: starting at
/// the `after_records`th handled reading, the next `span` sends are
/// shaped by `fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDrill {
    /// Partition whose epoch-1 link is shaped.
    pub partition: PartitionId,
    /// Handled-reading count at which the window opens.
    pub after_records: u64,
    /// How many sends the window covers (at least 1).
    pub span: u64,
    /// The shaping applied inside the window.
    pub fault: NetFault,
}

/// A replayable set of collector faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrillPlan {
    /// The faults, in no particular order; each fires at most once.
    pub faults: Vec<DrillFault>,
    /// Network fault windows on epoch-1 links.
    pub net: Vec<NetDrill>,
}

impl DrillPlan {
    /// An empty plan (no faults; the fleet runs undisturbed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.net.is_empty()
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: DrillFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds one network fault window (builder style).
    #[must_use]
    pub fn with_net(mut self, net: NetDrill) -> Self {
        self.net.push(net);
        self
    }

    /// A seeded random plan: `num_faults` faults spread over
    /// `partitions` partitions, each firing within the first
    /// `max_records` admitted readings. Same seed, same plan.
    pub fn seeded(seed: u64, partitions: usize, max_records: u64, num_faults: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for _ in 0..num_faults {
            let partition = rng.gen_range(0..partitions.max(1));
            let after_records = rng.gen_range(1..max_records.max(2));
            let fault = match rng.gen_range(0..3u32) {
                0 => CollectorFault::Kill,
                1 => CollectorFault::Hang,
                _ => CollectorFault::Poison,
            };
            plan.faults.push(DrillFault {
                partition,
                after_records,
                fault,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_replayable() {
        let a = DrillPlan::seeded(42, 3, 100, 5);
        let b = DrillPlan::seeded(42, 3, 100, 5);
        assert_eq!(a, b, "same seed must reproduce the same plan");
        assert_eq!(a.faults.len(), 5);
        for f in &a.faults {
            assert!(f.partition < 3);
            assert!((1..100).contains(&f.after_records));
        }
        let c = DrillPlan::seeded(43, 3, 100, 5);
        assert_ne!(a, c, "different seeds should disagree somewhere");
    }

    #[test]
    fn builder_accumulates_faults() {
        let plan = DrillPlan::new().with_fault(DrillFault {
            partition: 1,
            after_records: 7,
            fault: CollectorFault::Kill,
        });
        assert!(!plan.is_empty());
        assert_eq!(plan.faults[0].after_records, 7);
    }
}
