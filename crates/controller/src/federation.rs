//! The federation engine: routes readings per-partition, watches
//! liveness on the stream clock, and commits every partition-map
//! transition. This file is the map's single commit path — the
//! `partition-map-mutation` lint rejects `commit_owner` /
//! `commit_health` calls anywhere else in library code.
//!
//! Failure model, mirroring the gateway's fail-stop discipline:
//!
//! - A link error or a storage-NACK streak marks the partition
//!   `Suspect` and fences the link. Readings keep routing; they
//!   buffer in the partition's routed log.
//! - The controller clock is the maximum routed stream time (every
//!   record advances it, whoever owns it), so a partition with no
//!   live peers still ages. Once a suspect partition's last-acked
//!   time trails the clock by more than the silence deadline it is
//!   declared `Dead` and failover begins.
//! - Failover starts a standby at the next epoch on the dead owner's
//!   WAL directory: `Collector::open` restores the checkpoint-v2
//!   snapshot and replays the WAL tail through the identical
//!   admission path. The controller then redelivers its whole routed
//!   log for the partition; WAL-append-gated dedup absorbs the
//!   durable prefix and appends only the lost tail, in routed order —
//!   which is what makes the merged report byte-identical to an
//!   uninterrupted run.
//! - When every attempt (capped exponential backoff) fails, the
//!   partition is committed `Orphaned`: its readings NACK and are
//!   counted, never silently dropped.

use crate::partition::{PartitionHealth, PartitionId, PartitionMap, SensorRange};
use crate::report::{FederationEvent, FleetReport, PartitionStatus};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_gateway::{backoff_delay, GatewayConfig, GatewayReport, RecoveryInfo};
use sentinet_gateway::{Collector, ReportCounters, UplinkStats};
use sentinet_sim::{SensorId, Timestamp};
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// A link to a partition's owner died (connection loss, exhausted
/// retries, drilled kill …). The partition turns `Suspect`.
#[derive(Debug)]
pub struct LinkDown(pub String);

impl fmt::Display for LinkDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A backend operation (start, finish, merge) failed.
#[derive(Debug)]
pub struct BackendError(pub String);

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a link did with one reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkReply {
    /// Durably admitted (v1 stop-and-wait, or in-process deliver).
    Acked,
    /// Accepted into a pipelined window; durable only after the next
    /// successful [`PartitionLink::flush`].
    Pipelined,
    /// The collector refused it (storage poisoned or budget shed) —
    /// fail-stop NACK, counted by the caller.
    Nacked,
}

/// One uplink to one partition's owning collector.
pub trait PartitionLink {
    /// Delivers one reading under the controller-assigned sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`LinkDown`] when the owner is unreachable.
    fn send(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<LinkReply, LinkDown>;

    /// Drains any pipelined window; on success everything previously
    /// [`LinkReply::Pipelined`] is durable.
    ///
    /// # Errors
    ///
    /// [`LinkDown`] when the owner is unreachable.
    fn flush(&mut self) -> Result<(), LinkDown>;

    /// Wire counters accumulated by this link (zeros for in-process
    /// links, which have no wire).
    fn stats(&self) -> UplinkStats {
        UplinkStats::default()
    }

    /// One liveness/pre-warm probe: the owner's committed fence epoch
    /// and last checkpointed WAL cursor, or `None` when the owner is
    /// unreachable (a missed beat, never an error). The default (no
    /// heartbeat channel) reports nothing.
    fn heartbeat(&mut self) -> Option<(u64, u64)> {
        None
    }

    /// Source half of a live range migration (`MigrateOffer` →
    /// `MigrateAccept` on the wire): the owner durably retires
    /// `start..end`, stages the split-off snapshot, and returns the
    /// cut's WAL cursor with the encoded snapshot payload. Safe to
    /// retry — an interrupted cut resumes from its staged outbox.
    /// The default has no migration channel.
    ///
    /// # Errors
    ///
    /// [`LinkDown`] when the owner is unreachable or the cut cannot
    /// be made durable.
    fn migrate_cut(&mut self, _start: u16, _end: u16) -> Result<(u64, Vec<u8>), LinkDown> {
        Err(LinkDown("link has no migration channel".into()))
    }

    /// Destination half of a live range migration (`MigrateAccept` →
    /// `MigrateDone` on the wire): the owner durably adopts the
    /// shipped snapshot for `start..end` at the source's cut
    /// `cursor`. The default has no migration channel.
    ///
    /// # Errors
    ///
    /// [`LinkDown`] when the owner is unreachable or the adoption
    /// cannot be made durable.
    fn migrate_adopt(
        &mut self,
        _start: u16,
        _end: u16,
        _cursor: u64,
        _snapshot: &[u8],
    ) -> Result<(), LinkDown> {
        Err(LinkDown("link has no migration channel".into()))
    }

    /// Tells the source its shipped payload is durably adopted, so
    /// the staged outbox copy may be dropped (`MigrateDone` on the
    /// wire). Best-effort: a leftover outbox is inert.
    ///
    /// # Errors
    ///
    /// [`LinkDown`] when the owner is unreachable.
    fn migrate_done(&mut self, _start: u16, _end: u16, _cursor: u64) -> Result<(), LinkDown> {
        Err(LinkDown("link has no migration channel".into()))
    }
}

/// Starts, fences, closes and merges partition owners. Implementations
/// decide what a "collector" is — an in-process [`Collector`]
/// (`InProcessBackend`) or a spawned `sentinet serve` child
/// (`ProcessBackend`).
pub trait PartitionBackend {
    /// The link type this backend hands out.
    type Link: PartitionLink;

    /// Starts (epoch 1) or adopts (epoch > 1) the owner of `p`.
    /// Adoption opens the dead owner's WAL directory, restoring its
    /// checkpoint snapshot and replaying the tail.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when no owner/standby can start.
    fn start(&mut self, p: PartitionId, epoch: u64) -> Result<Self::Link, BackendError>;

    /// Forcibly retires a link whose owner is presumed dead or
    /// wedged. Must be idempotent with the owner already gone.
    fn fence(&mut self, p: PartitionId, link: Self::Link);

    /// Gracefully closes a healthy owner.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the close handshake fails (the data is
    /// already durable; callers record the event and move on).
    fn finish(&mut self, p: PartitionId, link: Self::Link) -> Result<(), BackendError>;

    /// Rebuilds `p`'s final report by replaying its WAL through the
    /// identical admission path.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the replay fails.
    fn merge_report(&mut self, p: PartitionId) -> Result<GatewayReport, BackendError>;

    /// A heartbeat advertised `checkpoint_cursor` for `p`: stage the
    /// owner's latest checkpoint snapshot so a standby can adopt warm
    /// instead of cold. Default: no staging (adoption stays cold).
    fn prewarm(&mut self, _p: PartitionId, _checkpoint_cursor: u64) {}
}

/// Retry policy for standby adoption: capped exponential backoff with
/// optional seeded jitter (defaults keep it deterministic and fast —
/// drills compress time; production deployments raise the caps).
#[derive(Debug, Clone)]
pub struct HandoffPolicy {
    /// Adoption attempts before orphaning the partition.
    pub max_attempts: u32,
    /// First retry delay.
    pub backoff_base: Duration,
    /// Delay ceiling.
    pub backoff_cap: Duration,
    /// Jitter ceiling as a percentage of the delay (0 = none).
    pub jitter_pct: u32,
    /// Seed for the jitter RNG.
    pub jitter_seed: u64,
}

impl Default for HandoffPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            jitter_pct: 0,
            jitter_seed: 11,
        }
    }
}

/// Federation tuning.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Declare a suspect partition dead once its last-acked stream
    /// time trails the controller clock by more than this (stream
    /// seconds — one sensor sampling period is 300).
    pub silence_deadline: Timestamp,
    /// Consecutive storage NACKs before a partition turns suspect.
    pub storage_strikes: u32,
    /// Flush pipelined links every N routed readings per partition.
    pub flush_every: usize,
    /// Suspicion hysteresis: consecutive missed deliveries (link
    /// errors) before `Ok → Suspect` commits. 1 (the default, and the
    /// pre-hysteresis behaviour) suspects on the first miss; higher
    /// values let a single torn connection or delay spike heal in
    /// place — the recovery is counted as a flap, not a failover.
    pub suspect_after: u32,
    /// Drive the link's heartbeat channel every N routed readings per
    /// partition (0 disables). Each answered beat hands the owner's
    /// checkpoint cursor to [`PartitionBackend::prewarm`] so standbys
    /// stage the latest snapshot before any failover needs it.
    pub heartbeat_every: usize,
    /// Standby adoption retry policy.
    pub handoff: HandoffPolicy,
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            silence_deadline: 3600,
            storage_strikes: 3,
            flush_every: 32,
            suspect_after: 1,
            heartbeat_every: 0,
            handoff: HandoffPolicy::default(),
        }
    }
}

/// A federation-level failure (routing or merging — owner failures
/// are handled, not returned).
#[derive(Debug)]
pub enum FederationError {
    /// A reading's sensor falls outside every partition range.
    Unroutable {
        /// The offending sensor.
        sensor: SensorId,
    },
    /// An initial (epoch 1) owner could not start.
    Bootstrap {
        /// The partition.
        partition: PartitionId,
        /// The backend's complaint.
        detail: String,
    },
    /// A partition's WAL replay failed during the final merge.
    Merge {
        /// The partition.
        partition: PartitionId,
        /// The backend's complaint.
        detail: String,
    },
    /// A migration schedule is ill-formed (mid-flight failures are
    /// absorbed into events, never returned).
    Migration {
        /// The source partition.
        partition: PartitionId,
        /// What is wrong with the schedule.
        detail: String,
    },
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::Unroutable { sensor } => {
                write!(f, "sensor {sensor} falls outside every partition range")
            }
            FederationError::Bootstrap { partition, detail } => {
                write!(f, "partition {partition} failed to start: {detail}")
            }
            FederationError::Merge { partition, detail } => {
                write!(f, "partition {partition} failed to merge: {detail}")
            }
            FederationError::Migration { partition, detail } => {
                write!(f, "partition {partition} migration schedule: {detail}")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// Replays the WAL in `dir` through the identical admission path and
/// returns the rebuilt report — the shared merge primitive for every
/// backend. Checkpointing is disabled (offline replay must not
/// rewrite the log) and storage faults/budgets are cleared: the merge
/// reads what the owners wrote, it does not re-run their chaos.
///
/// # Errors
///
/// [`BackendError`] when the WAL cannot be opened or replayed.
pub fn replay_report(
    template: &GatewayConfig,
    dir: &Path,
) -> Result<(GatewayReport, RecoveryInfo), BackendError> {
    let mut config = template.clone();
    config.wal = sentinet_gateway::WalConfig::new(dir);
    config.wal.segment_max_bytes = template.wal.segment_max_bytes;
    config.checkpoint_every = 0;
    let (collector, info) = Collector::open(config).map_err(|e| BackendError(e.to_string()))?;
    let report = collector
        .finish()
        .map_err(|e| BackendError(e.to_string()))?;
    Ok((report, info))
}

/// Accumulated wire counters for one partition, across every epoch's
/// link.
#[derive(Debug, Default, Clone, Copy)]
struct WireTotals {
    frames_sent: u64,
    retransmits: u64,
    timeouts: u64,
    nacks: u64,
    reconnects: u64,
    acked: u64,
}

impl WireTotals {
    fn add(&mut self, s: UplinkStats) {
        self.frames_sent += s.frames_sent;
        self.retransmits += s.retransmits;
        self.timeouts += s.timeouts;
        self.nacks += s.nacks;
        self.reconnects += s.reconnects;
        self.acked += s.acked;
    }
}

/// What a scheduled live migration moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// Split the source's range at `at`: the source keeps
    /// `[start, at)`, a new partition appended to the map adopts
    /// `[at, end)` on a fresh collector.
    Split {
        /// The split point (strictly inside the source's range).
        at: SensorId,
    },
    /// Move the source's whole range into its adjacent partition's
    /// live collector (the left neighbour when one exists, else the
    /// right). The source ends the run owning an empty range.
    Rebalance,
}

/// One scheduled migration, armed until the source's routed count
/// reaches its trigger coordinate. Triggering on the routed count —
/// not wall time or ack progress — is what keeps the cut coordinate
/// fault-independent: a drilled and an uninterrupted run cut at the
/// identical stream position, so their diagnoses stay byte-identical.
#[derive(Debug, Clone)]
struct PendingMigration {
    source: PartitionId,
    kind: MigrationKind,
    after_routed: usize,
}

/// One reading in a partition's routed log, with its controller-
/// assigned per-sensor sequence number (a property of the log, never
/// reassigned across epochs — redelivery replays the same numbers).
#[derive(Debug, Clone)]
struct Routed {
    sensor: SensorId,
    seq: u64,
    time: Timestamp,
    values: Vec<f64>,
}

struct PartitionState<L> {
    link: Option<L>,
    routed: Vec<Routed>,
    /// Next routed index to hand to the link.
    sent: usize,
    /// Routed prefix known durable on the owner.
    acked: usize,
    /// Pipelined-but-unflushed readings on the current link.
    unflushed: usize,
    /// Next per-sensor sequence number for new routed readings.
    seq_next: std::collections::BTreeMap<SensorId, u64>,
    /// Stream time of the last durable reading.
    progress: Option<Timestamp>,
    strikes: u32,
    /// Consecutive missed deliveries short of the suspicion threshold.
    miss_streak: u32,
    /// Miss streaks that healed in place before reaching the
    /// threshold (suspicion hysteresis absorbed them).
    flaps: u32,
    /// Routed readings since the last heartbeat probe.
    since_heartbeat: usize,
    orphan_nacks: u64,
    failovers: u32,
    redelivered: u64,
    wire: WireTotals,
}

impl<L> PartitionState<L> {
    fn new() -> Self {
        Self {
            link: None,
            routed: Vec::new(),
            sent: 0,
            acked: 0,
            unflushed: 0,
            seq_next: std::collections::BTreeMap::new(),
            progress: None,
            strikes: 0,
            miss_streak: 0,
            flaps: 0,
            since_heartbeat: 0,
            orphan_nacks: 0,
            failovers: 0,
            redelivered: 0,
            wire: WireTotals::default(),
        }
    }
}

/// The controller: partition map + per-partition state + backend.
pub struct Federation<B: PartitionBackend> {
    map: PartitionMap,
    config: FederationConfig,
    backend: B,
    states: Vec<PartitionState<B::Link>>,
    /// Max routed stream time — the liveness clock.
    clock: Timestamp,
    events: Vec<FederationEvent>,
    rng: StdRng,
    /// Scheduled migrations not yet triggered.
    pending_migrations: Vec<PendingMigration>,
    migrations_started: u64,
    migrations_completed: u64,
    migrations_aborted: u64,
}

impl<B: PartitionBackend> Federation<B> {
    /// Starts every partition's epoch-1 owner.
    ///
    /// # Errors
    ///
    /// [`FederationError::Bootstrap`] when any initial owner refuses
    /// to start (bootstrap is not retried — there is nothing to fail
    /// over *from* yet).
    pub fn new(
        map: PartitionMap,
        config: FederationConfig,
        backend: B,
    ) -> Result<Self, FederationError> {
        let seed = config.handoff.jitter_seed;
        let mut fed = Self {
            map,
            config,
            backend,
            states: Vec::new(),
            clock: 0,
            events: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            pending_migrations: Vec::new(),
            migrations_started: 0,
            migrations_completed: 0,
            migrations_aborted: 0,
        };
        for p in 0..fed.map.len() {
            let link = fed
                .backend
                .start(p, 1)
                .map_err(|e| FederationError::Bootstrap {
                    partition: p,
                    detail: e.to_string(),
                })?;
            fed.map.commit_owner(p, 1);
            let mut state = PartitionState::new();
            state.link = Some(link);
            fed.states.push(state);
        }
        Ok(fed)
    }

    /// The current liveness clock (max routed stream time).
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Read access to the backend (drills inspect adoption
    /// [`RecoveryInfo`] through this).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The current health of partition `p`.
    pub fn health(&self, p: PartitionId) -> PartitionHealth {
        self.map.health(p)
    }

    /// The federation event log so far.
    pub fn events(&self) -> &[FederationEvent] {
        &self.events
    }

    /// Routes one reading to its partition's owner. Readings for
    /// suspect partitions buffer (redelivery covers them after
    /// failover); readings for orphaned partitions NACK and are
    /// counted.
    ///
    /// # Errors
    ///
    /// [`FederationError::Unroutable`] when no partition owns the
    /// sensor. Owner failures are absorbed into the health machine,
    /// never returned.
    pub fn route(
        &mut self,
        sensor: SensorId,
        time: Timestamp,
        values: &[f64],
    ) -> Result<(), FederationError> {
        self.clock = self.clock.max(time);
        let p = self
            .map
            .partition_of(sensor)
            .ok_or(FederationError::Unroutable { sensor })?;
        let state = &mut self.states[p];
        let seq = {
            let next = state.seq_next.entry(sensor).or_insert(0);
            let seq = *next;
            *next += 1;
            seq
        };
        state.routed.push(Routed {
            sensor,
            seq,
            time,
            values: values.to_vec(),
        });
        match self.map.health(p) {
            PartitionHealth::Ok => {
                if let Err(reason) = self.drive(p) {
                    self.miss(p, reason);
                } else {
                    let state = &mut self.states[p];
                    if state.miss_streak > 0 {
                        // The link healed short of the suspicion
                        // threshold: a flap, not a failover.
                        state.miss_streak = 0;
                        state.flaps += 1;
                    }
                    self.heartbeat(p);
                }
            }
            PartitionHealth::Orphaned => self.states[p].orphan_nacks += 1,
            // Suspect readings buffer; Dead/HandingOff never outlive
            // the failover call that commits them.
            _ => {}
        }
        self.maybe_migrate();
        self.check_liveness();
        Ok(())
    }

    /// Schedules a split of partition `p` at `at`, triggered once `p`
    /// has routed `after_routed` readings. The migration itself runs
    /// synchronously inside [`Federation::route`] — the stream holds
    /// while the sub-range quiesces, the cut ships and the new owner
    /// adopts — so the cut always lands at the same stream coordinate
    /// whatever faults an episode injects.
    ///
    /// # Errors
    ///
    /// [`FederationError::Migration`] when `p` does not exist or `at`
    /// is not strictly inside `p`'s current range.
    pub fn schedule_split(
        &mut self,
        p: PartitionId,
        at: SensorId,
        after_routed: usize,
    ) -> Result<(), FederationError> {
        if p >= self.map.len() {
            return Err(FederationError::Migration {
                partition: p,
                detail: format!("no such partition (map holds {})", self.map.len()),
            });
        }
        let range = self.map.range(p);
        if at.0 <= range.start || at.0 >= range.end {
            return Err(FederationError::Migration {
                partition: p,
                detail: format!("split point {at} not strictly inside {range}"),
            });
        }
        self.pending_migrations.push(PendingMigration {
            source: p,
            kind: MigrationKind::Split { at },
            after_routed,
        });
        Ok(())
    }

    /// Schedules a whole-range move of partition `p` into its adjacent
    /// partition, triggered once `p` has routed `after_routed`
    /// readings. `p` may not exist yet — a schedule may name a
    /// partition a scheduled split will create — so validation happens
    /// at trigger time (an unresolvable move aborts with an event,
    /// never an error).
    pub fn schedule_rebalance(&mut self, p: PartitionId, after_routed: usize) {
        self.pending_migrations.push(PendingMigration {
            source: p,
            kind: MigrationKind::Rebalance,
            after_routed,
        });
    }

    /// Migration totals so far: `(started, completed, aborted)`.
    pub fn migration_totals(&self) -> (u64, u64, u64) {
        (
            self.migrations_started,
            self.migrations_completed,
            self.migrations_aborted,
        )
    }

    /// Fires every scheduled migration whose source has reached its
    /// trigger coordinate. Loops so a migration that grows the map can
    /// arm another schedule in the same route call.
    fn maybe_migrate(&mut self) {
        loop {
            let Some(i) = self.pending_migrations.iter().position(|m| {
                m.source < self.states.len() && self.states[m.source].routed.len() >= m.after_routed
            }) else {
                return;
            };
            let m = self.pending_migrations.remove(i);
            match m.kind {
                MigrationKind::Split { at } => self.run_split(m.source, at),
                MigrationKind::Rebalance => self.run_rebalance(m.source),
            }
        }
    }

    /// Delivers the routed backlog of `p` over its current link.
    /// Returns `Err(reason)` on link loss or a NACK streak; NACK
    /// stalls short of the streak threshold return `Ok` and retry on
    /// the next route.
    fn drive(&mut self, p: PartitionId) -> Result<(), String> {
        let flush_every = self.config.flush_every.max(1);
        let strikes_cap = self.config.storage_strikes.max(1);
        let state = &mut self.states[p];
        let Some(link) = state.link.as_mut() else {
            return Err("no link to a partition marked ok".into());
        };
        while state.sent < state.routed.len() {
            let r = &state.routed[state.sent];
            match link.send(r.sensor, r.seq, r.time, &r.values) {
                Ok(LinkReply::Acked) => {
                    state.sent += 1;
                    state.acked = state.sent;
                    state.progress = Some(r.time);
                    state.strikes = 0;
                }
                Ok(LinkReply::Pipelined) => {
                    state.sent += 1;
                    state.unflushed += 1;
                    state.strikes = 0;
                    if state.unflushed >= flush_every {
                        link.flush().map_err(|e| e.to_string())?;
                        state.acked = state.sent;
                        state.unflushed = 0;
                        state.progress = Some(state.routed[state.acked - 1].time);
                    }
                }
                Ok(LinkReply::Nacked) => {
                    state.strikes += 1;
                    if state.strikes >= strikes_cap {
                        return Err(format!(
                            "storage NACK streak ({} consecutive)",
                            state.strikes
                        ));
                    }
                    // Leave the reading queued; the next route retries
                    // and the streak either clears or trips.
                    return Ok(());
                }
                Err(down) => return Err(down.to_string()),
            }
        }
        Ok(())
    }

    /// Like [`Self::drive`], then drains any pipelined window so the
    /// whole backlog is durable.
    fn drive_and_flush(&mut self, p: PartitionId) -> Result<(), String> {
        self.drive(p)?;
        let state = &mut self.states[p];
        if state.acked < state.sent {
            if let Some(link) = state.link.as_mut() {
                link.flush().map_err(|e| e.to_string())?;
                state.acked = state.sent;
                state.unflushed = 0;
                state.progress = Some(state.routed[state.acked - 1].time);
            }
        }
        Ok(())
    }

    /// Records one missed delivery on `p`: commits `Ok → Suspect`
    /// only once [`FederationConfig::suspect_after`] consecutive
    /// misses accumulate (hysteresis — a single torn connection no
    /// longer triggers fencing churn).
    fn miss(&mut self, p: PartitionId, reason: String) {
        let threshold = self.config.suspect_after.max(1);
        let state = &mut self.states[p];
        state.miss_streak += 1;
        if state.miss_streak >= threshold {
            state.miss_streak = 0;
            self.suspect(p, reason);
        }
    }

    /// Drives the heartbeat cadence for `p`: every
    /// [`FederationConfig::heartbeat_every`] routed readings, probe
    /// the link and stage the advertised checkpoint cursor with the
    /// backend so standbys pre-warm before any failover needs them.
    fn heartbeat(&mut self, p: PartitionId) {
        let every = self.config.heartbeat_every;
        if every == 0 {
            return;
        }
        let state = &mut self.states[p];
        state.since_heartbeat += 1;
        if state.since_heartbeat < every {
            return;
        }
        state.since_heartbeat = 0;
        if let Some(link) = state.link.as_mut() {
            if let Some((_epoch, cursor)) = link.heartbeat() {
                self.backend.prewarm(p, cursor);
            }
        }
    }

    /// Commits `Ok → Suspect` and fences the link. Anything the link
    /// pipelined but never flushed is no longer known durable.
    fn suspect(&mut self, p: PartitionId, reason: String) {
        if self.map.health(p) != PartitionHealth::Ok {
            return;
        }
        self.map.commit_health(p, PartitionHealth::Suspect);
        self.events.push(FederationEvent::Suspect {
            partition: p,
            at: self.clock,
            reason,
        });
        let state = &mut self.states[p];
        state.sent = state.acked;
        state.unflushed = 0;
        if let Some(link) = state.link.take() {
            state.wire.add(link.stats());
            self.backend.fence(p, link);
        }
    }

    /// Declares suspect partitions dead once the clock outruns their
    /// progress by more than the silence deadline, and fails them
    /// over.
    fn check_liveness(&mut self) {
        for p in 0..self.map.len() {
            if self.map.health(p) != PartitionHealth::Suspect {
                continue;
            }
            let last = self.states[p].progress;
            let silent_for = self.clock.saturating_sub(last.unwrap_or(0));
            if silent_for > self.config.silence_deadline {
                self.events.push(FederationEvent::Dead {
                    partition: p,
                    at: self.clock,
                    last_acked: last,
                    deadline: self.config.silence_deadline,
                });
                self.map.commit_health(p, PartitionHealth::Dead);
                self.failover(p);
            }
        }
    }

    /// Adopts partition `p` on a standby: `Dead → HandingOff`, then
    /// retry `backend.start` under capped exponential backoff,
    /// redelivering the whole routed log on each adopted link (dedup
    /// absorbs the durable prefix). Exhaustion commits `Orphaned`.
    fn failover(&mut self, p: PartitionId) {
        self.map.commit_health(p, PartitionHealth::HandingOff);
        let policy = self.config.handoff.clone();
        for attempt in 1..=policy.max_attempts.max(1) {
            if attempt > 1 {
                let delay = backoff_delay(
                    &mut self.rng,
                    policy.backoff_base,
                    policy.backoff_cap,
                    policy.jitter_pct,
                    attempt - 1,
                );
                std::thread::sleep(delay);
            }
            let epoch = self.map.epoch(p) + 1;
            self.events.push(FederationEvent::HandoffAttempt {
                partition: p,
                attempt,
                epoch,
            });
            let link = match self.backend.start(p, epoch) {
                Ok(link) => link,
                Err(_) => continue,
            };
            self.map.commit_owner(p, epoch);
            let state = &mut self.states[p];
            state.link = Some(link);
            state.sent = 0;
            state.acked = 0;
            state.unflushed = 0;
            state.strikes = 0;
            let backlog = state.routed.len() as u64;
            match self.drive(p) {
                Ok(()) => {
                    let state = &mut self.states[p];
                    state.redelivered += backlog;
                    state.failovers += 1;
                    self.map.commit_health(p, PartitionHealth::Ok);
                    self.events.push(FederationEvent::FailedOver {
                        partition: p,
                        at: self.clock,
                        epoch,
                        redelivered: backlog,
                    });
                    return;
                }
                Err(_) => {
                    let state = &mut self.states[p];
                    state.redelivered += state.sent as u64;
                    state.sent = state.acked;
                    state.unflushed = 0;
                    if let Some(link) = state.link.take() {
                        state.wire.add(link.stats());
                        self.backend.fence(p, link);
                    }
                }
            }
        }
        self.map.commit_health(p, PartitionHealth::Orphaned);
        let state = &mut self.states[p];
        let unacked = (state.routed.len() - state.acked) as u64;
        state.orphan_nacks += unacked;
        self.events.push(FederationEvent::Orphaned {
            partition: p,
            at: self.clock,
            attempts: policy.max_attempts.max(1),
            nacked: unacked,
        });
    }

    /// Settles partition `p` until its whole routed log is durably
    /// acked, driving faults through the ordinary suspect → dead →
    /// failover ladder (`stall_reason` labels a NACK stall with no
    /// more routes coming). Returns whether `p` ended healthy with
    /// nothing outstanding; `false` means it orphaned (or a failover
    /// left it terminal).
    fn settle(&mut self, p: PartitionId, stall_reason: &str) -> bool {
        // Each loop iteration either returns or commits a health
        // transition; Orphaned is terminal, so this terminates after
        // at most a handful of failovers.
        loop {
            match self.map.health(p) {
                PartitionHealth::Ok => {
                    if let Err(reason) = self.drive_and_flush(p) {
                        // Hysteresis applies here too: the loop
                        // re-drives until the streak either heals or
                        // trips the threshold, so `miss` cannot stall.
                        self.miss(p, reason);
                        continue;
                    }
                    if self.states[p].acked < self.states[p].routed.len() {
                        // A NACK stall with no more routes coming:
                        // settle it through the failover machine.
                        self.miss(p, stall_reason.to_string());
                        continue;
                    }
                    let state = &mut self.states[p];
                    if state.miss_streak > 0 {
                        state.miss_streak = 0;
                        state.flaps += 1;
                    }
                    return true;
                }
                PartitionHealth::Suspect => {
                    let last = self.states[p].progress;
                    self.events.push(FederationEvent::Dead {
                        partition: p,
                        at: self.clock,
                        last_acked: last,
                        deadline: self.config.silence_deadline,
                    });
                    self.map.commit_health(p, PartitionHealth::Dead);
                    self.failover(p);
                }
                PartitionHealth::Orphaned => return false,
                // failover() never returns in these states.
                PartitionHealth::Dead | PartitionHealth::HandingOff => return false,
            }
        }
    }

    /// Fences `p`'s current link and drives a fresh failover — the
    /// in-migration recovery step when a cut or adopt call dies under
    /// an injected fault. Returns whether `p` came back `Ok`.
    fn revive(&mut self, p: PartitionId) -> bool {
        let state = &mut self.states[p];
        state.sent = state.acked;
        state.unflushed = 0;
        let last = state.progress;
        if let Some(link) = state.link.take() {
            state.wire.add(link.stats());
            self.backend.fence(p, link);
        }
        self.events.push(FederationEvent::Dead {
            partition: p,
            at: self.clock,
            last_acked: last,
            deadline: self.config.silence_deadline,
        });
        self.map.commit_health(p, PartitionHealth::Dead);
        self.failover(p);
        self.map.health(p) == PartitionHealth::Ok
    }

    /// Drives the source-side cut for `range` on partition `p`,
    /// reviving `p` through the failover machine between attempts
    /// (`export_range` resumes an interrupted cut idempotently, so a
    /// crash mid-cut retries to the identical staged payload). `p` is
    /// committed `HandingOff` for the duration and back to `Ok` on
    /// success.
    fn cut_range(&mut self, p: PartitionId, range: SensorRange) -> Option<(u64, Vec<u8>)> {
        self.map.commit_health(p, PartitionHealth::HandingOff);
        let attempts = self.config.handoff.max_attempts.max(1);
        for _ in 0..attempts {
            let state = &mut self.states[p];
            let Some(link) = state.link.as_mut() else {
                break;
            };
            match link.migrate_cut(range.start, range.end) {
                Ok(staged) => {
                    self.map.commit_health(p, PartitionHealth::Ok);
                    return Some(staged);
                }
                Err(_) => {
                    if !self.revive(p) {
                        return None;
                    }
                    // revive committed `Ok`; restate the handoff so
                    // the health history reads true while we retry.
                    self.map.commit_health(p, PartitionHealth::HandingOff);
                }
            }
        }
        // Exhausted with the source still alive: hand it back to
        // ordinary routing before the caller aborts the migration.
        if self.map.health(p) == PartitionHealth::HandingOff {
            self.map.commit_health(p, PartitionHealth::Ok);
        }
        None
    }

    /// Removes every routed reading for `range` from `p`'s log, along
    /// with the range's sequence allocators (returned for the new
    /// owner). The drain that precedes every cut guarantees the
    /// removed entries are durably acked, and the cut retires the
    /// range on the source — leaving them in the log would make a
    /// later failover redeliver readings the source now NACKs as
    /// fenced, wedging the partition in a NACK-streak loop.
    fn prune_routed(&mut self, p: PartitionId, range: SensorRange) -> Vec<(SensorId, u64)> {
        let state = &mut self.states[p];
        state
            .routed
            .retain(|r| !(range.start <= r.sensor.0 && r.sensor.0 < range.end));
        state.sent = state.routed.len();
        state.acked = state.routed.len();
        state.unflushed = 0;
        let moved: Vec<(SensorId, u64)> = state
            .seq_next
            .iter()
            .filter(|(s, _)| range.start <= s.0 && s.0 < range.end)
            .map(|(s, n)| (*s, *n))
            .collect();
        for (s, _) in &moved {
            state.seq_next.remove(s);
        }
        moved
    }

    /// Runs a triggered split migration: quiesce the moving sub-range
    /// on the source, cut a durable checkpoint-v2 snapshot at a WAL
    /// cursor, start a fresh collector for the new partition and ship
    /// the snapshot into it, committing the new owner epoch only once
    /// the adoption is durable. Failures before the durable cut roll
    /// back (the map transfer restores the source's range); failures
    /// after it roll forward or orphan the moved range — acked
    /// readings are never silently dropped either way.
    fn run_split(&mut self, p: PartitionId, at: SensorId) {
        let range = self.map.range(p);
        let moved_range = SensorRange {
            start: at.0,
            end: range.end,
        };
        let dest_would_be = self.map.len();
        self.events.push(FederationEvent::MigrationStarted {
            source: p,
            dest: dest_would_be,
            range: moved_range,
            at: self.clock,
        });
        self.migrations_started += 1;
        if !self.settle(p, "unacked backlog at migration drain") {
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: dest_would_be,
                range: moved_range,
                at: self.clock,
                reason: "source could not drain its backlog".into(),
            });
            return;
        }
        let q = match self.map.split_at(p, at) {
            Ok(q) => q,
            Err(e) => {
                self.migrations_aborted += 1;
                self.events.push(FederationEvent::MigrationAborted {
                    source: p,
                    dest: dest_would_be,
                    range: moved_range,
                    at: self.clock,
                    reason: e.to_string(),
                });
                return;
            }
        };
        self.states.push(PartitionState::new());
        self.map.commit_health(q, PartitionHealth::HandingOff);
        let moved_seqs = self.prune_routed(p, moved_range);
        let Some((cursor, snapshot)) = self.cut_range(p, moved_range) else {
            // Pre-adopt abort: give the range back to the source.
            // If a cut attempt partially committed before the source
            // orphaned, the range NACKs there — counted, never silent.
            // sentinet-allow(unwrap-used): q was split off p above,
            // so the halves are adjacent by construction.
            self.map.transfer(q, p).unwrap();
            self.map.commit_health(q, PartitionHealth::Ok);
            let state = &mut self.states[p];
            for (s, n) in moved_seqs {
                state.seq_next.insert(s, n);
            }
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: q,
                range: moved_range,
                at: self.clock,
                reason: "source exhausted every cut attempt".into(),
            });
            return;
        };
        for (s, n) in moved_seqs {
            self.states[q].seq_next.insert(s, n);
        }
        // Fresh-destination ladder: attempt k starts the new owner at
        // epoch k, so a half-adopted attempt can never race its
        // successor for the new partition's WAL directory.
        let policy = self.config.handoff.clone();
        let attempts = policy.max_attempts.max(1);
        let mut adopted = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                let delay = backoff_delay(
                    &mut self.rng,
                    policy.backoff_base,
                    policy.backoff_cap,
                    policy.jitter_pct,
                    attempt - 1,
                );
                std::thread::sleep(delay);
            }
            let epoch = u64::from(attempt);
            self.events.push(FederationEvent::HandoffAttempt {
                partition: q,
                attempt,
                epoch,
            });
            let mut link = match self.backend.start(q, epoch) {
                Ok(link) => link,
                Err(_) => continue,
            };
            match link.migrate_adopt(moved_range.start, moved_range.end, cursor, &snapshot) {
                Ok(()) => {
                    adopted = Some((link, epoch));
                    break;
                }
                Err(_) => self.backend.fence(q, link),
            }
        }
        let Some((link, epoch)) = adopted else {
            // Roll-forward failed past the durable cut: the moved
            // range orphans — its readings NACK and are counted.
            self.map.commit_health(q, PartitionHealth::Orphaned);
            self.events.push(FederationEvent::Orphaned {
                partition: q,
                at: self.clock,
                attempts,
                nacked: 0,
            });
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: q,
                range: moved_range,
                at: self.clock,
                reason: "destination exhausted every adopt attempt after the cut".into(),
            });
            return;
        };
        self.map.commit_owner(q, epoch);
        self.states[q].link = Some(link);
        self.map.commit_health(q, PartitionHealth::Ok);
        if let Some(link) = self.states[p].link.as_mut() {
            // Best-effort: the destination holds the payload durably,
            // so the source's staged outbox copy may be dropped.
            let _ = link.migrate_done(moved_range.start, moved_range.end, cursor);
        }
        self.migrations_completed += 1;
        self.events.push(FederationEvent::MigrationCompleted {
            source: p,
            dest: q,
            range: moved_range,
            at: self.clock,
            cursor,
            epoch,
        });
    }

    /// Runs a triggered rebalance migration: move the source's whole
    /// range into its adjacent partition's live collector. Both sides
    /// drain first, the cut ships through the same durable outbox as
    /// a split, and the destination merges the snapshot into its live
    /// lineage (`import_range` under the adopt call). The source ends
    /// the run owning an empty range.
    fn run_rebalance(&mut self, p: PartitionId) {
        let range = self.map.range(p);
        // The left-adjacent partition when one exists, else the right
        // — deterministic, so every run picks the same destination.
        let dest = (0..self.map.len())
            .find(|&d| d != p && self.map.range(d).end == range.start)
            .or_else(|| {
                (0..self.map.len()).find(|&d| d != p && self.map.range(d).start == range.end)
            });
        let Some(d) = dest else {
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: p,
                range,
                at: self.clock,
                reason: "no adjacent partition to rebalance into".into(),
            });
            return;
        };
        self.events.push(FederationEvent::MigrationStarted {
            source: p,
            dest: d,
            range,
            at: self.clock,
        });
        self.migrations_started += 1;
        if range.is_empty()
            || !self.settle(p, "unacked backlog at migration drain")
            || !self.settle(d, "unacked backlog at migration drain")
        {
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: d,
                range,
                at: self.clock,
                reason: "source or destination could not drain its backlog".into(),
            });
            return;
        }
        let moved_seqs = self.prune_routed(p, range);
        let Some((cursor, snapshot)) = self.cut_range(p, range) else {
            let state = &mut self.states[p];
            for (s, n) in moved_seqs {
                state.seq_next.insert(s, n);
            }
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: d,
                range,
                at: self.clock,
                reason: "source exhausted every cut attempt".into(),
            });
            return;
        };
        for (s, n) in moved_seqs {
            self.states[d].seq_next.insert(s, n);
        }
        // Live-destination ladder: the adopt merges into d's running
        // collector; a failure revives d through the ordinary
        // failover machine (escalating its epoch) and retries.
        let attempts = self.config.handoff.max_attempts.max(1);
        let mut adopted = false;
        for _ in 0..attempts {
            if self.map.health(d) != PartitionHealth::Ok {
                break;
            }
            let Some(link) = self.states[d].link.as_mut() else {
                break;
            };
            match link.migrate_adopt(range.start, range.end, cursor, &snapshot) {
                Ok(()) => {
                    adopted = true;
                    break;
                }
                Err(_) => {
                    if !self.revive(d) {
                        break;
                    }
                }
            }
        }
        if !adopted {
            // Past the durable cut with no adopter: the moved range
            // orphans at the source — NACKed and counted, not lost
            // (the staged outbox still holds the payload).
            self.map.commit_health(p, PartitionHealth::Orphaned);
            self.events.push(FederationEvent::Orphaned {
                partition: p,
                at: self.clock,
                attempts,
                nacked: 0,
            });
            self.migrations_aborted += 1;
            self.events.push(FederationEvent::MigrationAborted {
                source: p,
                dest: d,
                range,
                at: self.clock,
                reason: "destination exhausted every adopt attempt after the cut".into(),
            });
            return;
        }
        // sentinet-allow(unwrap-used): adjacency was how `d` was
        // chosen, and neither range moved since.
        self.map.transfer(p, d).unwrap();
        if let Some(link) = self.states[p].link.as_mut() {
            let _ = link.migrate_done(range.start, range.end, cursor);
        }
        self.migrations_completed += 1;
        self.events.push(FederationEvent::MigrationCompleted {
            source: p,
            dest: d,
            range,
            at: self.clock,
            cursor,
            epoch: self.map.epoch(d),
        });
    }

    /// Ends the stream: settles every partition (draining backlogs,
    /// failing suspects over immediately — the stream clock has
    /// stopped, waiting on the deadline would wait forever), closes
    /// healthy owners, then merges every partition's WAL replay into
    /// the [`FleetReport`].
    ///
    /// # Errors
    ///
    /// [`FederationError::Merge`] when a partition's replay fails.
    pub fn finish(mut self) -> Result<FleetReport, FederationError> {
        for p in 0..self.map.len() {
            self.settle(p, "unacked backlog at end of stream");
            let state = &mut self.states[p];
            if let Some(link) = state.link.take() {
                state.wire.add(link.stats());
                if self.map.health(p) == PartitionHealth::Ok {
                    if let Err(e) = self.backend.finish(p, link) {
                        self.events.push(FederationEvent::FinishFailed {
                            partition: p,
                            detail: e.to_string(),
                        });
                    }
                } else {
                    self.backend.fence(p, link);
                }
            }
        }

        let mut partitions = Vec::with_capacity(self.map.len());
        let mut counters = ReportCounters::default();
        for p in 0..self.map.len() {
            let report = self
                .backend
                .merge_report(p)
                .map_err(|e| FederationError::Merge {
                    partition: p,
                    detail: e.to_string(),
                })?;
            let mut c = ReportCounters::from_report(&report);
            let wire = self.states[p].wire;
            c.frames_sent += wire.frames_sent;
            c.retransmits += wire.retransmits;
            c.timeouts += wire.timeouts;
            c.nacks += wire.nacks;
            c.reconnects += wire.reconnects;
            c.uplink_acked += wire.acked;
            let state = &self.states[p];
            c.flaps += u64::from(state.flaps);
            counters.merge(&c);
            partitions.push(PartitionStatus {
                partition: p,
                range: self.map.range(p),
                health: self.map.health(p),
                epoch: self.map.epoch(p),
                failovers: state.failovers,
                orphan_nacks: state.orphan_nacks,
                redelivered: state.redelivered,
                acked: state.acked as u64,
                routed: state.routed.len() as u64,
                flaps: state.flaps,
                report,
            });
        }
        counters.migrations_started = self.migrations_started;
        counters.migrations_completed = self.migrations_completed;
        counters.migrations_aborted = self.migrations_aborted;
        Ok(FleetReport {
            partitions,
            counters,
            events: self.events,
        })
    }
}
