//! The nemesis harness: seeded, deterministic fault campaigns over
//! the full federation stack. Each episode composes faults from three
//! families — network ([`NetFault`] windows: partitions, one-way ack
//! loss, duplication, delayed retransmits), process
//! ([`CollectorFault`]: kill / hang / poison) and disk (a gateway
//! [`FaultPlan`] wrapped around an owner's storage) — then checks
//! three fleet invariants:
//!
//! 1. **No acked reading lost**: every partition's merged report must
//!    account for at least as many admitted readings as the
//!    controller believes were acked.
//! 2. **Byte-identical diagnosis**: the drilled fleet's rendered
//!    diagnosis must equal an uninterrupted baseline's, byte for
//!    byte.
//! 3. **Single writer per partition**: after the run, every fenced
//!    but still-live old owner (a [`Zombie`]) is poked with a fresh
//!    append. Epoch fencing must reject it; an admitted append is a
//!    split-brain. The probed partitions are then re-merged so any
//!    landed append also surfaces as a diagnosis divergence —
//!    invariant 3 failing loudly through invariant 2 is exactly what
//!    the [`FenceCheck::Skip`] mutation self-test relies on.
//!
//! With the migration schedule enabled ([`NemesisConfig::migration`])
//! every episode also runs a live split plus rebalance-back while the
//! faults land on arbitrary protocol steps — drain, cut, adopt,
//! commit — and two extra checks apply: the diagnosis comparison runs
//! against a baseline that executed the *same* migration schedule
//! uninterrupted, and fenced old owners that touched a migrated range
//! are poked with a moved-range sensor (the *cut probe*) — no sensor
//! that changed hands may have two live writers.
//!
//! Plans are generated to stay *recoverable*: standbys outnumber the
//! faults that can force a failover, and disk faults are restricted
//! to delivery-path operations so bootstrap never dies before the
//! fault matters. Same seed, same campaign — a failure report names
//! the episode seed so one episode replays in isolation.

use crate::chaos::{CollectorFault, DrillFault, DrillPlan, NetDrill, NetFault};
use crate::federation::{replay_report, Federation, FederationConfig};
use crate::inproc::InProcessBackend;
use crate::partition::{PartitionHealth, PartitionMap, SensorRange};
use crate::report::FederationEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_gateway::{
    CutCheck, DeliverOutcome, FaultPlan, FaultSpec, FenceCheck, GatewayConfig, RejectCause,
    StorageFault, VfsOp,
};
use sentinet_sim::SensorId;
use std::fmt;
use std::path::PathBuf;

/// Campaign parameters. Everything that shapes an episode derives
/// from `seed`, so a campaign is one replayable value.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// Campaign seed; episode `i` runs under a seed mixed from this.
    pub seed: u64,
    /// Episodes to run.
    pub episodes: u32,
    /// Partitions in the fleet.
    pub partitions: usize,
    /// Sensors across the fleet.
    pub sensors: u16,
    /// Sampling ticks per episode (stream length = `ticks × sensors`).
    pub ticks: u64,
    /// Deliver-path fence mode. [`FenceCheck::Skip`] is the mutation
    /// self-test: the campaign MUST fail under it.
    pub fence: FenceCheck,
    /// Migration-cut mode. [`CutCheck::Skip`] is the migration
    /// mutation self-test: a cut that ships an empty snapshot makes
    /// acked readings vanish in the handoff, and the campaign MUST
    /// catch it.
    pub cut: CutCheck,
    /// Run the live-migration schedule in every episode (and the
    /// baseline): split partition 0 at its midpoint mid-stream, then
    /// rebalance the split-off range back, with faults free to land
    /// on any protocol step. Adds a forced post-migration partition
    /// window so a fenced old owner holding a migrated range gets
    /// probed after the run.
    pub migration: bool,
    /// Scratch root for per-episode WAL directories.
    pub root: PathBuf,
}

impl NemesisConfig {
    /// A campaign over the default small fleet: two partitions, four
    /// sensors, sixty ticks, fencing enforced.
    pub fn new(seed: u64, episodes: u32, root: impl Into<PathBuf>) -> Self {
        Self {
            seed,
            episodes,
            partitions: 2,
            sensors: 4,
            ticks: 60,
            fence: FenceCheck::Enforced,
            cut: CutCheck::Enforced,
            migration: false,
            root: root.into(),
        }
    }

    /// The same campaign with the live-migration schedule enabled in
    /// every episode.
    #[must_use]
    pub fn with_migration(mut self) -> Self {
        self.migration = true;
        self
    }
}

/// What a failed episode violated.
#[derive(Debug)]
pub enum NemesisViolation {
    /// A reading the controller counted as acked is missing from the
    /// partition's merged report.
    AckedLost {
        /// The partition.
        partition: usize,
        /// Readings the controller believes durable.
        acked: u64,
        /// Readings the merged replay actually accounts for.
        accepted: u64,
    },
    /// The drilled diagnosis diverged from the uninterrupted
    /// baseline.
    DiagnosisDiverged {
        /// First line that differs (baseline vs drilled), for triage.
        first_diff: String,
    },
    /// A fenced old owner admitted an append — two writers touched
    /// one partition's WAL.
    SplitBrain {
        /// The partition.
        partition: usize,
        /// Epoch the zombie owned.
        zombie_epoch: u64,
        /// Epoch the final owner holds.
        owner_epoch: u64,
    },
    /// A partition orphaned even though the plan reserved a standby
    /// for every failover-capable fault.
    Orphaned {
        /// The partition.
        partition: usize,
    },
    /// The federation itself errored (routing, bootstrap, merge).
    Error(String),
}

/// A failed episode: which one, under what seed, violating what.
#[derive(Debug)]
pub struct NemesisFailure {
    /// Episode index within the campaign.
    pub episode: u32,
    /// The episode's derived seed (replays the episode in isolation).
    pub episode_seed: u64,
    /// The violated invariant.
    pub violation: NemesisViolation,
}

impl fmt::Display for NemesisFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nemesis episode {} (seed {}) failed: ",
            self.episode, self.episode_seed
        )?;
        match &self.violation {
            NemesisViolation::AckedLost {
                partition,
                acked,
                accepted,
            } => write!(
                f,
                "partition {partition} lost acked readings ({acked} acked, {accepted} accounted)"
            ),
            NemesisViolation::DiagnosisDiverged { first_diff } => {
                write!(f, "diagnosis diverged from baseline: {first_diff}")
            }
            NemesisViolation::SplitBrain {
                partition,
                zombie_epoch,
                owner_epoch,
            } => write!(
                f,
                "split-brain on partition {partition}: epoch-{zombie_epoch} zombie appended \
                 under live epoch {owner_epoch}"
            ),
            NemesisViolation::Orphaned { partition } => {
                write!(f, "partition {partition} orphaned under a recoverable plan")
            }
            NemesisViolation::Error(detail) => write!(f, "federation error: {detail}"),
        }
    }
}

impl std::error::Error for NemesisFailure {}

/// What a completed campaign exercised — the numbers CI asserts on so
/// a quietly degenerate campaign (no faults fired, no zombies probed)
/// cannot pass as green.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Episodes completed.
    pub episodes: u32,
    /// Process faults (kill / hang / poison) injected.
    pub process_faults: u64,
    /// Network fault windows injected.
    pub net_faults: u64,
    /// Disk fault plans injected.
    pub disk_faults: u64,
    /// Episodes that composed a disk fault with the rest.
    pub disk_episodes: u32,
    /// Episodes run in the pipelined (protocol-v2 shaped) mode.
    pub pipelined_episodes: u32,
    /// Completed failovers across all episodes.
    pub failovers: u64,
    /// Miss streaks absorbed by hysteresis (no failover).
    pub flaps: u64,
    /// Fenced-but-live old owners poked after their runs.
    pub zombie_probes: u64,
    /// Zombie appends rejected with [`RejectCause::Fenced`].
    pub fence_probe_rejects: u64,
    /// Adoptions that started from a pre-warmed checkpoint image.
    pub prewarmed_adoptions: u64,
    /// Live migrations completed across all episodes.
    pub migrations: u64,
    /// Fenced old owners poked with a migrated-range sensor — the
    /// cut probe: no sensor that moved may have two live writers.
    pub cut_probes: u64,
    /// Cut probes rejected with [`RejectCause::Fenced`].
    pub cut_probe_rejects: u64,
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} episode(s): {} process / {} net / {} disk fault(s) ({} disk episode(s), \
             {} pipelined), {} failover(s), {} flap(s), {} zombie probe(s) \
             ({} fence-rejected), {} pre-warmed adoption(s), {} migration(s), \
             {} cut probe(s) ({} fence-rejected)",
            self.episodes,
            self.process_faults,
            self.net_faults,
            self.disk_faults,
            self.disk_episodes,
            self.pipelined_episodes,
            self.failovers,
            self.flaps,
            self.zombie_probes,
            self.fence_probe_rejects,
            self.prewarmed_adoptions,
            self.migrations,
            self.cut_probes,
            self.cut_probe_rejects
        )
    }
}

/// Hysteresis threshold every episode runs under: one torn send heals
/// as a flap, two consecutive misses commit suspicion.
const SUSPECT_AFTER: u32 = 2;

/// One generated episode: the fault plan plus the standby budget that
/// keeps it recoverable.
struct EpisodePlan {
    drill: DrillPlan,
    disk: Vec<(usize, FaultPlan)>,
    standbys: usize,
    pipelined: bool,
}

/// The deterministic episode stream, the same shape the federation
/// drills use: `ticks` sampling rounds over `sensors` sensors.
fn stream(sensors: u16, ticks: u64) -> Vec<(SensorId, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..ticks {
        let t = 300 * (i + 1);
        for s in 0..sensors {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Gateway template: checkpoint every 8 records so adoptions and
/// pre-warm caches genuinely exercise the snapshot path.
fn template() -> GatewayConfig {
    let mut config = GatewayConfig::new("overwritten-per-partition");
    config.checkpoint_every = 8;
    config
}

/// Derives episode `i`'s seed from the campaign seed (splitmix-style
/// mixing so neighbouring episodes decorrelate).
fn episode_seed(seed: u64, episode: u32) -> u64 {
    let mut z = seed.wrapping_add(
        u64::from(episode)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates episode `i`'s plan. Recoverability rule: every fault
/// that *can* force a failover (process, disk, and Partition/AckLoss
/// net windows) reserves one standby, plus one spare. Disk faults
/// target only delivery-path operations (`Append`/`Fsync`, `nth ≥ 3`)
/// so an owner always survives bootstrap. Every third episode forces
/// a threshold-length network partition so the split-brain probe is
/// exercised on a fixed cadence, not by luck.
fn generate_plan(config: &NemesisConfig, episode: u32, ep_seed: u64) -> EpisodePlan {
    let mut rng = StdRng::seed_from_u64(ep_seed);
    let per_partition =
        config.ticks * u64::from(config.sensors / config.partitions.max(1) as u16).max(1);
    let max_after = (per_partition * 2 / 3).max(3);
    let mut drill = DrillPlan::new();

    if rng.gen_bool(0.5) {
        drill = drill.with_fault(DrillFault {
            partition: rng.gen_range(0..config.partitions),
            after_records: rng.gen_range(1..max_after),
            fault: match rng.gen_range(0..3u32) {
                0 => CollectorFault::Kill,
                1 => CollectorFault::Hang,
                _ => CollectorFault::Poison,
            },
        });
    }

    for _ in 0..rng.gen_range(0..=2u32) {
        drill = drill.with_net(NetDrill {
            partition: rng.gen_range(0..config.partitions),
            after_records: rng.gen_range(1..max_after),
            span: rng.gen_range(1..=3),
            fault: match rng.gen_range(0..4u32) {
                0 => NetFault::Partition,
                1 => NetFault::AckLoss,
                2 => NetFault::Duplicate,
                _ => NetFault::Delay,
            },
        });
    }
    if episode.is_multiple_of(3) {
        // Forced threshold-length partition: the owner stays alive,
        // the controller fails over, and the old owner becomes the
        // zombie the post-run probe fences.
        drill = drill.with_net(NetDrill {
            partition: episode as usize % config.partitions,
            after_records: rng.gen_range(4..max_after),
            span: u64::from(SUSPECT_AFTER),
            fault: NetFault::Partition,
        });
    }
    if config.migration {
        // Forced post-migration partition on the migration destination
        // (partition 0): its fenced-but-live old owner holds the
        // rebalanced-back range, so the post-run cut probe gets a
        // zombie that adopted migrated sensors. The coordinate lands
        // after the rebalance trigger (≈ `per_partition/2` of its own
        // deliveries plus the migrated share).
        drill = drill.with_net(NetDrill {
            partition: 0,
            after_records: per_partition * 2 / 3,
            span: u64::from(SUSPECT_AFTER),
            fault: NetFault::Partition,
        });
    }

    let mut disk = Vec::new();
    if rng.gen_bool(0.25) || episode % 8 == 1 {
        let kind = match rng.gen_range(0..3u32) {
            0 => StorageFault::Enospc,
            1 => StorageFault::FsyncFail,
            _ => StorageFault::TornWrite {
                bytes: rng.gen_range(0..8),
            },
        };
        disk.push((
            rng.gen_range(0..config.partitions),
            FaultPlan::new().with_fault(FaultSpec {
                path: String::new(),
                op: if rng.gen_bool(0.5) {
                    VfsOp::Append
                } else {
                    VfsOp::Fsync
                },
                nth: rng.gen_range(3..20),
                kind,
                count: 1,
            }),
        ));
    }

    // With migration on, a Partition/AckLoss window can land on the
    // cut/adopt retry ladder, where every shaped attempt revives the
    // partition through a fresh failover — budget the window's full
    // span instead of one.
    let failover_capable = drill.faults.len()
        + disk.len()
        + drill
            .net
            .iter()
            .filter(|d| matches!(d.fault, NetFault::Partition | NetFault::AckLoss))
            .map(|d| if config.migration { d.span as usize } else { 1 })
            .sum::<usize>();
    EpisodePlan {
        drill,
        disk,
        standbys: failover_capable + 1,
        pipelined: episode % 2 == 1,
    }
}

/// Applies the fixed live-migration schedule when the campaign runs
/// with migrations: split partition 0 at the midpoint of its range a
/// third of the way into its stream, then rebalance the split-off
/// partition (id = `config.partitions`) back into it. Triggers key on
/// routed counts, which faults cannot perturb, so the cut lands at
/// one stream coordinate in the baseline and every episode alike.
fn schedule_migrations(fed: &mut Federation<InProcessBackend>, config: &NemesisConfig) {
    if !config.migration {
        return;
    }
    let width = config.sensors / config.partitions.max(1) as u16;
    let per_partition = config.ticks * u64::from(width.max(1));
    fed.schedule_split(0, SensorId(width / 2), (per_partition / 3) as usize)
        // sentinet-allow(expect-used): the schedule is fixed — partition 0
        // exists and `width / 2` is strictly inside its range for every
        // campaign geometry; a failure here is a harness bug worth a panic.
        .expect("the fixed migration schedule is non-degenerate");
    fed.schedule_rebalance(config.partitions, (per_partition / 6) as usize);
}

/// First line where `baseline` and `got` differ, for a failure
/// message that triages without dumping two full reports.
fn first_diff(baseline: &str, got: &str) -> String {
    for (i, (b, g)) in baseline.lines().zip(got.lines()).enumerate() {
        if b != g {
            return format!("line {}: baseline {b:?} vs drilled {g:?}", i + 1);
        }
    }
    format!(
        "lengths differ: baseline {} byte(s), drilled {} byte(s)",
        baseline.len(),
        got.len()
    )
}

/// Runs the campaign: one uninterrupted baseline, then `episodes`
/// seeded fault episodes, each checked against all three invariants.
/// Returns the first violation, or the campaign's exercise summary.
///
/// # Errors
///
/// [`NemesisFailure`] naming the episode, its seed and the violated
/// invariant.
pub fn run_campaign(config: &NemesisConfig) -> Result<CampaignSummary, NemesisFailure> {
    let template = template();
    let fail = |episode: u32, episode_seed: u64, violation: NemesisViolation| NemesisFailure {
        episode,
        episode_seed,
        violation,
    };

    // The uninterrupted baseline, computed once per campaign: same
    // stream, no faults, fencing enforced.
    let baseline_dir = config.root.join("baseline");
    // sentinet-allow(io-outside-vfs): scratch-directory cleanup, not
    // durable-path mutation — fault injection has nothing to cover.
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let baseline = {
        let map = PartitionMap::split_even(config.sensors, config.partitions)
            // sentinet-allow(expect-used): campaign geometry is fixed with
            // sensors >= partitions, never a degenerate split.
            .expect("nemesis fleets are non-degenerate");
        let backend = InProcessBackend::new(
            template.clone(),
            &baseline_dir,
            config.partitions,
            0,
            DrillPlan::new(),
        );
        let mut fed = Federation::new(map, FederationConfig::default(), backend)
            .map_err(|e| fail(0, config.seed, NemesisViolation::Error(e.to_string())))?;
        schedule_migrations(&mut fed, config);
        for (sensor, time, values) in stream(config.sensors, config.ticks) {
            fed.route(sensor, time, &values)
                .map_err(|e| fail(0, config.seed, NemesisViolation::Error(e.to_string())))?;
        }
        fed.finish()
            .map_err(|e| fail(0, config.seed, NemesisViolation::Error(e.to_string())))?
            .render_diagnosis()
    };

    let mut summary = CampaignSummary::default();
    for episode in 0..config.episodes {
        let ep_seed = episode_seed(config.seed, episode);
        let plan = generate_plan(config, episode, ep_seed);
        summary.process_faults += plan.drill.faults.len() as u64;
        summary.net_faults += plan.drill.net.len() as u64;
        summary.disk_faults += plan.disk.len() as u64;
        if !plan.disk.is_empty() {
            summary.disk_episodes += 1;
        }
        if plan.pipelined {
            summary.pipelined_episodes += 1;
        }

        let dir = config.root.join(format!("ep{episode}"));
        // sentinet-allow(io-outside-vfs): scratch-directory cleanup.
        let _ = std::fs::remove_dir_all(&dir);
        let map = PartitionMap::split_even(config.sensors, config.partitions)
            // sentinet-allow(expect-used): campaign geometry is fixed with
            // sensors >= partitions, never a degenerate split.
            .expect("nemesis fleets are non-degenerate");
        let mut backend = InProcessBackend::new(
            template.clone(),
            &dir,
            config.partitions,
            plan.standbys,
            plan.drill,
        )
        .with_fence(config.fence)
        .with_cut(config.cut)
        .with_pipelined(plan.pipelined);
        for (p, disk_plan) in plan.disk {
            backend = backend.with_disk_fault(p, disk_plan);
        }
        let stash = backend.zombie_stash();

        let fed_config = FederationConfig {
            suspect_after: SUSPECT_AFTER,
            heartbeat_every: 8,
            ..FederationConfig::default()
        };
        let mut fed = Federation::new(map, fed_config, backend)
            .map_err(|e| fail(episode, ep_seed, NemesisViolation::Error(e.to_string())))?;
        schedule_migrations(&mut fed, config);
        for (sensor, time, values) in stream(config.sensors, config.ticks) {
            fed.route(sensor, time, &values)
                .map_err(|e| fail(episode, ep_seed, NemesisViolation::Error(e.to_string())))?;
        }
        for p in 0..config.partitions {
            if fed.backend().recovery(p).is_some_and(|r| r.prewarmed) {
                summary.prewarmed_adoptions += 1;
            }
        }
        let mut fleet = fed
            .finish()
            .map_err(|e| fail(episode, ep_seed, NemesisViolation::Error(e.to_string())))?;

        // Invariant: a recoverable plan never orphans, and no acked
        // reading goes missing from the merged replay.
        for status in &fleet.partitions {
            if status.health == PartitionHealth::Orphaned {
                return Err(fail(
                    episode,
                    ep_seed,
                    NemesisViolation::Orphaned {
                        partition: status.partition,
                    },
                ));
            }
            let accepted = status.report.ingest.accepted as u64;
            if accepted < status.acked {
                return Err(fail(
                    episode,
                    ep_seed,
                    NemesisViolation::AckedLost {
                        partition: status.partition,
                        acked: status.acked,
                        accepted,
                    },
                ));
            }
            summary.failovers += u64::from(status.failovers);
            summary.flaps += u64::from(status.flaps);
        }

        // Ranges that changed hands, for the cut probe below.
        let moved: Vec<(usize, usize, SensorRange)> = fleet
            .events
            .iter()
            .filter_map(|e| match e {
                FederationEvent::MigrationCompleted {
                    source,
                    dest,
                    range,
                    ..
                } => Some((*source, *dest, *range)),
                _ => None,
            })
            .collect();
        summary.migrations += moved.len() as u64;

        // Invariant: single writer per partition. Every fenced but
        // still-live old owner gets poked with a fresh append; epoch
        // fencing must reject it.
        // sentinet-allow(unwrap-used): a poisoned stash mutex means a
        // panicking drill thread; propagating the panic is honest.
        let zombies: Vec<_> = stash.lock().unwrap().drain(..).collect();
        let mut probed = Vec::new();
        for (i, mut z) in zombies.into_iter().enumerate() {
            let owner_epoch = fleet.partitions[z.partition].epoch;
            if owner_epoch <= z.epoch {
                continue;
            }
            summary.zombie_probes += 1;
            let range = fleet.partitions[z.partition].range;
            let seq = config.ticks + 1000 + i as u64;
            let time = 300 * (config.ticks + 50);
            match z
                .collector
                .deliver(SensorId(range.start), seq, time, vec![21.0, 55.0])
            {
                Ok(DeliverOutcome::Rejected(RejectCause::Fenced)) => {
                    summary.fence_probe_rejects += 1;
                }
                // A poisoned or shedding zombie cannot append either;
                // that is a safe (if accidental) stop.
                Ok(DeliverOutcome::Rejected(_)) | Err(_) => {}
                Ok(_) => {
                    return Err(fail(
                        episode,
                        ep_seed,
                        NemesisViolation::SplitBrain {
                            partition: z.partition,
                            zombie_epoch: z.epoch,
                            owner_epoch,
                        },
                    ));
                }
            }
            // The cut probe: if this zombie exported or adopted a
            // migrated range while it owned the partition, a sensor
            // from that range must reject too — a moved sensor with
            // two live writers is the migration flavour of
            // split-brain.
            for (j, (source, dest, moved_range)) in moved.iter().enumerate() {
                if *source != z.partition && *dest != z.partition {
                    continue;
                }
                summary.cut_probes += 1;
                let seq = config.ticks + 2000 + i as u64 * 16 + j as u64;
                let time = 300 * (config.ticks + 60);
                match z
                    .collector
                    .deliver(SensorId(moved_range.start), seq, time, vec![22.0, 57.0])
                {
                    Ok(DeliverOutcome::Rejected(RejectCause::Fenced)) => {
                        summary.cut_probe_rejects += 1;
                    }
                    Ok(DeliverOutcome::Rejected(_)) | Err(_) => {}
                    Ok(_) => {
                        return Err(fail(
                            episode,
                            ep_seed,
                            NemesisViolation::SplitBrain {
                                partition: z.partition,
                                zombie_epoch: z.epoch,
                                owner_epoch,
                            },
                        ));
                    }
                }
            }
            probed.push(z.partition);
        }
        // Re-merge probed partitions: if an append slipped through
        // anyway it must surface in the diagnosis comparison below.
        for p in probed {
            let (report, _) = replay_report(&template, &dir.join(format!("p{p}")))
                .map_err(|e| fail(episode, ep_seed, NemesisViolation::Error(e.to_string())))?;
            fleet.partitions[p].report = report;
        }

        // Invariant: the drilled diagnosis is byte-identical to the
        // uninterrupted baseline.
        let diagnosis = fleet.render_diagnosis();
        if diagnosis != baseline {
            return Err(fail(
                episode,
                ep_seed,
                NemesisViolation::DiagnosisDiverged {
                    first_diff: first_diff(&baseline, &diagnosis),
                },
            ));
        }

        summary.episodes += 1;
        // sentinet-allow(io-outside-vfs): scratch-directory cleanup.
        let _ = std::fs::remove_dir_all(&dir);
    }
    // sentinet-allow(io-outside-vfs): scratch-directory cleanup.
    let _ = std::fs::remove_dir_all(&baseline_dir);
    Ok(summary)
}
