//! In-process backend: each partition owner is a [`Collector`] in
//! this process, one WAL directory per partition under a common
//! root. This is the deterministic drill harness — no sockets, no
//! wall-clock timeouts — and the reference implementation of the
//! handoff contract: adoption is nothing but `Collector::open` on the
//! dead owner's WAL directory (checkpoint-v2 snapshot restore plus
//! WAL-tail replay through the identical admission path).
//!
//! The nemesis campaign drives this backend through all three fault
//! families: process faults ([`CollectorFault`]), network shaping
//! ([`crate::chaos::NetFault`] windows on epoch-1 links), and disk
//! faults (a gateway `FaultPlan` wrapped around an owner's storage).
//! Two extra seams exist purely for the campaign's invariants:
//!
//! - **Zombie stash**: `fence` normally drops the link (a crash), but
//!   with the stash enabled a still-live collector is parked instead,
//!   tagged with the epoch it owned. After the run the campaign pokes
//!   each zombie with a fresh append — epoch fencing must reject it,
//!   or the fleet split-brained.
//! - **Pipelined mode**: links buffer readings and flush them as
//!   coalesced `deliver_batch` calls with an explicit `sync_wal`,
//!   mirroring the protocol-v2 credit-window shape, so one campaign
//!   covers both delivery disciplines.

use crate::chaos::{CollectorFault, DrillPlan, NetFault};
use crate::federation::{
    replay_report, BackendError, LinkDown, LinkReply, PartitionBackend, PartitionLink,
};
use crate::partition::PartitionId;
use sentinet_gateway::{
    decode_collector, encode_collector, Collector, CutCheck, DeliverOutcome, FaultPlan, FaultSpec,
    FaultyVfs, FenceCheck, GatewayConfig, RecoveryInfo, StorageFault, Vfs, VfsOp, CHECKPOINT_FILE,
};
use sentinet_sim::{SensorId, Timestamp};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A fenced-but-alive collector, parked by the zombie stash: the
/// in-process stand-in for a partitioned old owner that never heard it
/// was deposed. The nemesis campaign delivers a fresh reading through
/// it after the run; epoch fencing must NACK the append.
pub struct Zombie {
    /// The partition it used to own.
    pub partition: PartitionId,
    /// The epoch it owned the partition at.
    pub epoch: u64,
    /// The still-live collector, WAL handles and all.
    pub collector: Collector,
}

/// Backend running every partition owner as an in-process
/// [`Collector`].
pub struct InProcessBackend {
    template: GatewayConfig,
    wal_root: PathBuf,
    standbys: usize,
    drill: DrillPlan,
    fired: Vec<bool>,
    /// Per-partition disk fault plans, applied to the epoch-1 owner.
    disk: Vec<(PartitionId, FaultPlan)>,
    disk_fired: Vec<bool>,
    fence: FenceCheck,
    cut: CutCheck,
    pipelined: bool,
    zombies: Option<Arc<Mutex<Vec<Zombie>>>>,
    /// Checkpoint images staged by heartbeat-driven `prewarm` calls.
    prewarm_cache: Vec<Option<Vec<u8>>>,
    recoveries: Vec<Option<RecoveryInfo>>,
}

impl InProcessBackend {
    /// A backend over `partitions` WAL directories
    /// (`wal_root/p{N}`), cloned from `template` (its `wal.dir` is
    /// ignored). `standbys` bounds how many adoptions (epoch > 1
    /// starts) can ever succeed; `drill` breaks epoch-1 owners at the
    /// planned coordinates.
    pub fn new(
        template: GatewayConfig,
        wal_root: impl Into<PathBuf>,
        partitions: usize,
        standbys: usize,
        drill: DrillPlan,
    ) -> Self {
        let fired = vec![false; drill.faults.len()];
        Self {
            template,
            wal_root: wal_root.into(),
            standbys,
            drill,
            fired,
            disk: Vec::new(),
            disk_fired: Vec::new(),
            fence: FenceCheck::Enforced,
            cut: CutCheck::Enforced,
            pipelined: false,
            zombies: None,
            prewarm_cache: (0..partitions).map(|_| None).collect(),
            recoveries: (0..partitions).map(|_| None).collect(),
        }
    }

    /// Sets the deliver-path fence-check mode stamped into every
    /// owner's config. [`FenceCheck::Skip`] is the mutation seam: the
    /// nemesis self-test flips it to prove the campaign catches the
    /// split-brain fencing prevents.
    #[must_use]
    pub fn with_fence(mut self, fence: FenceCheck) -> Self {
        self.fence = fence;
        self
    }

    /// Sets the migration-cut mode stamped into every owner's
    /// config. [`CutCheck::Skip`] is the mutation seam: the nemesis
    /// self-test flips it to prove the migration campaign catches a
    /// cut that ships an empty snapshot (acked readings vanishing in
    /// the handoff).
    #[must_use]
    pub fn with_cut(mut self, cut: CutCheck) -> Self {
        self.cut = cut;
        self
    }

    /// Switches links to the pipelined mode: readings buffer on the
    /// link and flush as coalesced batches, mirroring protocol v2.
    #[must_use]
    pub fn with_pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Wraps the epoch-1 owner of `p` in a [`FaultyVfs`] running
    /// `plan` — the disk-fault family of a nemesis episode.
    #[must_use]
    pub fn with_disk_fault(mut self, p: PartitionId, plan: FaultPlan) -> Self {
        self.disk.push((p, plan));
        self.disk_fired.push(false);
        self
    }

    /// Enables the zombie stash and returns its shared handle. The
    /// handle outlives the backend (which `Federation::finish`
    /// consumes), so the campaign can probe stashed collectors after
    /// the run.
    pub fn zombie_stash(&mut self) -> Arc<Mutex<Vec<Zombie>>> {
        self.zombies.get_or_insert_with(Arc::default).clone()
    }

    /// The [`RecoveryInfo`] of the most recent `start` for `p` —
    /// drills assert an adoption actually restored from a checkpoint
    /// snapshot (and, with heartbeats on, that it adopted pre-warmed).
    pub fn recovery(&self, p: PartitionId) -> Option<&RecoveryInfo> {
        self.recoveries.get(p).and_then(Option::as_ref)
    }

    fn partition_dir(&self, p: PartitionId) -> PathBuf {
        self.wal_root.join(format!("p{p}"))
    }
}

/// One armed network-shaping window on an epoch-1 link.
struct ArmedNet {
    after: u64,
    remaining: u64,
    fault: NetFault,
}

/// Link to an in-process collector, with the drill's kill/hang
/// coordinate and any network-shaping windows armed.
pub struct InProcessLink {
    collector: Option<Collector>,
    epoch: u64,
    armed: Option<(u64, CollectorFault)>,
    net: Vec<ArmedNet>,
    /// Readings admitted (durable) through this link.
    delivered: u64,
    /// Readings handled (attempted) — the net-window clock.
    handled: u64,
    /// A drilled `Hang` fired: the collector holds its resources but
    /// answers nothing until fenced.
    wedged: bool,
    pipelined: bool,
    /// The pipelined window: readings accepted but not yet durable.
    window: Vec<(SensorId, u64, Timestamp, Vec<f64>)>,
    /// The most recent reading, for `NetFault::Delay` retransmits.
    last: Option<(SensorId, u64, Timestamp, Vec<f64>)>,
    /// An ack-path fault deferred to the next flush (pipelined mode
    /// has no per-reading ack to lose or duplicate).
    flush_fault: Option<NetFault>,
}

impl InProcessLink {
    /// Delivers one reading straight through the collector (the v1
    /// stop-and-wait shape).
    fn deliver_one(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<LinkReply, LinkDown> {
        let Some(collector) = self.collector.as_mut() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        match collector.deliver(sensor, seq, time, values.to_vec()) {
            Ok(DeliverOutcome::Accepted) | Ok(DeliverOutcome::Duplicate) => {
                self.delivered += 1;
                Ok(LinkReply::Acked)
            }
            Ok(DeliverOutcome::Rejected(_)) => Ok(LinkReply::Nacked),
            Err(e) => Err(LinkDown(e.to_string())),
        }
    }

    /// Fires a pending drilled kill/hang once its admitted-records
    /// coordinate has been reached. Sends and migration steps share
    /// this check, so a fault armed between two sends lands on
    /// whichever protocol step runs next — including a cut or adopt.
    fn fire_armed(&mut self) -> Result<(), LinkDown> {
        if let Some((at, fault)) = self.armed {
            if self.delivered >= at {
                self.armed = None;
                match fault {
                    // Process death: in-memory state gone, WAL stays.
                    CollectorFault::Kill => self.collector = None,
                    // Wedged: alive but mute until fenced.
                    CollectorFault::Hang => self.wedged = true,
                    CollectorFault::Poison => {}
                }
                return Err(LinkDown(format!(
                    "drill {fault:?} after {at} admitted reading(s)"
                )));
            }
        }
        Ok(())
    }

    /// The net fault shaping this send, if any window is open. Each
    /// shaped send consumes one unit of its window's span.
    fn shaping(&mut self) -> Option<NetFault> {
        let handled = self.handled;
        self.net.iter_mut().find_map(|d| {
            if handled >= d.after && d.remaining > 0 {
                d.remaining -= 1;
                Some(d.fault)
            } else {
                None
            }
        })
    }
}

impl PartitionLink for InProcessLink {
    fn send(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<LinkReply, LinkDown> {
        self.fire_armed()?;
        if self.wedged {
            return Err(LinkDown("collector is wedged".into()));
        }
        let shaped = self.shaping();
        self.handled += 1;
        if shaped == Some(NetFault::Partition) {
            // The send is lost in the network; the collector itself
            // stays alive — the canonical zombie-writer setup.
            return Err(LinkDown("net partition: send lost".into()));
        }
        if self.collector.is_none() {
            return Err(LinkDown("collector process is gone".into()));
        }
        if self.pipelined {
            match shaped {
                // No per-reading ack exists to lose or duplicate in
                // the credit-window mode; the fault shapes the next
                // cumulative ack instead.
                Some(f @ (NetFault::AckLoss | NetFault::Duplicate)) => {
                    self.flush_fault = Some(f);
                }
                Some(NetFault::Delay) => {
                    // A stale retransmit of the previous reading lands
                    // in the window ahead of the current one.
                    if let Some(stale) = self.last.clone() {
                        self.window.push(stale);
                    }
                }
                _ => {}
            }
            let r = (sensor, seq, time, values.to_vec());
            self.last = Some(r.clone());
            self.window.push(r);
            return Ok(LinkReply::Pipelined);
        }
        if shaped == Some(NetFault::Delay) {
            // Stale retransmit first; dedup absorbs it.
            if let Some((s, q, t, v)) = self.last.clone() {
                let _ = self.deliver_one(s, q, t, &v)?;
            }
        }
        let reply = self.deliver_one(sensor, seq, time, values)?;
        if reply == LinkReply::Acked {
            self.last = Some((sensor, seq, time, values.to_vec()));
            match shaped {
                Some(NetFault::Duplicate) => {
                    // The same frame arrives twice; the second copy
                    // must dedup.
                    let _ = self.deliver_one(sensor, seq, time, values)?;
                }
                Some(NetFault::AckLoss) => {
                    // Durably admitted, but the ack never comes back:
                    // the controller must assume loss and redeliver.
                    return Err(LinkDown("ack lost after durable admit".into()));
                }
                _ => {}
            }
        }
        Ok(reply)
    }

    fn flush(&mut self) -> Result<(), LinkDown> {
        if !self.pipelined {
            return Ok(());
        }
        if self.wedged {
            return Err(LinkDown("collector is wedged".into()));
        }
        let fault = self.flush_fault.take();
        if self.window.is_empty() {
            return Ok(());
        }
        let window = std::mem::take(&mut self.window);
        let Some(collector) = self.collector.as_mut() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        let passes = if fault == Some(NetFault::Duplicate) {
            2
        } else {
            1
        };
        for _ in 0..passes {
            // Coalesce consecutive same-sensor sequence runs into
            // batch deliveries — the shape a v2 credit window drains
            // in.
            let mut i = 0;
            while i < window.len() {
                let sensor = window[i].0;
                let first_seq = window[i].1;
                let mut j = i + 1;
                while j < window.len()
                    && window[j].0 == sensor
                    && window[j].1 == first_seq + (j - i) as u64
                {
                    j += 1;
                }
                let readings: Vec<(Timestamp, Vec<f64>)> =
                    window[i..j].iter().map(|r| (r.2, r.3.clone())).collect();
                let out = collector
                    .deliver_batch(sensor, first_seq, &readings)
                    .map_err(|e| LinkDown(e.to_string()))?;
                if let Some((seq, cause)) = out.nack {
                    return Err(LinkDown(format!(
                        "batch NACK at sensor {sensor} seq {seq}: {cause:?}"
                    )));
                }
                i = j;
            }
        }
        collector.sync_wal().map_err(|e| LinkDown(e.to_string()))?;
        self.delivered += window.len() as u64;
        if fault == Some(NetFault::AckLoss) {
            // Everything above is durable, but the cumulative AckUpTo
            // was lost in flight; the controller must treat the whole
            // window as unacked.
            return Err(LinkDown("cumulative ack lost after durable flush".into()));
        }
        Ok(())
    }

    fn heartbeat(&mut self) -> Option<(u64, u64)> {
        if self.wedged {
            return None;
        }
        self.collector
            .as_ref()
            .map(|c| (c.epoch(), c.checkpoint_cursor()))
    }

    fn migrate_cut(&mut self, start: u16, end: u16) -> Result<(u64, Vec<u8>), LinkDown> {
        // Drills and shaping windows apply to migration steps exactly
        // as to sends: a kill armed between two sends lands here, a
        // partition window swallows the offer before the cut runs —
        // request lost, never half-cut.
        self.fire_armed()?;
        if self.wedged {
            return Err(LinkDown("collector is wedged".into()));
        }
        let shaped = self.shaping();
        self.handled += 1;
        if shaped == Some(NetFault::Partition) {
            return Err(LinkDown("net partition: migrate offer lost".into()));
        }
        let Some(collector) = self.collector.as_mut() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        match collector.export_range(start..end) {
            Ok((inside, cursor)) => Ok((cursor, encode_collector(&inside).into_bytes())),
            Err(e) => Err(LinkDown(e.to_string())),
        }
    }

    fn migrate_adopt(
        &mut self,
        start: u16,
        end: u16,
        cursor: u64,
        snapshot: &[u8],
    ) -> Result<(), LinkDown> {
        self.fire_armed()?;
        if self.wedged {
            return Err(LinkDown("collector is wedged".into()));
        }
        let shaped = self.shaping();
        self.handled += 1;
        if shaped == Some(NetFault::Partition) {
            return Err(LinkDown("net partition: migrate accept lost".into()));
        }
        let Some(collector) = self.collector.as_mut() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        let text = String::from_utf8(snapshot.to_vec()).map_err(|e| LinkDown(e.to_string()))?;
        let snap = decode_collector(&text).map_err(|e| LinkDown(e.to_string()))?;
        collector
            .adopt_range(start..end, cursor, &snap)
            .map_err(|e| LinkDown(e.to_string()))
    }

    fn migrate_done(&mut self, start: u16, end: u16, _cursor: u64) -> Result<(), LinkDown> {
        if self.wedged {
            return Err(LinkDown("collector is wedged".into()));
        }
        let shaped = self.shaping();
        self.handled += 1;
        if shaped == Some(NetFault::Partition) {
            return Err(LinkDown("net partition: migrate done lost".into()));
        }
        let Some(collector) = self.collector.as_ref() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        collector.clear_outbox(start..end);
        Ok(())
    }
}

impl PartitionBackend for InProcessBackend {
    type Link = InProcessLink;

    fn start(&mut self, p: PartitionId, epoch: u64) -> Result<InProcessLink, BackendError> {
        if epoch > 1 {
            if self.standbys == 0 {
                return Err(BackendError(format!(
                    "no standby available to adopt partition {p}"
                )));
            }
            self.standbys -= 1;
        }
        // Migration-created partitions arrive with ids past the
        // initial layout; grow the per-partition caches to match.
        while self.prewarm_cache.len() <= p {
            self.prewarm_cache.push(None);
            self.recoveries.push(None);
        }
        let mut config = self.template.clone();
        config.wal.dir = self.partition_dir(p);
        config.wal.vfs = Arc::new(sentinet_gateway::RealVfs);
        config.epoch = epoch;
        config.fence = self.fence;
        config.cut = self.cut;
        let mut armed = None;
        let mut net = Vec::new();
        if epoch == 1 {
            for (i, f) in self.drill.faults.iter().enumerate() {
                if f.partition != p || self.fired[i] {
                    continue;
                }
                self.fired[i] = true;
                match f.fault {
                    CollectorFault::Poison => {
                        // ENOSPC on the (after_records + 1)th WAL
                        // append: the collector fail-stops and NACKs.
                        let plan = FaultPlan::new().with_fault(FaultSpec {
                            path: String::new(),
                            op: VfsOp::Append,
                            nth: f.after_records + 1,
                            kind: StorageFault::Enospc,
                            count: 1,
                        });
                        config.wal.vfs = Arc::new(FaultyVfs::new(plan));
                    }
                    CollectorFault::Kill | CollectorFault::Hang => {
                        armed = Some((f.after_records, f.fault));
                    }
                }
                break;
            }
            for d in self.drill.net.iter().filter(|d| d.partition == p) {
                net.push(ArmedNet {
                    after: d.after_records,
                    remaining: d.span.max(1),
                    fault: d.fault,
                });
            }
            for (i, (dp, plan)) in self.disk.iter().enumerate() {
                if *dp == p && !self.disk_fired[i] {
                    self.disk_fired[i] = true;
                    config.wal.vfs = Arc::new(FaultyVfs::new(plan.clone()));
                    break;
                }
            }
        }
        let prewarm = if epoch > 1 {
            self.prewarm_cache[p].clone()
        } else {
            None
        };
        let (collector, info) = Collector::open_prewarmed(config, prewarm.as_deref())
            .map_err(|e| BackendError(e.to_string()))?;
        self.recoveries[p] = Some(info);
        Ok(InProcessLink {
            collector: Some(collector),
            epoch,
            armed,
            net,
            delivered: 0,
            handled: 0,
            wedged: false,
            pipelined: self.pipelined,
            window: Vec::new(),
            last: None,
            flush_fault: None,
        })
    }

    fn fence(&mut self, p: PartitionId, link: InProcessLink) {
        if let Some(stash) = &self.zombies {
            if let Some(collector) = link.collector {
                // Park the live collector instead of crashing it: a
                // partitioned old owner that never heard it was
                // deposed, for the campaign's split-brain probe.
                // sentinet-allow(unwrap-used): a poisoned stash mutex
                // means a panicking drill thread; propagating the
                // panic is the only honest outcome.
                stash.lock().unwrap().push(Zombie {
                    partition: p,
                    epoch: link.epoch,
                    collector,
                });
                return;
            }
        }
        // Dropping an unfinished collector is exactly a crash: its
        // WAL keeps everything appended so far.
        drop(link);
    }

    fn finish(&mut self, _p: PartitionId, link: InProcessLink) -> Result<(), BackendError> {
        match link.collector {
            Some(collector) => collector
                .finish()
                .map(|_| ())
                .map_err(|e| BackendError(e.to_string())),
            None => Ok(()),
        }
    }

    fn merge_report(
        &mut self,
        p: PartitionId,
    ) -> Result<sentinet_gateway::GatewayReport, BackendError> {
        let dir = self.partition_dir(p);
        replay_report(&self.template, &dir).map(|(report, _)| report)
    }

    fn prewarm(&mut self, p: PartitionId, checkpoint_cursor: u64) {
        if checkpoint_cursor == 0 {
            return;
        }
        while self.prewarm_cache.len() <= p {
            self.prewarm_cache.push(None);
            self.recoveries.push(None);
        }
        let path = self.partition_dir(p).join(CHECKPOINT_FILE);
        if let Ok(bytes) = sentinet_gateway::RealVfs.read(&path) {
            self.prewarm_cache[p] = Some(bytes);
        }
    }
}
