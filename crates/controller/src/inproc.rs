//! In-process backend: each partition owner is a [`Collector`] in
//! this process, one WAL directory per partition under a common
//! root. This is the deterministic drill harness — no sockets, no
//! wall-clock timeouts — and the reference implementation of the
//! handoff contract: adoption is nothing but `Collector::open` on the
//! dead owner's WAL directory (checkpoint-v2 snapshot restore plus
//! WAL-tail replay through the identical admission path).

use crate::chaos::{CollectorFault, DrillPlan};
use crate::federation::{
    replay_report, BackendError, LinkDown, LinkReply, PartitionBackend, PartitionLink,
};
use crate::partition::PartitionId;
use sentinet_gateway::{
    Collector, DeliverOutcome, FaultPlan, FaultSpec, FaultyVfs, GatewayConfig, RecoveryInfo,
    StorageFault, VfsOp,
};
use sentinet_sim::{SensorId, Timestamp};
use std::path::PathBuf;
use std::sync::Arc;

/// Backend running every partition owner as an in-process
/// [`Collector`].
pub struct InProcessBackend {
    template: GatewayConfig,
    wal_root: PathBuf,
    standbys: usize,
    drill: DrillPlan,
    fired: Vec<bool>,
    recoveries: Vec<Option<RecoveryInfo>>,
}

impl InProcessBackend {
    /// A backend over `partitions` WAL directories
    /// (`wal_root/p{N}`), cloned from `template` (its `wal.dir` is
    /// ignored). `standbys` bounds how many adoptions (epoch > 1
    /// starts) can ever succeed; `drill` breaks epoch-1 owners at the
    /// planned coordinates.
    pub fn new(
        template: GatewayConfig,
        wal_root: impl Into<PathBuf>,
        partitions: usize,
        standbys: usize,
        drill: DrillPlan,
    ) -> Self {
        let fired = vec![false; drill.faults.len()];
        Self {
            template,
            wal_root: wal_root.into(),
            standbys,
            drill,
            fired,
            recoveries: (0..partitions).map(|_| None).collect(),
        }
    }

    /// The [`RecoveryInfo`] of the most recent `start` for `p` —
    /// drills assert an adoption actually restored from a checkpoint
    /// snapshot.
    pub fn recovery(&self, p: PartitionId) -> Option<&RecoveryInfo> {
        self.recoveries.get(p).and_then(Option::as_ref)
    }

    fn partition_dir(&self, p: PartitionId) -> PathBuf {
        self.wal_root.join(format!("p{p}"))
    }
}

/// Link to an in-process collector, with the drill's kill/hang
/// coordinate armed.
pub struct InProcessLink {
    collector: Option<Collector>,
    armed: Option<(u64, CollectorFault)>,
    delivered: u64,
}

impl PartitionLink for InProcessLink {
    fn send(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<LinkReply, LinkDown> {
        if let Some((at, fault)) = self.armed {
            if self.delivered >= at {
                self.armed = None;
                if fault == CollectorFault::Kill {
                    // Process death: in-memory state gone, WAL stays.
                    self.collector = None;
                }
                return Err(LinkDown(format!(
                    "drill {fault:?} after {at} admitted reading(s)"
                )));
            }
        }
        let Some(collector) = self.collector.as_mut() else {
            return Err(LinkDown("collector process is gone".into()));
        };
        match collector.deliver(sensor, seq, time, values.to_vec()) {
            Ok(DeliverOutcome::Accepted) | Ok(DeliverOutcome::Duplicate) => {
                self.delivered += 1;
                Ok(LinkReply::Acked)
            }
            Ok(DeliverOutcome::Rejected(_)) => Ok(LinkReply::Nacked),
            Err(e) => Err(LinkDown(e.to_string())),
        }
    }

    fn flush(&mut self) -> Result<(), LinkDown> {
        Ok(())
    }
}

impl PartitionBackend for InProcessBackend {
    type Link = InProcessLink;

    fn start(&mut self, p: PartitionId, epoch: u64) -> Result<InProcessLink, BackendError> {
        if epoch > 1 {
            if self.standbys == 0 {
                return Err(BackendError(format!(
                    "no standby available to adopt partition {p}"
                )));
            }
            self.standbys -= 1;
        }
        let mut config = self.template.clone();
        config.wal.dir = self.partition_dir(p);
        config.wal.vfs = Arc::new(sentinet_gateway::RealVfs);
        let mut armed = None;
        if epoch == 1 {
            for (i, f) in self.drill.faults.iter().enumerate() {
                if f.partition != p || self.fired[i] {
                    continue;
                }
                self.fired[i] = true;
                match f.fault {
                    CollectorFault::Poison => {
                        // ENOSPC on the (after_records + 1)th WAL
                        // append: the collector fail-stops and NACKs.
                        let plan = FaultPlan::new().with_fault(FaultSpec {
                            path: String::new(),
                            op: VfsOp::Append,
                            nth: f.after_records + 1,
                            kind: StorageFault::Enospc,
                            count: 1,
                        });
                        config.wal.vfs = Arc::new(FaultyVfs::new(plan));
                    }
                    CollectorFault::Kill | CollectorFault::Hang => {
                        armed = Some((f.after_records, f.fault));
                    }
                }
                break;
            }
        }
        let (collector, info) = Collector::open(config).map_err(|e| BackendError(e.to_string()))?;
        self.recoveries[p] = Some(info);
        Ok(InProcessLink {
            collector: Some(collector),
            armed,
            delivered: 0,
        })
    }

    fn fence(&mut self, _p: PartitionId, link: InProcessLink) {
        // Dropping an unfinished collector is exactly a crash: its
        // WAL keeps everything appended so far.
        drop(link);
    }

    fn finish(&mut self, _p: PartitionId, link: InProcessLink) -> Result<(), BackendError> {
        match link.collector {
            Some(collector) => collector
                .finish()
                .map(|_| ())
                .map_err(|e| BackendError(e.to_string())),
            None => Ok(()),
        }
    }

    fn merge_report(
        &mut self,
        p: PartitionId,
    ) -> Result<sentinet_gateway::GatewayReport, BackendError> {
        let dir = self.partition_dir(p);
        replay_report(&self.template, &dir).map(|(report, _)| report)
    }
}
