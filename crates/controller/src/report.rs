//! Fleet-wide reporting: per-partition status plus merged counters.
//!
//! The same stdout/stderr split the CLI enforces for a single
//! collector applies fleet-wide: [`FleetReport::render_diagnosis`] is
//! the byte-comparable stdout half (identical across an uninterrupted
//! run and a crash-plus-failover run over the same trace), while
//! [`FleetReport::render_accounting`] carries epochs, failover counts
//! and merged wire counters — facts about *this* run, not the data.

use crate::partition::{PartitionHealth, PartitionId, SensorRange};
use sentinet_gateway::{GatewayReport, ReportCounters};
use sentinet_sim::Timestamp;
use std::fmt;

/// One federation lifecycle event, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum FederationEvent {
    /// A partition's owner stopped acking.
    Suspect {
        /// The partition.
        partition: PartitionId,
        /// Stream time when the suspicion was raised.
        at: Timestamp,
        /// What went wrong (transport loss, NACK streak, …).
        reason: String,
    },
    /// The silence deadline elapsed; the owner is declared dead.
    Dead {
        /// The partition.
        partition: PartitionId,
        /// Stream time of the declaration.
        at: Timestamp,
        /// Stream time of the last acked reading (`None`: never acked).
        last_acked: Option<Timestamp>,
        /// The configured silence deadline, for the record.
        deadline: Timestamp,
    },
    /// A handoff attempt is starting.
    HandoffAttempt {
        /// The partition.
        partition: PartitionId,
        /// 1-based attempt number.
        attempt: u32,
        /// The epoch the standby would own.
        epoch: u64,
    },
    /// A standby adopted the partition's WAL and caught up.
    FailedOver {
        /// The partition.
        partition: PartitionId,
        /// Stream time when the handoff completed.
        at: Timestamp,
        /// The new owner epoch.
        epoch: u64,
        /// Readings redelivered through the admission path (the
        /// durable prefix deduplicates; the tail appends).
        redelivered: u64,
    },
    /// Every handoff attempt failed; the partition is orphaned.
    Orphaned {
        /// The partition.
        partition: PartitionId,
        /// Stream time of the declaration.
        at: Timestamp,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Unacked readings NACKed at declaration time (later
        /// readings for the partition NACK one by one).
        nacked: u64,
    },
    /// The graceful close of a healthy partition failed (its data is
    /// already durable; the event is bookkeeping, not loss).
    FinishFailed {
        /// The partition.
        partition: PartitionId,
        /// The backend's complaint.
        detail: String,
    },
    /// A live range migration began: the moved sub-range quiesces on
    /// the source while the handoff runs.
    MigrationStarted {
        /// The source partition.
        source: PartitionId,
        /// The destination partition.
        dest: PartitionId,
        /// The sensor range on the move.
        range: SensorRange,
        /// Stream time when the migration was triggered.
        at: Timestamp,
    },
    /// A live range migration committed: the destination durably owns
    /// the moved range and the map epoch advanced.
    MigrationCompleted {
        /// The source partition.
        source: PartitionId,
        /// The destination partition.
        dest: PartitionId,
        /// The sensor range that moved.
        range: SensorRange,
        /// Stream time of the commit.
        at: Timestamp,
        /// Source WAL cursor the cut was taken at.
        cursor: u64,
        /// The epoch the destination owns the range under.
        epoch: u64,
    },
    /// A live range migration rolled back before the cut committed:
    /// the source keeps the range, nothing moved.
    MigrationAborted {
        /// The source partition.
        source: PartitionId,
        /// The destination partition that was to adopt.
        dest: PartitionId,
        /// The sensor range that stayed put.
        range: SensorRange,
        /// Stream time of the rollback.
        at: Timestamp,
        /// Why the migration could not proceed.
        reason: String,
    },
}

impl fmt::Display for FederationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationEvent::Suspect { partition, at, reason } => {
                write!(f, "partition {partition} suspect at t={at}: {reason}")
            }
            FederationEvent::Dead { partition, at, last_acked, deadline } => match last_acked {
                Some(t) => write!(
                    f,
                    "partition {partition} dead at t={at} (last acked t={t}, silence deadline {deadline})"
                ),
                None => write!(
                    f,
                    "partition {partition} dead at t={at} (never acked, silence deadline {deadline})"
                ),
            },
            FederationEvent::HandoffAttempt { partition, attempt, epoch } => {
                write!(f, "partition {partition} handoff attempt {attempt} (epoch {epoch})")
            }
            FederationEvent::FailedOver { partition, at, epoch, redelivered } => write!(
                f,
                "partition {partition} failed over to epoch {epoch} at t={at} (redelivered {redelivered} reading(s))"
            ),
            FederationEvent::Orphaned { partition, at, attempts, nacked } => write!(
                f,
                "partition {partition} orphaned at t={at} after {attempts} attempt(s): {nacked} unacked reading(s) NACKed"
            ),
            FederationEvent::FinishFailed { partition, detail } => {
                write!(f, "partition {partition} finish failed: {detail}")
            }
            FederationEvent::MigrationStarted { source, dest, range, at } => write!(
                f,
                "migration of sensors {range} from partition {source} to {dest} started at t={at}"
            ),
            FederationEvent::MigrationCompleted { source, dest, range, at, cursor, epoch } => write!(
                f,
                "migration of sensors {range} from partition {source} to {dest} completed at t={at} (cut cursor {cursor}, epoch {epoch})"
            ),
            FederationEvent::MigrationAborted { source, dest, range, at, reason } => write!(
                f,
                "migration of sensors {range} from partition {source} to {dest} aborted at t={at}: {reason}"
            ),
        }
    }
}

/// Final status of one partition.
#[derive(Debug)]
pub struct PartitionStatus {
    /// The partition.
    pub partition: PartitionId,
    /// Its sensor range.
    pub range: SensorRange,
    /// Health at the end of the run.
    pub health: PartitionHealth,
    /// Owner epoch at the end of the run (1 = never failed over).
    pub epoch: u64,
    /// Completed failovers.
    pub failovers: u32,
    /// Readings NACKed because the partition was orphaned.
    pub orphan_nacks: u64,
    /// Readings re-sent through the admission path during handoffs.
    pub redelivered: u64,
    /// Routed readings known durable on the owner when the stream
    /// ended. The no-acked-loss invariant compares this against the
    /// merged report's admission count: every acked reading must
    /// survive into the replay.
    pub acked: u64,
    /// Total readings routed to the partition.
    pub routed: u64,
    /// Miss streaks that healed in place before reaching the
    /// suspicion threshold (hysteresis absorbed them — no failover).
    pub flaps: u32,
    /// The partition's merged report, rebuilt by replaying its WAL
    /// through the identical admission path.
    pub report: GatewayReport,
}

/// The fleet-wide merge of every partition's report.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-partition status, in partition order.
    pub partitions: Vec<PartitionStatus>,
    /// Every partition's counters summed (stable text-codec names —
    /// see `sentinet_gateway::report_codec`).
    pub counters: ReportCounters,
    /// The federation event log, in commit order.
    pub events: Vec<FederationEvent>,
}

impl FleetReport {
    /// Whether any partition ended degraded: orphaned, or with a
    /// storage layer that poisoned / shed / failed to checkpoint.
    pub fn degraded(&self) -> bool {
        self.partitions
            .iter()
            .any(|p| p.health == PartitionHealth::Orphaned || !p.report.storage.is_clean())
    }

    /// Whether the run warrants the scripting exit code 3: a sensor
    /// diagnosis was flagged, a network-wide attack was called, or
    /// the fleet itself is degraded.
    pub fn flagged(&self) -> bool {
        self.degraded()
            || self.partitions.iter().any(|p| {
                p.report.pipeline.flagged().count() > 0
                    || p.report.pipeline.network_attack.is_some()
            })
    }

    /// The byte-comparable diagnosis (stdout half): fleet summary
    /// line, one health line per partition, then each partition's
    /// pipeline report and recovery plan in the exact format the CLI
    /// prints for a single collector. Epochs and failover counts are
    /// deliberately absent — they describe the run, not the data, and
    /// would break byte-identity between a drilled and an
    /// uninterrupted run.
    pub fn render_diagnosis(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet: {} partition(s)\n", self.partitions.len()));
        for p in &self.partitions {
            out.push_str(&format!(
                "partition {} [sensors {}]: {}\n",
                p.partition, p.range, p.health
            ));
        }
        for p in &self.partitions {
            out.push_str(&format!(
                "\n=== partition {} [sensors {}] ===\n",
                p.partition, p.range
            ));
            out.push_str(&format!("{}", p.report.pipeline));
            out.push_str("\nrecovery plan:\n");
            for (id, action) in &p.report.plan.actions {
                out.push_str(&format!("  {id}: {action:?}\n"));
            }
        }
        out
    }

    /// The accounting half (stderr): merged counters plus the
    /// per-partition run facts the diagnosis deliberately omits.
    pub fn render_accounting(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet counters: {}\n", self.counters));
        for p in &self.partitions {
            out.push_str(&format!(
                "partition {}: epoch {}, {} failover(s), {} redelivered, {} orphan-nack(s)\n",
                p.partition, p.epoch, p.failovers, p.redelivered, p.orphan_nacks
            ));
        }
        out
    }
}
