//! Whole-process backend: each partition owner is a spawned
//! `sentinet serve` child, reached over the real socket transport
//! (stop-and-wait v1 or pipelined v2). Fencing is a real SIGKILL;
//! the drill coordinates SIGKILL the child mid-stream, which is what
//! the federation integration tests use to prove that kill + failover
//! reproduces the uninterrupted run byte for byte.

use crate::federation::{
    replay_report, BackendError, LinkDown, LinkReply, PartitionBackend, PartitionLink,
};
use crate::partition::PartitionId;
use sentinet_gateway::{
    probe_heartbeat, probe_migrate_adopt, probe_migrate_cut, probe_migrate_done, GatewayConfig,
    GatewayReport, PipelinedConfig, PipelinedUplink, SensorUplink, UplinkConfig, UplinkStats,
};
use sentinet_sim::{SensorId, Timestamp};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};

/// Which wire protocol the uplinks speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireProtocol {
    /// Stop-and-wait `Data`/`Ack`.
    V1,
    /// Pipelined `DataBatch`/`AckUpTo` under a credit window.
    V2,
}

/// Configuration for [`ProcessBackend`].
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// The `sentinet` binary to spawn (tests use
    /// `env!("CARGO_BIN_EXE_sentinet")`; the CLI uses
    /// `std::env::current_exe()`).
    pub binary: PathBuf,
    /// Root for per-partition WAL directories (`wal_root/p{N}`).
    pub wal_root: PathBuf,
    /// Adoptions (epoch > 1 starts) allowed before partitions orphan.
    pub standbys: usize,
    /// Wire protocol for every uplink.
    pub protocol: WireProtocol,
    /// Extra flags appended to `serve --wal-dir … --bind 127.0.0.1:0`
    /// — fsync policy, pipeline shape, … Must match `replay` on every
    /// report-shaping knob.
    pub serve_flags: Vec<String>,
    /// Uplink template; `connect` is overwritten per child.
    pub uplink: UplinkConfig,
    /// Readings per v2 batch.
    pub batch_size: usize,
    /// SIGKILL coordinates: `(partition, after)` kills the epoch-1
    /// owner of `partition` once `after` readings have been handed to
    /// its uplink. Each fires at most once; adopted owners are never
    /// re-killed.
    pub kills: Vec<(PartitionId, u64)>,
    /// Gateway config template for the final WAL replay merge.
    pub replay: GatewayConfig,
}

/// Backend spawning one `sentinet serve` child per partition owner.
pub struct ProcessBackend {
    config: ProcessConfig,
    standbys: usize,
    kills: Vec<(PartitionId, u64)>,
}

impl ProcessBackend {
    /// A backend over `config`.
    pub fn new(config: ProcessConfig) -> Self {
        let standbys = config.standbys;
        let kills = config.kills.clone();
        Self {
            config,
            standbys,
            kills,
        }
    }

    fn partition_dir(&self, p: PartitionId) -> PathBuf {
        self.config.wal_root.join(format!("p{p}"))
    }
}

enum ChildUplink {
    V1(SensorUplink),
    V2(PipelinedUplink),
}

/// Link to one `sentinet serve` child.
pub struct ProcessLink {
    child: Child,
    // Held open for the child's lifetime: dropping the pipe would
    // EPIPE the child's final report print.
    _stdout: BufReader<ChildStdout>,
    uplink: ChildUplink,
    addr: String,
    epoch: u64,
    ack_timeout: std::time::Duration,
    kill_after: Option<u64>,
    handed: u64,
}

impl PartitionLink for ProcessLink {
    fn send(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<LinkReply, LinkDown> {
        if self.kill_after == Some(self.handed) {
            self.kill_after = None;
            // The drill: SIGKILL the owner mid-stream. The send below
            // (or a later flush) exhausts its retries against the
            // dead endpoint and reports the link down.
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        self.handed += 1;
        match &mut self.uplink {
            ChildUplink::V1(uplink) => match uplink.send_at(sensor, seq, time, values) {
                Ok(()) => Ok(LinkReply::Acked),
                Err(e) => Err(LinkDown(e.to_string())),
            },
            ChildUplink::V2(uplink) => match uplink.send(sensor, time, values) {
                // A fresh v2 uplink numbers each sensor from 0 in
                // send order — identical to the controller's routed-
                // log numbering, so `seq` needs no plumbing here.
                Ok(_) => Ok(LinkReply::Pipelined),
                Err(e) => Err(LinkDown(e.to_string())),
            },
        }
    }

    fn flush(&mut self) -> Result<(), LinkDown> {
        match &mut self.uplink {
            ChildUplink::V1(_) => Ok(()),
            ChildUplink::V2(uplink) => uplink.flush().map_err(|e| LinkDown(e.to_string())),
        }
    }

    fn stats(&self) -> UplinkStats {
        match &self.uplink {
            ChildUplink::V1(uplink) => uplink.stats(),
            ChildUplink::V2(uplink) => uplink.stats(),
        }
    }

    fn heartbeat(&mut self) -> Option<(u64, u64)> {
        // A dedicated probe connection: the v2 uplink's data socket may
        // be mid-batch, and the v1 socket is request/response framed,
        // so the heartbeat never rides the data path.
        probe_heartbeat(&self.addr, self.epoch, self.ack_timeout)
    }

    fn migrate_cut(&mut self, start: u16, end: u16) -> Result<(u64, Vec<u8>), LinkDown> {
        // The SIGKILL drill fires on migration steps exactly as on
        // sends: a coordinate reached between two sends lands on the
        // cut — the kill-source-mid-handoff drill.
        if self.kill_after == Some(self.handed) {
            self.kill_after = None;
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        self.handed += 1;
        // Like the heartbeat, migration steps ride dedicated probe
        // connections: the data socket may be mid-batch, and a dead
        // child simply times the probe out.
        probe_migrate_cut(&self.addr, start, end, self.ack_timeout)
            .ok_or_else(|| LinkDown("migrate cut probe got no durable answer".into()))
    }

    fn migrate_adopt(
        &mut self,
        start: u16,
        end: u16,
        cursor: u64,
        snapshot: &[u8],
    ) -> Result<(), LinkDown> {
        // A kill coordinate of 0 on a freshly adopted destination
        // fires here — the kill-destination-mid-adopt drill.
        if self.kill_after == Some(self.handed) {
            self.kill_after = None;
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        self.handed += 1;
        probe_migrate_adopt(
            &self.addr,
            start,
            end,
            cursor,
            snapshot.to_vec(),
            self.ack_timeout,
        )
        .ok_or_else(|| LinkDown("migrate adopt probe got no durable answer".into()))
    }

    fn migrate_done(&mut self, start: u16, end: u16, cursor: u64) -> Result<(), LinkDown> {
        probe_migrate_done(&self.addr, start, end, cursor, self.ack_timeout)
            .ok_or_else(|| LinkDown("migrate done probe got no answer".into()))
    }
}

impl PartitionBackend for ProcessBackend {
    type Link = ProcessLink;

    fn start(&mut self, p: PartitionId, epoch: u64) -> Result<ProcessLink, BackendError> {
        if epoch > 1 {
            if self.standbys == 0 {
                return Err(BackendError(format!(
                    "no standby available to adopt partition {p}"
                )));
            }
            self.standbys -= 1;
        }
        let dir = self.partition_dir(p);
        let mut cmd = Command::new(&self.config.binary);
        cmd.arg("serve")
            .arg("--wal-dir")
            .arg(&dir)
            .args(["--bind", "127.0.0.1:0"])
            // The child fail-stops on a stale epoch and fences the
            // WAL for this owner generation.
            .args(["--epoch", &epoch.to_string()])
            .args(&self.config.serve_flags)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd
            .spawn()
            .map_err(|e| BackendError(format!("spawn {}: {e}", self.config.binary.display())))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| BackendError("child stdout not captured".into()))?;
        let mut stdout = BufReader::new(stdout);
        let mut line = String::new();
        stdout
            .read_line(&mut line)
            .map_err(|e| BackendError(format!("reading child banner: {e}")))?;
        let addr = match line.trim().strip_prefix("listening on ") {
            Some(addr) => addr.to_string(),
            None => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(BackendError(format!(
                    "child did not announce its address (got {line:?})"
                )));
            }
        };
        let mut transport = self.config.uplink.clone();
        transport.connect = addr.clone();
        // The uplink announces the owner epoch in its Hello, so a
        // zombie collector holding a superseded epoch NACKs instead of
        // accepting writes behind the new owner's back.
        transport.epoch = epoch;
        let ack_timeout = transport.ack_timeout;
        let uplink = match self.config.protocol {
            WireProtocol::V1 => ChildUplink::V1(SensorUplink::new(transport)),
            WireProtocol::V2 => {
                let mut pc = PipelinedConfig::new("");
                pc.transport = transport;
                pc.batch_size = self.config.batch_size.max(1);
                ChildUplink::V2(PipelinedUplink::new(pc))
            }
        };
        let kill_after = if epoch == 1 {
            self.kills
                .iter()
                .position(|&(kp, _)| kp == p)
                .map(|i| self.kills.swap_remove(i).1)
        } else {
            None
        };
        Ok(ProcessLink {
            child,
            _stdout: stdout,
            uplink,
            addr,
            epoch,
            ack_timeout,
            kill_after,
            handed: 0,
        })
    }

    fn fence(&mut self, _p: PartitionId, mut link: ProcessLink) {
        let _ = link.child.kill();
        let _ = link.child.wait();
    }

    fn finish(&mut self, _p: PartitionId, mut link: ProcessLink) -> Result<(), BackendError> {
        let closed = match link.uplink {
            ChildUplink::V1(uplink) => uplink.finish().map(|_| ()),
            ChildUplink::V2(uplink) => uplink.finish().map(|_| ()),
        };
        if let Err(e) = closed {
            let _ = link.child.kill();
            let _ = link.child.wait();
            return Err(BackendError(format!("close handshake failed: {e}")));
        }
        // The child prints its report (exit 3 when flagged) and
        // exits; either way the WAL is complete for the merge.
        link.child
            .wait()
            .map(|_| ())
            .map_err(|e| BackendError(format!("waiting for child: {e}")))
    }

    fn merge_report(&mut self, p: PartitionId) -> Result<GatewayReport, BackendError> {
        let dir = self.partition_dir(p);
        replay_report(&self.config.replay, &dir).map(|(report, _)| report)
    }
}
