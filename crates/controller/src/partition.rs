//! Sensor-range partition map: which collector owns which sensors.
//!
//! The map is deliberately dumb data — contiguous half-open sensor
//! ranges, each with an owner epoch and a health state. All mutation
//! goes through the two `commit_*` methods, and the
//! `partition-map-mutation` xtask lint pins their call sites to the
//! federation commit path (`crates/controller/src/federation.rs`), so
//! no backend or report code can flip ownership behind the
//! controller's back.

use sentinet_sim::SensorId;
use std::fmt;

/// Index of a partition inside a [`PartitionMap`].
pub type PartitionId = usize;

/// Lifecycle of a partition's owning collector, as seen by the
/// controller. The only transitions are the ones the federation
/// engine commits: `Ok → Suspect` (transport failure or storage NACK
/// streak), `Suspect → Dead` (silence deadline elapsed on the stream
/// clock), `Dead → HandingOff` (standby adoption starting),
/// `HandingOff → Ok` (handoff succeeded) or `HandingOff → Orphaned`
/// (every attempt exhausted; readings NACK from here on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionHealth {
    /// Owner is live and acking.
    Ok,
    /// Owner stopped acking; the silence clock is running.
    Suspect,
    /// Silence deadline elapsed; owner is declared dead.
    Dead,
    /// A standby is adopting the dead owner's WAL.
    HandingOff,
    /// No standby could adopt; readings are NACKed, never dropped.
    Orphaned,
}

impl fmt::Display for PartitionHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionHealth::Ok => "ok",
            PartitionHealth::Suspect => "suspect",
            PartitionHealth::Dead => "dead",
            PartitionHealth::HandingOff => "handing-off",
            PartitionHealth::Orphaned => "orphaned",
        })
    }
}

/// Contiguous half-open sensor range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorRange {
    /// First sensor id in the range.
    pub start: u16,
    /// One past the last sensor id in the range.
    pub end: u16,
}

impl SensorRange {
    /// Whether `sensor` falls inside this range.
    pub fn contains(&self, sensor: SensorId) -> bool {
        self.start <= sensor.0 && sensor.0 < self.end
    }

    /// Number of sensors in the range.
    pub fn len(&self) -> u16 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range holds no sensors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for SensorRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    range: SensorRange,
    epoch: u64,
    health: PartitionHealth,
}

/// The partition map: who owns which contiguous sensor range, at
/// which epoch, in which health state.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    slots: Vec<Slot>,
}

impl PartitionMap {
    /// Splits `num_sensors` sensors into `partitions` contiguous
    /// ranges as evenly as possible (earlier partitions absorb the
    /// remainder). Every partition starts at epoch 0 (no owner) in
    /// [`PartitionHealth::Ok`]; the federation engine commits epoch 1
    /// when it starts the initial owners.
    pub fn split_even(num_sensors: u16, partitions: usize) -> Self {
        assert!(
            partitions > 0,
            "a partition map needs at least one partition"
        );
        let n = partitions as u16;
        let per = num_sensors / n.max(1);
        let rem = num_sensors % n.max(1);
        let mut slots = Vec::with_capacity(partitions);
        let mut start = 0u16;
        for i in 0..n {
            let width = per + u16::from(i < rem);
            slots.push(Slot {
                range: SensorRange {
                    start,
                    end: start + width,
                },
                epoch: 0,
                health: PartitionHealth::Ok,
            });
            start += width;
        }
        Self { slots }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map holds no partitions (never true for a map from
    /// [`PartitionMap::split_even`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The partition owning `sensor`, or `None` when the sensor falls
    /// outside every range.
    pub fn partition_of(&self, sensor: SensorId) -> Option<PartitionId> {
        self.slots.iter().position(|s| s.range.contains(sensor))
    }

    /// The sensor range of partition `p`.
    pub fn range(&self, p: PartitionId) -> SensorRange {
        self.slots[p].range
    }

    /// The owner epoch of partition `p` (0 = never owned).
    pub fn epoch(&self, p: PartitionId) -> u64 {
        self.slots[p].epoch
    }

    /// The health of partition `p`.
    pub fn health(&self, p: PartitionId) -> PartitionHealth {
        self.slots[p].health
    }

    /// Commits a new owner epoch for partition `p`. Epochs only move
    /// forward; committing a stale epoch is a controller bug.
    ///
    /// Only the federation commit path may call this (enforced by the
    /// `partition-map-mutation` lint).
    pub fn commit_owner(&mut self, p: PartitionId, epoch: u64) {
        assert!(
            epoch > self.slots[p].epoch,
            "owner epoch must advance (partition {p}: {} -> {epoch})",
            self.slots[p].epoch
        );
        self.slots[p].epoch = epoch;
    }

    /// Commits a health transition for partition `p`.
    ///
    /// Only the federation commit path may call this (enforced by the
    /// `partition-map-mutation` lint).
    pub fn commit_health(&mut self, p: PartitionId, health: PartitionHealth) {
        self.slots[p].health = health;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_every_sensor_exactly_once() {
        let map = PartitionMap::split_even(10, 3);
        assert_eq!(map.len(), 3);
        assert_eq!(map.range(0), SensorRange { start: 0, end: 4 });
        assert_eq!(map.range(1), SensorRange { start: 4, end: 7 });
        assert_eq!(map.range(2), SensorRange { start: 7, end: 10 });
        for s in 0..10u16 {
            let owners: Vec<_> = (0..map.len())
                .filter(|&p| map.range(p).contains(SensorId(s)))
                .collect();
            assert_eq!(owners.len(), 1, "sensor {s} owned by {owners:?}");
        }
        assert_eq!(map.partition_of(SensorId(10)), None);
    }

    #[test]
    fn commit_owner_refuses_to_move_backwards() {
        let mut map = PartitionMap::split_even(4, 2);
        map.commit_owner(0, 1);
        map.commit_owner(0, 2);
        assert_eq!(map.epoch(0), 2);
        let r = std::panic::catch_unwind(move || map.commit_owner(0, 2));
        assert!(r.is_err(), "stale epoch commit must panic");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every sensor in `[0, num_sensors)` is owned by exactly
            /// one partition, and nothing beyond the range is owned —
            /// including the degenerate shapes: more partitions than
            /// sensors (zero-width ranges) and zero sensors.
            #[test]
            fn split_even_covers_and_is_disjoint(
                num_sensors in 0u16..200,
                partitions in 1usize..40,
            ) {
                let map = PartitionMap::split_even(num_sensors, partitions);
                prop_assert_eq!(map.len(), partitions);
                for s in 0..num_sensors {
                    let owners = (0..map.len())
                        .filter(|&p| map.range(p).contains(SensorId(s)))
                        .count();
                    prop_assert_eq!(owners, 1, "sensor {} owned {} times", s, owners);
                    prop_assert!(map.partition_of(SensorId(s)).is_some());
                }
                prop_assert_eq!(map.partition_of(SensorId(num_sensors)), None);
                prop_assert_eq!(map.partition_of(SensorId(u16::MAX)), None);
            }

            /// Ranges tile the sensor space contiguously in partition
            /// order, widths never differ by more than one, and with
            /// more partitions than sensors the surplus partitions are
            /// exactly the zero-width tail.
            #[test]
            fn split_even_ranges_are_contiguous_and_balanced(
                num_sensors in 0u16..200,
                partitions in 1usize..40,
            ) {
                let map = PartitionMap::split_even(num_sensors, partitions);
                let mut expected_start = 0u16;
                let mut widths = Vec::new();
                for p in 0..map.len() {
                    let r = map.range(p);
                    prop_assert_eq!(r.start, expected_start, "gap or overlap at partition {}", p);
                    prop_assert!(r.end >= r.start);
                    expected_start = r.end;
                    widths.push(r.len());
                }
                prop_assert_eq!(expected_start, num_sensors, "ranges must cover the full space");
                let min = widths.iter().copied().min().unwrap_or(0);
                let max = widths.iter().copied().max().unwrap_or(0);
                prop_assert!(max - min <= 1, "uneven split: widths {:?}", widths);
                // Zero-width ranges exist iff partitions outnumber
                // sensors, and they answer ownership queries sanely.
                let empties = widths.iter().filter(|w| **w == 0).count();
                let expected_empties =
                    partitions.saturating_sub(usize::from(num_sensors).min(partitions));
                prop_assert_eq!(empties, expected_empties);
                for p in 0..map.len() {
                    if map.range(p).is_empty() {
                        for s in 0..num_sensors {
                            prop_assert!(!map.range(p).contains(SensorId(s)));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn health_displays_in_kebab_case() {
        let all = [
            PartitionHealth::Ok,
            PartitionHealth::Suspect,
            PartitionHealth::Dead,
            PartitionHealth::HandingOff,
            PartitionHealth::Orphaned,
        ];
        let shown: Vec<String> = all.iter().map(|h| h.to_string()).collect();
        assert_eq!(shown, ["ok", "suspect", "dead", "handing-off", "orphaned"]);
    }
}
