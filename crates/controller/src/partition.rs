//! Sensor-range partition map: which collector owns which sensors.
//!
//! The map is deliberately dumb data — contiguous half-open sensor
//! ranges, each with an owner epoch and a health state. All mutation
//! goes through the two `commit_*` methods, and the
//! `partition-map-mutation` xtask lint pins their call sites to the
//! federation commit path (`crates/controller/src/federation.rs`), so
//! no backend or report code can flip ownership behind the
//! controller's back.

use sentinet_sim::SensorId;
use std::fmt;

/// Index of a partition inside a [`PartitionMap`].
pub type PartitionId = usize;

/// Lifecycle of a partition's owning collector, as seen by the
/// controller. The only transitions are the ones the federation
/// engine commits: `Ok → Suspect` (transport failure or storage NACK
/// streak), `Suspect → Dead` (silence deadline elapsed on the stream
/// clock), `Dead → HandingOff` (standby adoption starting),
/// `HandingOff → Ok` (handoff succeeded) or `HandingOff → Orphaned`
/// (every attempt exhausted; readings NACK from here on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionHealth {
    /// Owner is live and acking.
    Ok,
    /// Owner stopped acking; the silence clock is running.
    Suspect,
    /// Silence deadline elapsed; owner is declared dead.
    Dead,
    /// A standby is adopting the dead owner's WAL.
    HandingOff,
    /// No standby could adopt; readings are NACKed, never dropped.
    Orphaned,
}

impl fmt::Display for PartitionHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionHealth::Ok => "ok",
            PartitionHealth::Suspect => "suspect",
            PartitionHealth::Dead => "dead",
            PartitionHealth::HandingOff => "handing-off",
            PartitionHealth::Orphaned => "orphaned",
        })
    }
}

/// Contiguous half-open sensor range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorRange {
    /// First sensor id in the range.
    pub start: u16,
    /// One past the last sensor id in the range.
    pub end: u16,
}

impl SensorRange {
    /// Whether `sensor` falls inside this range.
    pub fn contains(&self, sensor: SensorId) -> bool {
        self.start <= sensor.0 && sensor.0 < self.end
    }

    /// Number of sensors in the range.
    pub fn len(&self) -> u16 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range holds no sensors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for SensorRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Error constructing or reshaping a [`PartitionMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionMapError {
    /// `split_even` was asked for zero partitions.
    NoPartitions,
    /// `split_even` was asked for more partitions than sensors — the
    /// surplus partitions could only be zero-width ranges, which
    /// silently own nothing and rot as permanently-idle slots.
    DegenerateSplit {
        /// Sensors available to split.
        num_sensors: u16,
        /// Partitions requested.
        partitions: usize,
    },
    /// `split_at` named a sensor that is not a strict interior point
    /// of the partition's range, so one half would be empty.
    SplitOutsideRange {
        /// The partition asked to split.
        partition: PartitionId,
        /// The offending split point.
        sensor: u16,
        /// The partition's current range.
        range: SensorRange,
    },
    /// `transfer` named two partitions whose ranges do not abut, so
    /// the union would not be contiguous.
    NotAdjacent {
        /// The donating partition and its range.
        from: (PartitionId, SensorRange),
        /// The receiving partition and its range.
        to: (PartitionId, SensorRange),
    },
}

impl fmt::Display for PartitionMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionMapError::NoPartitions => {
                write!(f, "a partition map needs at least one partition")
            }
            PartitionMapError::DegenerateSplit {
                num_sensors,
                partitions,
            } => write!(
                f,
                "cannot split {num_sensors} sensor(s) over {partitions} partitions: \
                 every partition must own at least one sensor"
            ),
            PartitionMapError::SplitOutsideRange {
                partition,
                sensor,
                range,
            } => write!(
                f,
                "cannot split partition {partition} [sensors {range}] at sensor \
                 {sensor}: the split point must fall strictly inside the range"
            ),
            PartitionMapError::NotAdjacent { from, to } => write!(
                f,
                "cannot transfer partition {} [sensors {}] into partition {} \
                 [sensors {}]: the ranges do not abut",
                from.0, from.1, to.0, to.1
            ),
        }
    }
}

impl std::error::Error for PartitionMapError {}

#[derive(Debug, Clone)]
struct Slot {
    range: SensorRange,
    epoch: u64,
    health: PartitionHealth,
}

/// The partition map: who owns which contiguous sensor range, at
/// which epoch, in which health state.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    slots: Vec<Slot>,
}

impl PartitionMap {
    /// Splits `num_sensors` sensors into `partitions` contiguous
    /// ranges as evenly as possible (earlier partitions absorb the
    /// remainder). Every partition starts at epoch 0 (no owner) in
    /// [`PartitionHealth::Ok`]; the federation engine commits epoch 1
    /// when it starts the initial owners.
    ///
    /// Degenerate shapes are typed errors, not silent zero-width
    /// ranges: zero partitions is [`PartitionMapError::NoPartitions`]
    /// and more partitions than sensors is
    /// [`PartitionMapError::DegenerateSplit`].
    pub fn split_even(num_sensors: u16, partitions: usize) -> Result<Self, PartitionMapError> {
        if partitions == 0 {
            return Err(PartitionMapError::NoPartitions);
        }
        if partitions > usize::from(num_sensors) {
            return Err(PartitionMapError::DegenerateSplit {
                num_sensors,
                partitions,
            });
        }
        let n = partitions as u16;
        let per = num_sensors / n;
        let rem = num_sensors % n;
        let mut slots = Vec::with_capacity(partitions);
        let mut start = 0u16;
        for i in 0..n {
            let width = per + u16::from(i < rem);
            slots.push(Slot {
                range: SensorRange {
                    start,
                    end: start + width,
                },
                epoch: 0,
                health: PartitionHealth::Ok,
            });
            start += width;
        }
        Ok(Self { slots })
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map holds no partitions (never true for a map from
    /// [`PartitionMap::split_even`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The partition owning `sensor`, or `None` when the sensor falls
    /// outside every range.
    pub fn partition_of(&self, sensor: SensorId) -> Option<PartitionId> {
        self.slots.iter().position(|s| s.range.contains(sensor))
    }

    /// The sensor range of partition `p`.
    pub fn range(&self, p: PartitionId) -> SensorRange {
        self.slots[p].range
    }

    /// The owner epoch of partition `p` (0 = never owned).
    pub fn epoch(&self, p: PartitionId) -> u64 {
        self.slots[p].epoch
    }

    /// The health of partition `p`.
    pub fn health(&self, p: PartitionId) -> PartitionHealth {
        self.slots[p].health
    }

    /// Commits a new owner epoch for partition `p`. Epochs only move
    /// forward; committing a stale epoch is a controller bug.
    ///
    /// Only the federation commit path may call this (enforced by the
    /// `partition-map-mutation` lint).
    pub fn commit_owner(&mut self, p: PartitionId, epoch: u64) {
        assert!(
            epoch > self.slots[p].epoch,
            "owner epoch must advance (partition {p}: {} -> {epoch})",
            self.slots[p].epoch
        );
        self.slots[p].epoch = epoch;
    }

    /// Commits a health transition for partition `p`.
    ///
    /// Only the federation commit path may call this (enforced by the
    /// `partition-map-mutation` lint).
    pub fn commit_health(&mut self, p: PartitionId, health: PartitionHealth) {
        self.slots[p].health = health;
    }

    /// Splits partition `p`'s range at `sensor`: `p` keeps
    /// `[start, sensor)` and a new partition appended at the end of
    /// the map adopts `[sensor, end)` at epoch 0 (no owner) in
    /// [`PartitionHealth::Ok`]. Appending keeps every existing
    /// [`PartitionId`] stable, so per-partition controller state never
    /// re-keys mid-stream. Returns the new partition's id.
    ///
    /// The split point must fall strictly inside `p`'s range — both
    /// halves own at least one sensor — so the cover-every-sensor-
    /// exactly-once invariant is preserved by construction.
    ///
    /// Only the federation commit path may call this (enforced by the
    /// `partition-map-mutation` lint): the caller must fence the old
    /// ownership generation through [`PartitionMap::commit_owner`]
    /// before routing to the new shape.
    pub fn split_at(
        &mut self,
        p: PartitionId,
        sensor: SensorId,
    ) -> Result<PartitionId, PartitionMapError> {
        let range = self.slots[p].range;
        if sensor.0 <= range.start || sensor.0 >= range.end {
            return Err(PartitionMapError::SplitOutsideRange {
                partition: p,
                sensor: sensor.0,
                range,
            });
        }
        self.slots[p].range.end = sensor.0;
        self.slots.push(Slot {
            range: SensorRange {
                start: sensor.0,
                end: range.end,
            },
            epoch: 0,
            health: PartitionHealth::Ok,
        });
        Ok(self.slots.len() - 1)
    }

    /// Transfers partition `from`'s entire range into the adjacent
    /// partition `to`: `to`'s range grows to the contiguous union and
    /// `from` is left owning the zero-width range at the old boundary.
    /// This is the inverse of [`PartitionMap::split_at`] — the
    /// migration abort path uses it to return a split-off range to its
    /// source so the map never leaks ownership.
    ///
    /// The two ranges must abut (`to.end == from.start` or
    /// `from.end == to.start`); anything else would tear the
    /// contiguous cover. Only the federation commit path may call this
    /// (enforced by the `partition-map-mutation` lint).
    pub fn transfer(
        &mut self,
        from: PartitionId,
        to: PartitionId,
    ) -> Result<(), PartitionMapError> {
        let fr = self.slots[from].range;
        let tr = self.slots[to].range;
        if from == to || (tr.end != fr.start && fr.end != tr.start) || fr.is_empty() {
            return Err(PartitionMapError::NotAdjacent {
                from: (from, fr),
                to: (to, tr),
            });
        }
        if tr.end == fr.start {
            self.slots[to].range.end = fr.end;
            self.slots[from].range = SensorRange {
                start: fr.end,
                end: fr.end,
            };
        } else {
            self.slots[to].range.start = fr.start;
            self.slots[from].range = SensorRange {
                start: fr.start,
                end: fr.start,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every sensor in `[0, num_sensors)` owned exactly once, nothing
    /// else owned, ranges contiguous in partition order.
    fn assert_covers_exactly_once(map: &PartitionMap, num_sensors: u16) {
        for s in 0..num_sensors {
            let owners: Vec<_> = (0..map.len())
                .filter(|&p| map.range(p).contains(SensorId(s)))
                .collect();
            assert_eq!(owners.len(), 1, "sensor {s} owned by {owners:?}");
        }
        assert_eq!(map.partition_of(SensorId(num_sensors)), None);
        assert_eq!(map.partition_of(SensorId(u16::MAX)), None);
    }

    #[test]
    fn split_even_covers_every_sensor_exactly_once() {
        let map = PartitionMap::split_even(10, 3).expect("non-degenerate");
        assert_eq!(map.len(), 3);
        assert_eq!(map.range(0), SensorRange { start: 0, end: 4 });
        assert_eq!(map.range(1), SensorRange { start: 4, end: 7 });
        assert_eq!(map.range(2), SensorRange { start: 7, end: 10 });
        assert_covers_exactly_once(&map, 10);
    }

    #[test]
    fn degenerate_splits_are_typed_errors() {
        assert_eq!(
            PartitionMap::split_even(4, 0).unwrap_err(),
            PartitionMapError::NoPartitions
        );
        assert_eq!(
            PartitionMap::split_even(3, 5).unwrap_err(),
            PartitionMapError::DegenerateSplit {
                num_sensors: 3,
                partitions: 5
            }
        );
        assert_eq!(
            PartitionMap::split_even(0, 1).unwrap_err(),
            PartitionMapError::DegenerateSplit {
                num_sensors: 0,
                partitions: 1
            }
        );
    }

    #[test]
    fn commit_owner_refuses_to_move_backwards() {
        let mut map = PartitionMap::split_even(4, 2).expect("non-degenerate");
        map.commit_owner(0, 1);
        map.commit_owner(0, 2);
        assert_eq!(map.epoch(0), 2);
        let r = std::panic::catch_unwind(move || map.commit_owner(0, 2));
        assert!(r.is_err(), "stale epoch commit must panic");
    }

    #[test]
    fn split_at_appends_the_new_partition_and_keeps_ids_stable() {
        let mut map = PartitionMap::split_even(10, 2).expect("non-degenerate");
        map.commit_owner(0, 1);
        map.commit_owner(1, 1);
        let new = map.split_at(0, SensorId(2)).expect("interior point");
        assert_eq!(new, 2, "the split-off partition is appended");
        assert_eq!(map.range(0), SensorRange { start: 0, end: 2 });
        assert_eq!(map.range(1), SensorRange { start: 5, end: 10 });
        assert_eq!(map.range(2), SensorRange { start: 2, end: 5 });
        assert_eq!(map.epoch(2), 0, "the new partition has no owner yet");
        assert_eq!(map.health(2), PartitionHealth::Ok);
        assert_covers_exactly_once(&map, 10);
    }

    #[test]
    fn split_at_rejects_boundary_and_exterior_points() {
        let mut map = PartitionMap::split_even(10, 2).expect("non-degenerate");
        for s in [0u16, 5, 7, 10] {
            assert_eq!(
                map.split_at(0, SensorId(s)).unwrap_err(),
                PartitionMapError::SplitOutsideRange {
                    partition: 0,
                    sensor: s,
                    range: SensorRange { start: 0, end: 5 },
                },
                "split at {s} must be rejected"
            );
        }
        assert_eq!(map.len(), 2, "a rejected split must not reshape the map");
    }

    #[test]
    fn transfer_returns_a_split_off_range_to_its_source() {
        let mut map = PartitionMap::split_even(10, 2).expect("non-degenerate");
        let new = map.split_at(0, SensorId(2)).expect("interior point");
        map.transfer(new, 0).expect("adjacent ranges");
        assert_eq!(map.range(0), SensorRange { start: 0, end: 5 });
        assert!(map.range(new).is_empty(), "the donor is left empty");
        assert_covers_exactly_once(&map, 10);
    }

    #[test]
    fn transfer_rejects_non_adjacent_and_empty_donors() {
        let mut map = PartitionMap::split_even(12, 3).expect("non-degenerate");
        assert!(matches!(
            map.transfer(0, 2).unwrap_err(),
            PartitionMapError::NotAdjacent { .. }
        ));
        assert!(matches!(
            map.transfer(0, 0).unwrap_err(),
            PartitionMapError::NotAdjacent { .. }
        ));
        map.transfer(0, 1).expect("adjacent");
        assert!(
            matches!(
                map.transfer(0, 1).unwrap_err(),
                PartitionMapError::NotAdjacent { .. }
            ),
            "an empty donor has nothing to transfer"
        );
        assert_covers_exactly_once(&map, 12);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every sensor in `[0, num_sensors)` is owned by exactly
            /// one partition, and nothing beyond the range is owned;
            /// asking for more partitions than sensors (or zero of
            /// either) is a typed error, never a map with zero-width
            /// ranges.
            #[test]
            fn split_even_covers_and_is_disjoint(
                num_sensors in 0u16..200,
                partitions in 0usize..40,
            ) {
                match PartitionMap::split_even(num_sensors, partitions) {
                    Ok(map) => {
                        prop_assert!(partitions >= 1 && partitions <= usize::from(num_sensors));
                        prop_assert_eq!(map.len(), partitions);
                        for s in 0..num_sensors {
                            let owners = (0..map.len())
                                .filter(|&p| map.range(p).contains(SensorId(s)))
                                .count();
                            prop_assert_eq!(owners, 1, "sensor {} owned {} times", s, owners);
                            prop_assert!(map.partition_of(SensorId(s)).is_some());
                        }
                        prop_assert_eq!(map.partition_of(SensorId(num_sensors)), None);
                        prop_assert_eq!(map.partition_of(SensorId(u16::MAX)), None);
                        for p in 0..map.len() {
                            prop_assert!(!map.range(p).is_empty(), "no silent empty ranges");
                        }
                    }
                    Err(PartitionMapError::NoPartitions) => prop_assert_eq!(partitions, 0),
                    Err(PartitionMapError::DegenerateSplit { num_sensors: n, partitions: p }) => {
                        prop_assert_eq!((n, p), (num_sensors, partitions));
                        prop_assert!(p > usize::from(n));
                    }
                    Err(other) => prop_assert!(false, "unexpected error {:?}", other),
                }
            }

            /// Ranges tile the sensor space contiguously in partition
            /// order and widths never differ by more than one.
            #[test]
            fn split_even_ranges_are_contiguous_and_balanced(
                num_sensors in 1u16..200,
                partitions in 1usize..40,
            ) {
                let partitions = partitions.min(usize::from(num_sensors));
                let map = PartitionMap::split_even(num_sensors, partitions)
                    .expect("clamped to a non-degenerate shape");
                let mut expected_start = 0u16;
                let mut widths = Vec::new();
                for p in 0..map.len() {
                    let r = map.range(p);
                    prop_assert_eq!(r.start, expected_start, "gap or overlap at partition {}", p);
                    prop_assert!(r.end > r.start);
                    expected_start = r.end;
                    widths.push(r.len());
                }
                prop_assert_eq!(expected_start, num_sensors, "ranges must cover the full space");
                let min = widths.iter().copied().min().unwrap_or(0);
                let max = widths.iter().copied().max().unwrap_or(0);
                prop_assert!(max - min <= 1, "uneven split: widths {:?}", widths);
            }

            /// Any interleaving of valid `split_at` and undo
            /// `transfer` operations preserves cover-every-sensor-
            /// exactly-once, and invalid operations leave the map
            /// untouched.
            #[test]
            fn split_and_transfer_preserve_the_cover(
                num_sensors in 2u16..64,
                partitions in 1usize..6,
                ops in proptest::collection::vec((0usize..8, 0u16..64, 0u8..2), 0..12),
            ) {
                let partitions = partitions.min(usize::from(num_sensors));
                let mut map = PartitionMap::split_even(num_sensors, partitions)
                    .expect("clamped to a non-degenerate shape");
                for (p, s, undo) in ops {
                    let p = p % map.len();
                    if let Ok(new) = map.split_at(p, SensorId(s)) {
                        prop_assert_eq!(new, map.len() - 1, "split appends");
                        if undo == 1 {
                            map.transfer(new, p).expect("a fresh split is adjacent to its source");
                            prop_assert!(map.range(new).is_empty());
                        }
                    }
                    // Valid or rejected, the cover must hold.
                    for sensor in 0..num_sensors {
                        let owners = (0..map.len())
                            .filter(|&q| map.range(q).contains(SensorId(sensor)))
                            .count();
                        prop_assert_eq!(owners, 1, "sensor {} owned {} times", sensor, owners);
                    }
                    prop_assert_eq!(map.partition_of(SensorId(num_sensors)), None);
                }
            }
        }
    }

    #[test]
    fn health_displays_in_kebab_case() {
        let all = [
            PartitionHealth::Ok,
            PartitionHealth::Suspect,
            PartitionHealth::Dead,
            PartitionHealth::HandingOff,
            PartitionHealth::Orphaned,
        ];
        let shown: Vec<String> = all.iter().map(|h| h.to_string()).collect();
        assert_eq!(shown, ["ok", "suspect", "dead", "handing-off", "orphaned"]);
    }
}
