//! Live-migration drills: online sensor-range splits and rebalances
//! against real in-process [`Collector`]s, with kills injected at the
//! cut and adopt protocol steps, proving the handoff contract:
//!
//! - a migration moves a contiguous range between live owners without
//!   stopping ingest and without losing or double-counting one acked
//!   reading;
//! - a kill at any protocol step either rolls the migration back
//!   (source keeps the range) or rolls it forward (destination owns
//!   it), and the merged fleet diagnosis stays byte-identical to an
//!   uninterrupted run of the same migration schedule;
//! - an unmovable migration aborts loudly — counted and evented,
//!   never half-applied.

use sentinet_controller::{
    CollectorFault, DrillFault, DrillPlan, Federation, FederationConfig, FederationError,
    FederationEvent, InProcessBackend, PartitionHealth, PartitionMap, SensorRange,
};
use sentinet_gateway::GatewayConfig;
use sentinet_sim::SensorId;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmproot(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-migration-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic fleet stream: four sensors, 90 sampling ticks.
fn stream() -> Vec<(SensorId, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..90u64 {
        let t = 300 * (i + 1);
        for s in 0..4u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), t, vec![v, v + 30.0]));
        }
    }
    out
}

fn template() -> GatewayConfig {
    let mut config = GatewayConfig::new("overwritten-per-partition");
    config.checkpoint_every = 8;
    config
}

/// Runs the stream through a two-partition fleet with `schedule`
/// applied before the first reading routes.
fn run_fleet(
    root: &std::path::Path,
    standbys: usize,
    drill: DrillPlan,
    schedule: impl FnOnce(&mut Federation<InProcessBackend>),
) -> sentinet_controller::FleetReport {
    let map = PartitionMap::split_even(4, 2).expect("non-degenerate");
    let backend = InProcessBackend::new(template(), root, 2, standbys, drill);
    let mut fed = Federation::new(map, FederationConfig::default(), backend).expect("bootstrap");
    schedule(&mut fed);
    for (sensor, time, values) in stream() {
        fed.route(sensor, time, &values).expect("route");
    }
    fed.finish().expect("finish")
}

/// Total readings per original partition (two sensors, 90 ticks).
const PER_PARTITION: u64 = 180;

#[test]
fn live_split_moves_the_range_without_losing_an_acked_reading() {
    let root = tmproot("split");
    let fleet = run_fleet(&root, 1, DrillPlan::new(), |fed| {
        fed.schedule_split(0, SensorId(1), 30).expect("valid split");
    });

    assert_eq!(fleet.partitions.len(), 3, "the split grew the fleet");
    assert_eq!(
        fleet.partitions[0].range,
        SensorRange { start: 0, end: 1 },
        "the source keeps the left half"
    );
    assert_eq!(
        fleet.partitions[2].range,
        SensorRange { start: 1, end: 2 },
        "the new partition owns the moved half"
    );
    assert_eq!(fleet.partitions[2].health, PartitionHealth::Ok);
    assert_eq!(fleet.partitions[2].epoch, 1);
    assert!(fleet
        .events
        .iter()
        .any(|e| matches!(e, FederationEvent::MigrationStarted { .. })));
    assert!(fleet
        .events
        .iter()
        .any(|e| matches!(e, FederationEvent::MigrationCompleted { .. })));
    assert_eq!(fleet.counters.migrations_started, 1);
    assert_eq!(fleet.counters.migrations_completed, 1);
    assert_eq!(fleet.counters.migrations_aborted, 0);
    // Conservation: across the cut, every reading of the original
    // partition is admitted exactly once — pre-cut on the source's
    // kept ledger, post-cut on whichever side owns its sensor.
    let moved = (fleet.partitions[0].report.ingest.accepted
        + fleet.partitions[2].report.ingest.accepted) as u64;
    assert_eq!(moved, PER_PARTITION, "no acked reading lost or doubled");
    assert!(
        fleet.partitions[2].report.ingest.accepted > 0,
        "ingest continued on the new owner after the handoff"
    );
    assert_eq!(
        fleet.partitions[1].report.ingest.accepted as u64, PER_PARTITION,
        "the bystander partition is untouched"
    );
    assert!(!fleet.degraded());
}

#[test]
fn kill_source_at_the_cut_matches_the_uninterrupted_migration_run() {
    let base = run_fleet(&tmproot("split-base"), 1, DrillPlan::new(), |fed| {
        fed.schedule_split(0, SensorId(1), 30).expect("valid split");
    });
    // The kill coordinate equals the migration trigger: the fault is
    // armed when the cut runs, so it lands on the cut itself — the
    // kill-source-mid-handoff drill.
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 30,
        fault: CollectorFault::Kill,
    });
    let fleet = run_fleet(&tmproot("split-kill"), 1, drill, |fed| {
        fed.schedule_split(0, SensorId(1), 30).expect("valid split");
    });

    assert_eq!(
        fleet.render_diagnosis(),
        base.render_diagnosis(),
        "kill at the cut + failover must reproduce the uninterrupted \
         migration diagnosis byte for byte"
    );
    assert_eq!(
        fleet.partitions[0].epoch, 2,
        "the source failed over mid-handoff"
    );
    assert_eq!(fleet.partitions[2].epoch, 1);
    assert_eq!(fleet.counters.migrations_completed, 1);
    assert_eq!(fleet.counters.migrations_aborted, 0);
    // The retried cut lands at the identical WAL coordinate.
    let cursor_of = |f: &sentinet_controller::FleetReport| {
        f.events.iter().find_map(|e| match e {
            FederationEvent::MigrationCompleted { cursor, .. } => Some(*cursor),
            _ => None,
        })
    };
    assert_eq!(cursor_of(&fleet), cursor_of(&base));
    assert!(!fleet.degraded());
}

#[test]
fn rebalance_merges_the_range_into_the_adjacent_partition() {
    let root = tmproot("rebalance");
    let fleet = run_fleet(&root, 1, DrillPlan::new(), |fed| {
        fed.schedule_rebalance(1, 30);
    });

    assert_eq!(fleet.partitions.len(), 2);
    assert_eq!(
        fleet.partitions[0].range,
        SensorRange { start: 0, end: 4 },
        "the destination absorbed the moved range"
    );
    assert!(
        fleet.partitions[1].range.is_empty(),
        "the source ends the run owning nothing (got {})",
        fleet.partitions[1].range
    );
    assert_eq!(fleet.counters.migrations_completed, 1);
    let total = (fleet.partitions[0].report.ingest.accepted
        + fleet.partitions[1].report.ingest.accepted) as u64;
    assert_eq!(total, 2 * PER_PARTITION, "no acked reading lost or doubled");
    assert!(!fleet.degraded());
}

#[test]
fn kill_destination_at_the_adopt_matches_the_uninterrupted_run() {
    let base = run_fleet(&tmproot("rebalance-base"), 1, DrillPlan::new(), |fed| {
        fed.schedule_rebalance(1, 30);
    });
    // Partition 0 is the rebalance destination; its kill coordinate
    // equals its delivered count at trigger time, so the fault lands
    // on the adopt call — the kill-destination-mid-adopt drill.
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 30,
        fault: CollectorFault::Kill,
    });
    let fleet = run_fleet(&tmproot("rebalance-kill"), 1, drill, |fed| {
        fed.schedule_rebalance(1, 30);
    });

    assert_eq!(
        fleet.render_diagnosis(),
        base.render_diagnosis(),
        "kill at the adopt + failover must reproduce the uninterrupted \
         migration diagnosis byte for byte"
    );
    assert_eq!(
        fleet.partitions[0].epoch, 2,
        "the destination failed over mid-adopt"
    );
    assert_eq!(fleet.counters.migrations_completed, 1);
    assert!(!fleet.degraded());
}

#[test]
fn unsettleable_source_aborts_the_migration_and_keeps_the_map() {
    // Kill the source well before the trigger with no standby: by the
    // time the migration fires, the source cannot drain — the split
    // must abort, visibly, leaving the map exactly as it was.
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 20,
        fault: CollectorFault::Kill,
    });
    let fleet = run_fleet(&tmproot("abort"), 0, drill, |fed| {
        fed.schedule_split(0, SensorId(1), 30).expect("valid split");
    });

    assert_eq!(fleet.partitions.len(), 2, "the aborted split grew nothing");
    assert_eq!(fleet.partitions[0].range, SensorRange { start: 0, end: 2 });
    assert_eq!(fleet.counters.migrations_started, 1);
    assert_eq!(fleet.counters.migrations_completed, 0);
    assert_eq!(fleet.counters.migrations_aborted, 1);
    assert!(fleet
        .events
        .iter()
        .any(|e| matches!(e, FederationEvent::MigrationAborted { .. })));
    assert_eq!(fleet.partitions[0].health, PartitionHealth::Orphaned);
    // Fail-stop accounting still holds around the abort.
    assert_eq!(fleet.partitions[0].report.ingest.accepted, 20);
    assert!(fleet.degraded());
}

#[test]
fn degenerate_split_schedules_are_rejected_up_front() {
    let map = PartitionMap::split_even(4, 2).expect("non-degenerate");
    let backend = InProcessBackend::new(template(), tmproot("validate"), 2, 0, DrillPlan::new());
    let mut fed = Federation::new(map, FederationConfig::default(), backend).expect("bootstrap");
    for (p, at) in [
        (5, SensorId(1)),
        (0, SensorId(0)),
        (0, SensorId(2)),
        (0, SensorId(9)),
    ] {
        let err = fed.schedule_split(p, at, 0).expect_err("degenerate");
        assert!(
            matches!(err, FederationError::Migration { .. }),
            "schedule_split({p}, {at}) must fail typed (got {err})"
        );
    }
}
