//! In-process federation drills: deterministic kill / hang / poison
//! faults against real [`Collector`]s, one WAL directory per
//! partition, proving the handoff contract end to end:
//!
//! - failover rebuilds the dead owner's state from its checkpoint
//!   snapshot plus WAL-tail replay, and the merged fleet diagnosis is
//!   byte-identical to an uninterrupted baseline run;
//! - with no standby, the partition orphans fail-stop: every acked
//!   reading survives exactly once and every unacked reading is
//!   counted as a NACK, never silently dropped;
//! - seeded drill plans replay to identical event logs.

use sentinet_controller::{
    CollectorFault, DrillFault, DrillPlan, Federation, FederationConfig, FederationEvent,
    InProcessBackend, NetDrill, NetFault, PartitionHealth, PartitionMap,
};
use sentinet_gateway::GatewayConfig;
use sentinet_sim::SensorId;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmproot(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-fed-drill-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic fleet stream: four sensors, 90 sampling ticks.
fn stream() -> Vec<(SensorId, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..90u64 {
        let t = 300 * (i + 1);
        for s in 0..4u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Gateway template shared by every drill: checkpoints every 8
/// records so adoptions genuinely restore from a snapshot.
fn template() -> GatewayConfig {
    let mut config = GatewayConfig::new("overwritten-per-partition");
    config.checkpoint_every = 8;
    config
}

/// Runs the whole stream through a two-partition fleet and returns
/// the finished report plus the adoption recovery info for p0.
fn run_fleet(
    root: &std::path::Path,
    standbys: usize,
    drill: DrillPlan,
) -> (
    sentinet_controller::FleetReport,
    Option<sentinet_gateway::RecoveryInfo>,
) {
    run_fleet_with(root, standbys, drill, template())
}

fn run_fleet_with(
    root: &std::path::Path,
    standbys: usize,
    drill: DrillPlan,
    template: GatewayConfig,
) -> (
    sentinet_controller::FleetReport,
    Option<sentinet_gateway::RecoveryInfo>,
) {
    let map = PartitionMap::split_even(4, 2).expect("non-degenerate");
    let backend = InProcessBackend::new(template, root, 2, standbys, drill);
    let mut fed = Federation::new(map, FederationConfig::default(), backend).expect("bootstrap");
    for (sensor, time, values) in stream() {
        fed.route(sensor, time, &values).expect("route");
    }
    let recovery = fed.backend().recovery(0).cloned();
    let report = fed.finish().expect("finish");
    (report, recovery)
}

fn baseline() -> sentinet_controller::FleetReport {
    let root = tmproot("baseline");
    run_fleet(&root, 0, DrillPlan::new()).0
}

#[test]
fn kill_failover_diagnosis_is_byte_identical_to_baseline() {
    let base = baseline();
    let root = tmproot("kill");
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 20,
        fault: CollectorFault::Kill,
    });
    let (fleet, recovery) = run_fleet(&root, 1, drill);

    assert_eq!(
        fleet.render_diagnosis(),
        base.render_diagnosis(),
        "kill + failover must reproduce the uninterrupted diagnosis byte for byte"
    );
    let kinds: Vec<&str> = fleet
        .events
        .iter()
        .map(|e| match e {
            FederationEvent::Suspect { .. } => "suspect",
            FederationEvent::Dead { .. } => "dead",
            FederationEvent::HandoffAttempt { .. } => "attempt",
            FederationEvent::FailedOver { .. } => "failed-over",
            other => panic!("unexpected event {other}"),
        })
        .collect();
    assert_eq!(kinds, ["suspect", "dead", "attempt", "failed-over"]);
    let p0 = &fleet.partitions[0];
    assert_eq!(p0.health, PartitionHealth::Ok);
    assert_eq!(p0.epoch, 2, "the standby owns epoch 2");
    assert_eq!(p0.failovers, 1);
    assert_eq!(p0.orphan_nacks, 0);
    assert!(p0.redelivered > 0, "the routed log was redelivered");
    // With the full log still present, adoption replays it and
    // verifies the dead owner's checkpoint snapshot bit-exactly
    // (checkpoint_every = 8, 20 admitted records → a checkpoint
    // existed). The reclaimed-prefix restore path gets its own drill
    // below.
    let info = recovery.expect("p0 was adopted");
    assert!(
        info.replayed > 0,
        "adoption must replay the WAL tail (got {info:?})"
    );
    assert!(
        info.verified_cursor.is_some(),
        "adoption must verify the checkpoint snapshot (got {info:?})"
    );
    assert!(!fleet.degraded(), "a successful failover is not degraded");
}

#[test]
fn dead_is_declared_within_the_silence_deadline() {
    let root = tmproot("deadline");
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 20,
        fault: CollectorFault::Kill,
    });
    let (fleet, _) = run_fleet(&root, 1, drill);
    let (suspect_at, dead_at, last, deadline) =
        fleet
            .events
            .iter()
            .fold((None, None, None, 0), |acc, e| match *e {
                FederationEvent::Suspect { at, .. } => (Some(at), acc.1, acc.2, acc.3),
                FederationEvent::Dead {
                    at,
                    last_acked,
                    deadline,
                    ..
                } => (acc.0, Some(at), last_acked, deadline),
                _ => acc,
            });
    let suspect_at = suspect_at.expect("suspect event");
    let dead_at = dead_at.expect("dead event");
    let last = last.expect("the drilled owner acked before dying");
    assert!(
        dead_at.saturating_sub(last) > deadline,
        "death needs an elapsed deadline"
    );
    // Detection is prompt: within one sampling tick past the deadline.
    assert!(
        dead_at.saturating_sub(last) <= deadline + 300,
        "death declared late: last acked t={last}, dead at t={dead_at}, deadline {deadline}"
    );
    assert!(suspect_at <= dead_at);
}

#[test]
fn hang_and_poison_failovers_match_the_baseline() {
    let base = baseline();
    for (name, fault) in [
        ("hang", CollectorFault::Hang),
        ("poison", CollectorFault::Poison),
    ] {
        let root = tmproot(name);
        let drill = DrillPlan::new().with_fault(DrillFault {
            partition: 0,
            after_records: 15,
            fault,
        });
        let (fleet, _) = run_fleet(&root, 1, drill);
        assert_eq!(
            fleet.render_diagnosis(),
            base.render_diagnosis(),
            "{name} + failover must reproduce the uninterrupted diagnosis"
        );
        assert_eq!(fleet.partitions[0].epoch, 2, "{name}: standby owns epoch 2");
        assert!(!fleet.degraded());
    }
}

#[test]
fn orphaned_partition_nacks_and_loses_no_acked_reading() {
    let root = tmproot("orphan");
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 20,
        fault: CollectorFault::Kill,
    });
    // No standby: the handoff must exhaust its attempts and orphan.
    let (fleet, _) = run_fleet(&root, 0, drill);

    let p0 = &fleet.partitions[0];
    assert_eq!(p0.health, PartitionHealth::Orphaned);
    assert!(
        fleet
            .events
            .iter()
            .any(|e| matches!(e, FederationEvent::Orphaned { .. })),
        "the orphan condition must be visible in the event log"
    );
    assert!(
        fleet.degraded() && fleet.flagged(),
        "orphaning is a degraded, flagged state"
    );

    // Fail-stop, not lossy: exactly the 20 acked readings survive in
    // the WAL — none lost, none double-counted — and every other
    // routed reading for the partition is accounted as a NACK.
    let per_partition = stream().iter().filter(|(s, _, _)| s.0 < 2).count();
    assert_eq!(
        p0.report.ingest.accepted, 20,
        "every acked reading survives exactly once"
    );
    assert_eq!(
        p0.report.ingest.duplicates, 0,
        "no acked reading is double-counted"
    );
    assert_eq!(
        p0.orphan_nacks,
        per_partition as u64 - 20,
        "every unacked reading is NACKed, not dropped"
    );

    // The healthy partition is untouched.
    let p1 = &fleet.partitions[1];
    assert_eq!(p1.health, PartitionHealth::Ok);
    assert_eq!(p1.report.ingest.accepted, per_partition);
}

#[test]
fn reclaimed_wal_forces_a_true_snapshot_restore_on_adoption() {
    // Small segments under a retention budget: by the kill coordinate
    // the checkpointed prefix has been reclaimed, so the adopting
    // standby cannot cold-replay — it must rebuild state from the
    // checkpoint-v2 snapshot and replay only the surviving tail. The
    // budget is generous enough that nothing is ever shed, so the
    // diagnosis still matches the uninterrupted baseline byte for
    // byte.
    let mut config = template();
    config.wal.segment_max_bytes = 256;
    config.wal.retain_bytes = Some(2048);
    let base = {
        let root = tmproot("retain-base");
        run_fleet_with(&root, 0, DrillPlan::new(), config.clone()).0
    };
    let root = tmproot("retain-kill");
    let drill = DrillPlan::new().with_fault(DrillFault {
        partition: 0,
        after_records: 120,
        fault: CollectorFault::Kill,
    });
    let (fleet, recovery) = run_fleet_with(&root, 1, drill, config);
    let info = recovery.expect("p0 was adopted");
    assert!(
        info.restored_from.is_some(),
        "a reclaimed log must force a snapshot restore (got {info:?})"
    );
    assert_eq!(fleet.render_diagnosis(), base.render_diagnosis());
    assert_eq!(fleet.partitions[0].epoch, 2);
    for p in &fleet.partitions {
        assert_eq!(p.report.storage.budget_shed, 0, "the drill must not shed");
    }
}

/// Runs the stream through a two-partition fleet under an explicit
/// federation config (the hysteresis drills need `suspect_after`).
fn run_fleet_config(
    root: &std::path::Path,
    standbys: usize,
    drill: DrillPlan,
    config: FederationConfig,
) -> sentinet_controller::FleetReport {
    let map = PartitionMap::split_even(4, 2).expect("non-degenerate");
    let backend = InProcessBackend::new(template(), root, 2, standbys, drill);
    let mut fed = Federation::new(map, config, backend).expect("bootstrap");
    for (sensor, time, values) in stream() {
        fed.route(sensor, time, &values).expect("route");
    }
    fed.finish().expect("finish")
}

#[test]
fn sub_threshold_miss_heals_as_a_counted_flap_not_a_failover() {
    let base = baseline();
    let root = tmproot("flap");
    // One lost send on p0's link: under suspect_after = 2 the retry
    // heals in place — no suspicion, no fencing, no failover.
    let drill = DrillPlan::new().with_net(NetDrill {
        partition: 0,
        after_records: 10,
        span: 1,
        fault: NetFault::Partition,
    });
    let config = FederationConfig {
        suspect_after: 2,
        ..FederationConfig::default()
    };
    // Zero standbys: any failover would orphan and fail the asserts.
    let fleet = run_fleet_config(&root, 0, drill, config);

    assert!(
        fleet.events.is_empty(),
        "a flap must not reach the health machine (got {:?})",
        fleet.events
    );
    let p0 = &fleet.partitions[0];
    assert_eq!(p0.health, PartitionHealth::Ok);
    assert_eq!(p0.epoch, 1, "no failover happened");
    assert_eq!(p0.failovers, 0);
    assert_eq!(p0.flaps, 1, "the healed miss streak is counted");
    assert_eq!(fleet.counters.flaps, 1, "flaps surface in fleet counters");
    assert_eq!(fleet.partitions[1].flaps, 0);
    assert_eq!(
        fleet.render_diagnosis(),
        base.render_diagnosis(),
        "a flap must not perturb the diagnosis"
    );
    assert_eq!(p0.acked, p0.routed, "everything still lands durably");
}

#[test]
fn default_threshold_still_suspects_on_the_first_miss() {
    // suspect_after defaults to 1 — the pre-hysteresis behaviour:
    // the same single lost send commits suspicion and fails over.
    let root = tmproot("flap-default");
    let drill = DrillPlan::new().with_net(NetDrill {
        partition: 0,
        after_records: 10,
        span: 1,
        fault: NetFault::Partition,
    });
    let fleet = run_fleet_config(&root, 1, drill, FederationConfig::default());
    let p0 = &fleet.partitions[0];
    assert_eq!(p0.epoch, 2, "the first miss fails over under the default");
    assert_eq!(p0.failovers, 1);
    assert_eq!(p0.flaps, 0);
    assert_eq!(fleet.counters.flaps, 0);
}

#[test]
fn seeded_drill_plans_replay_to_identical_runs() {
    let plan = DrillPlan::seeded(9, 2, 60, 1);
    assert!(!plan.is_empty());
    let (a, _) = run_fleet(&tmproot("seed-a"), 2, plan.clone());
    let (b, _) = run_fleet(&tmproot("seed-b"), 2, plan);
    assert_eq!(a.events, b.events, "same plan, same events");
    assert_eq!(a.render_diagnosis(), b.render_diagnosis());
    assert_eq!(a.render_accounting(), b.render_accounting());
}
