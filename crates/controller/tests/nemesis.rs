//! Nemesis campaign tests: a pinned-seed campaign composing network,
//! process and disk faults must pass every fleet invariant under
//! enforced fencing, exercise all three fault families (a degenerate
//! campaign that injects nothing must not pass as green), replay
//! deterministically, and — the mutation self-test — FAIL when the
//! deliver-path fence check is compiled out via [`FenceCheck::Skip`].

use sentinet_controller::{run_campaign, NemesisConfig, NemesisViolation};
use sentinet_gateway::{CutCheck, FenceCheck};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmproot(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-nemesis-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn enforced_campaign_passes_and_exercises_every_fault_family() {
    let root = tmproot("enforced");
    let config = NemesisConfig::new(0xC0FFEE, 24, &root);
    let summary = run_campaign(&config).expect("enforced campaign must hold every invariant");

    assert_eq!(summary.episodes, 24);
    assert!(summary.process_faults > 0, "no process faults fired");
    assert!(summary.net_faults > 0, "no network faults fired");
    assert!(summary.disk_faults > 0, "no disk faults fired");
    assert!(summary.disk_episodes > 0, "no FaultyVfs-composed episode");
    assert!(
        summary.pipelined_episodes > 0 && summary.pipelined_episodes < summary.episodes,
        "both delivery modes must run (got {} pipelined of {})",
        summary.pipelined_episodes,
        summary.episodes
    );
    assert!(summary.failovers > 0, "no failover was forced");
    assert!(
        summary.zombie_probes > 0,
        "no fenced-but-live owner was probed — invariant 3 never ran"
    );
    assert_eq!(
        summary.fence_probe_rejects, summary.zombie_probes,
        "every zombie append must be fence-rejected"
    );
    assert!(
        summary.prewarmed_adoptions > 0,
        "the heartbeat channel never pre-warmed an adoption"
    );
}

#[test]
fn campaigns_replay_deterministically() {
    let a = run_campaign(&NemesisConfig::new(77, 9, tmproot("det-a"))).expect("campaign a");
    let b = run_campaign(&NemesisConfig::new(77, 9, tmproot("det-b"))).expect("campaign b");
    assert_eq!(a, b, "same seed must reproduce the same campaign");
}

#[test]
fn migration_campaign_passes_and_probes_moved_ranges() {
    let root = tmproot("migration");
    let config = NemesisConfig::new(0xC0FFEE, 16, &root).with_migration();
    let summary = run_campaign(&config).expect("migration campaign must hold every invariant");

    assert_eq!(summary.episodes, 16);
    assert_eq!(
        summary.migrations,
        2 * u64::from(summary.episodes),
        "every episode must complete its split and its rebalance-back"
    );
    assert!(summary.failovers > 0, "no fault landed on a handoff");
    assert!(
        summary.cut_probes > 0,
        "no fenced owner of a migrated range was probed — the cut probe never ran"
    );
    assert_eq!(
        summary.cut_probe_rejects, summary.cut_probes,
        "every moved-range zombie append must be fence-rejected"
    );
}

#[test]
fn migration_campaigns_replay_deterministically() {
    let a = run_campaign(&NemesisConfig::new(78, 7, tmproot("mig-det-a")).with_migration())
        .expect("campaign a");
    let b = run_campaign(&NemesisConfig::new(78, 7, tmproot("mig-det-b")).with_migration())
        .expect("campaign b");
    assert_eq!(a, b, "same seed must reproduce the same campaign");
}

#[test]
fn cut_check_skip_mutation_makes_the_migration_campaign_fail() {
    let root = tmproot("cut-skip");
    let mut config = NemesisConfig::new(0xC0FFEE, 8, &root).with_migration();
    config.cut = CutCheck::Skip;
    let failure =
        run_campaign(&config).expect_err("with the cut check compiled out, the campaign MUST fail");
    assert!(
        matches!(
            failure.violation,
            NemesisViolation::AckedLost { .. }
                | NemesisViolation::DiagnosisDiverged { .. }
                | NemesisViolation::Orphaned { .. }
        ),
        "the empty-cut mutation must surface as acked loss, divergence or an orphan, got: {failure}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fence_check_skip_mutation_makes_the_campaign_fail() {
    let root = tmproot("skip");
    let mut config = NemesisConfig::new(0xC0FFEE, 24, &root);
    config.fence = FenceCheck::Skip;
    let failure = run_campaign(&config)
        .expect_err("with the fence check compiled out, the campaign MUST fail");
    assert!(
        matches!(
            failure.violation,
            NemesisViolation::SplitBrain { .. } | NemesisViolation::DiagnosisDiverged { .. }
        ),
        "the mutation must surface as split-brain or diagnosis divergence, got: {failure}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
