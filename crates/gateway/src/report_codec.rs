//! Stable text codec for [`GatewayReport`] counters, so a controller
//! tier can merge per-collector accounting without field-order (or
//! struct-layout) coupling.
//!
//! Every counter travels as one `name value` line under a magic
//! header. Names are the wire contract: decoding is keyed by name and
//! accepts any line order, rejects unknown and duplicate names, and
//! fails loudly when a name is missing — a silently-defaulted counter
//! would make a fleet merge lie. The encoding is pinned by a
//! round-trip test (including a shuffled-lines decode) so a renamed
//! struct field cannot drift the wire format unnoticed.

use crate::collector::GatewayReport;
use std::collections::BTreeMap;
use std::fmt;

/// Magic first line of the encoding.
pub const COUNTERS_MAGIC: &str = "sentinet-report-counters v1";

/// The mergeable accounting of one gateway run, under stable names.
///
/// Everything here is additive across collectors (the `poisoned` flag
/// merges as a saturating OR-count: how many collectors reported a
/// poisoned WAL), so a fleet-wide roll-up is `merge` over the parts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportCounters {
    /// Readings admitted through the full path (`accepted`).
    pub accepted: u64,
    /// Sanitizer rejections (`sanitizer-rejects`).
    pub sanitizer_rejects: u64,
    /// Transport-level duplicates absorbed (`duplicates`).
    pub duplicates: u64,
    /// Readings refused as late by the reorder buffer (`late`).
    pub late: u64,
    /// Readings shed by bounded reorder occupancy (`shed`).
    pub shed: u64,
    /// Readings NACKed on an exhausted WAL budget (`budget-shed`).
    pub budget_shed: u64,
    /// Readings NACKed while the WAL was poisoned (`storage-rejects`).
    pub storage_rejects: u64,
    /// Checkpoint writes that failed (`checkpoint-failures`).
    pub checkpoint_failures: u64,
    /// Reclaims whose deletion failed (`reclaim-failures`).
    pub reclaim_failures: u64,
    /// WAL segments reclaimed by retention (`reclaimed-segments`).
    pub reclaimed_segments: u64,
    /// Collectors whose WAL ended the run poisoned (`poisoned`).
    pub poisoned: u64,
    /// Sensors silent at end of run (`silent-sensors`).
    pub silent_sensors: u64,
    /// Silence episodes over the whole run (`silence-episodes`).
    pub silence_episodes: u64,
    /// Hellos refused for an unsupported version (`version-rejects`).
    /// Counted by the server/harness tier; zero when unavailable.
    pub version_rejects: u64,
    /// Uplink frames written, retransmissions included
    /// (`frames-sent`).
    pub frames_sent: u64,
    /// Uplink frames re-sent (`retransmits`).
    pub retransmits: u64,
    /// Uplink ack waits that hit the deadline (`timeouts`).
    pub timeouts: u64,
    /// NACKs the uplink received (`nacks`).
    pub nacks: u64,
    /// Uplink reconnections after a failure (`reconnects`).
    pub reconnects: u64,
    /// Uplink frames/batches fully acknowledged (`uplink-acked`).
    pub uplink_acked: u64,
    /// Deliveries NACKed by epoch fencing — a stale owner fail-stopped
    /// instead of racing its successor (`fence-rejects`).
    pub fence_rejects: u64,
    /// Suspect streaks that recovered before the hysteresis threshold
    /// — transient link blips that did *not* trigger fencing churn
    /// (`flaps`). Counted by the federation tier; zero elsewhere.
    pub flaps: u64,
    /// Live range migrations the controller began
    /// (`migrations-started`). Federation tier only; zero elsewhere.
    pub migrations_started: u64,
    /// Migrations that committed the new owner
    /// (`migrations-completed`). Federation tier only; zero elsewhere.
    pub migrations_completed: u64,
    /// Migrations rolled back before the cut committed
    /// (`migrations-aborted`). Federation tier only; zero elsewhere.
    pub migrations_aborted: u64,
}

/// Every wire name, in encoding order. Decoding requires exactly this
/// set (any order); encoding emits them in this order.
const FIELDS: &[&str] = &[
    "accepted",
    "sanitizer-rejects",
    "duplicates",
    "late",
    "shed",
    "budget-shed",
    "storage-rejects",
    "checkpoint-failures",
    "reclaim-failures",
    "reclaimed-segments",
    "poisoned",
    "silent-sensors",
    "silence-episodes",
    "version-rejects",
    "frames-sent",
    "retransmits",
    "timeouts",
    "nacks",
    "reconnects",
    "uplink-acked",
    "fence-rejects",
    "flaps",
    "migrations-started",
    "migrations-completed",
    "migrations-aborted",
];

/// A counters decode failure (typed, loud — never a silent default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountersError(pub String);

impl fmt::Display for CountersError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "report counters: {}", self.0)
    }
}

impl std::error::Error for CountersError {}

impl ReportCounters {
    /// Extracts the mergeable counters of one finished run. The
    /// `version-rejects` counter lives in the serving tier, not the
    /// report — callers that have it set the field afterwards.
    pub fn from_report(report: &GatewayReport) -> Self {
        let uplink = report.uplink.unwrap_or_default();
        Self {
            accepted: report.ingest.accepted as u64,
            sanitizer_rejects: report.ingest.rejected.len() as u64,
            duplicates: report.ingest.duplicates as u64,
            late: report.ingest.late as u64,
            shed: report.ingest.shed as u64,
            budget_shed: report.storage.budget_shed as u64,
            storage_rejects: report.storage.storage_rejects as u64,
            checkpoint_failures: report.storage.checkpoint_failures as u64,
            reclaim_failures: report.storage.reclaim_failures as u64,
            reclaimed_segments: report.storage.reclaimed_segments as u64,
            poisoned: u64::from(report.storage.error.is_some()),
            silent_sensors: report.liveness.silent.len() as u64,
            silence_episodes: report.liveness.episodes as u64,
            version_rejects: 0,
            frames_sent: uplink.frames_sent,
            retransmits: uplink.retransmits,
            timeouts: uplink.timeouts,
            nacks: uplink.nacks,
            reconnects: uplink.reconnects,
            uplink_acked: uplink.acked,
            fence_rejects: report.storage.fence_rejects as u64,
            flaps: 0,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_aborted: 0,
        }
    }

    /// The named value, by wire name.
    fn get(&self, name: &str) -> u64 {
        match name {
            "accepted" => self.accepted,
            "sanitizer-rejects" => self.sanitizer_rejects,
            "duplicates" => self.duplicates,
            "late" => self.late,
            "shed" => self.shed,
            "budget-shed" => self.budget_shed,
            "storage-rejects" => self.storage_rejects,
            "checkpoint-failures" => self.checkpoint_failures,
            "reclaim-failures" => self.reclaim_failures,
            "reclaimed-segments" => self.reclaimed_segments,
            "poisoned" => self.poisoned,
            "silent-sensors" => self.silent_sensors,
            "silence-episodes" => self.silence_episodes,
            "version-rejects" => self.version_rejects,
            "frames-sent" => self.frames_sent,
            "retransmits" => self.retransmits,
            "timeouts" => self.timeouts,
            "nacks" => self.nacks,
            "reconnects" => self.reconnects,
            "uplink-acked" => self.uplink_acked,
            "fence-rejects" => self.fence_rejects,
            "flaps" => self.flaps,
            "migrations-started" => self.migrations_started,
            "migrations-completed" => self.migrations_completed,
            "migrations-aborted" => self.migrations_aborted,
            _ => 0,
        }
    }

    /// Sets the named value, by wire name; `false` for unknown names.
    fn set(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "accepted" => &mut self.accepted,
            "sanitizer-rejects" => &mut self.sanitizer_rejects,
            "duplicates" => &mut self.duplicates,
            "late" => &mut self.late,
            "shed" => &mut self.shed,
            "budget-shed" => &mut self.budget_shed,
            "storage-rejects" => &mut self.storage_rejects,
            "checkpoint-failures" => &mut self.checkpoint_failures,
            "reclaim-failures" => &mut self.reclaim_failures,
            "reclaimed-segments" => &mut self.reclaimed_segments,
            "poisoned" => &mut self.poisoned,
            "silent-sensors" => &mut self.silent_sensors,
            "silence-episodes" => &mut self.silence_episodes,
            "version-rejects" => &mut self.version_rejects,
            "frames-sent" => &mut self.frames_sent,
            "retransmits" => &mut self.retransmits,
            "timeouts" => &mut self.timeouts,
            "nacks" => &mut self.nacks,
            "reconnects" => &mut self.reconnects,
            "uplink-acked" => &mut self.uplink_acked,
            "fence-rejects" => &mut self.fence_rejects,
            "flaps" => &mut self.flaps,
            "migrations-started" => &mut self.migrations_started,
            "migrations-completed" => &mut self.migrations_completed,
            "migrations-aborted" => &mut self.migrations_aborted,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Adds `other` into `self`, saturating — the fleet roll-up.
    pub fn merge(&mut self, other: &Self) {
        for name in FIELDS {
            let sum = self.get(name).saturating_add(other.get(name));
            self.set(name, sum);
        }
    }

    /// Encodes as the stable named-line text format.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(FIELDS.len() * 24);
        out.push_str(COUNTERS_MAGIC);
        out.push('\n');
        for name in FIELDS {
            out.push_str(name);
            out.push(' ');
            out.push_str(&self.get(name).to_string());
            out.push('\n');
        }
        out
    }

    /// Decodes the named-line format, in any line order.
    ///
    /// # Errors
    ///
    /// [`CountersError`] on a missing magic, an unknown or duplicate
    /// name, a malformed value, or a missing field — every failure
    /// names the offending line.
    pub fn decode(text: &str) -> Result<Self, CountersError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == COUNTERS_MAGIC => {}
            other => {
                return Err(CountersError(format!(
                    "bad magic line {other:?} (expected {COUNTERS_MAGIC:?})"
                )))
            }
        }
        let mut seen: BTreeMap<String, u64> = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| CountersError(format!("line {}: no `name value` pair", i + 2)))?;
            if !FIELDS.contains(&name) {
                return Err(CountersError(format!(
                    "line {}: unknown counter `{name}`",
                    i + 2
                )));
            }
            let value: u64 = value.parse().map_err(|e| {
                CountersError(format!("line {}: bad value for `{name}`: {e}", i + 2))
            })?;
            if seen.insert(name.to_string(), value).is_some() {
                return Err(CountersError(format!(
                    "line {}: duplicate counter `{name}`",
                    i + 2
                )));
            }
        }
        let mut out = Self::default();
        for name in FIELDS {
            let value = *seen
                .get(*name)
                .ok_or_else(|| CountersError(format!("missing counter `{name}`")))?;
            out.set(name, value);
        }
        Ok(out)
    }
}

impl fmt::Display for ReportCounters {
    /// One human-oriented summary line (the stderr roll-up format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accepted, {} duplicate(s), {} late, {} shed, {} budget-shed, \
             {} storage-reject(s), {} silence episode(s), {} version-reject(s)",
            self.accepted,
            self.duplicates,
            self.late,
            self.shed,
            self.budget_shed,
            self.storage_rejects,
            self.silence_episodes,
            self.version_rejects
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReportCounters {
        ReportCounters {
            accepted: 240,
            sanitizer_rejects: 3,
            duplicates: 7,
            late: 1,
            shed: 2,
            budget_shed: 4,
            storage_rejects: 5,
            checkpoint_failures: 0,
            reclaim_failures: 0,
            reclaimed_segments: 6,
            poisoned: 1,
            silent_sensors: 2,
            silence_episodes: 3,
            version_rejects: 9,
            frames_sent: 260,
            retransmits: 11,
            timeouts: 8,
            nacks: 5,
            reconnects: 3,
            uplink_acked: 240,
            fence_rejects: 2,
            flaps: 1,
            migrations_started: 4,
            migrations_completed: 3,
            migrations_aborted: 1,
        }
    }

    /// The literal wire format is the contract: renaming a struct
    /// field must not silently rename a wire line.
    #[test]
    fn encoding_is_pinned() {
        let expected = "sentinet-report-counters v1\n\
                        accepted 240\n\
                        sanitizer-rejects 3\n\
                        duplicates 7\n\
                        late 1\n\
                        shed 2\n\
                        budget-shed 4\n\
                        storage-rejects 5\n\
                        checkpoint-failures 0\n\
                        reclaim-failures 0\n\
                        reclaimed-segments 6\n\
                        poisoned 1\n\
                        silent-sensors 2\n\
                        silence-episodes 3\n\
                        version-rejects 9\n\
                        frames-sent 260\n\
                        retransmits 11\n\
                        timeouts 8\n\
                        nacks 5\n\
                        reconnects 3\n\
                        uplink-acked 240\n\
                        fence-rejects 2\n\
                        flaps 1\n\
                        migrations-started 4\n\
                        migrations-completed 3\n\
                        migrations-aborted 1\n";
        assert_eq!(sample().encode(), expected);
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = sample();
        assert_eq!(ReportCounters::decode(&c.encode()).unwrap(), c);
    }

    /// Decoding is keyed by name: any line order reproduces the same
    /// counters (the whole point — no field-order coupling).
    #[test]
    fn decode_accepts_shuffled_lines() {
        let c = sample();
        let encoded = c.encode();
        let mut lines: Vec<&str> = encoded.lines().skip(1).collect();
        lines.reverse();
        let shuffled = format!("{COUNTERS_MAGIC}\n{}\n", lines.join("\n"));
        assert_eq!(ReportCounters::decode(&shuffled).unwrap(), c);
    }

    #[test]
    fn decode_rejects_unknown_duplicate_and_missing() {
        let c = sample().encode();
        let unknown = format!("{c}frobnicated 3\n");
        assert!(ReportCounters::decode(&unknown)
            .unwrap_err()
            .to_string()
            .contains("unknown counter"));
        let duplicate = format!("{c}accepted 240\n");
        assert!(ReportCounters::decode(&duplicate)
            .unwrap_err()
            .to_string()
            .contains("duplicate counter"));
        let missing: String = c.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(ReportCounters::decode(&missing)
            .unwrap_err()
            .to_string()
            .contains("missing counter"));
        assert!(ReportCounters::decode("not the magic\n")
            .unwrap_err()
            .to_string()
            .contains("bad magic"));
        let garbled = format!("{COUNTERS_MAGIC}\naccepted over9000\n");
        assert!(ReportCounters::decode(&garbled)
            .unwrap_err()
            .to_string()
            .contains("bad value"));
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.accepted, 480);
        assert_eq!(a.version_rejects, 18);
        assert_eq!(a.poisoned, 2);
        assert_eq!(a.uplink_acked, 480);
        assert_eq!(a.migrations_started, 8);
        assert_eq!(a.migrations_completed, 6);
        assert_eq!(a.migrations_aborted, 2);
    }
}
