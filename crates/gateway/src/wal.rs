//! Append-only segmented write-ahead log.
//!
//! Every admitted record is logged *before* it is acknowledged to the
//! client, so an ack means durable: after a crash the daemon replays
//! the log through the identical accept path and resumes bit-exactly.
//!
//! On-disk layout: a directory of segments named `wal-00000001.seg`,
//! `wal-00000002.seg`, … — each a concatenation of records in the same
//! `[u32 len][payload][u32 crc]` framing as the wire protocol (the
//! payload is exactly a `Data` frame payload, so wire and log share one
//! codec). A segment rolls once it would exceed the configured size.
//!
//! Opening scans all segments in order. A decode failure in the *last*
//! segment is treated as a torn tail — the segment is truncated at the
//! failure offset and everything before it is recovered exactly. (A
//! mid-file bit flip in the last segment is indistinguishable from a
//! torn tail by construction, so later records are discarded with it;
//! the client retry protocol re-delivers anything that lost its ack.)
//! A decode failure in an *earlier* segment cannot be a torn tail and
//! is reported as corruption instead of being silently dropped.
//!
//! Durability against power loss is governed by [`FsyncPolicy`]. Note
//! that a `kill -9` does not lose page-cache writes — only the machine
//! dying does — so even `fsync=never` survives process kill.

use crate::frame::{
    decode_payload, encode_data_payload, frame_payload, FrameError, Message, MAX_PAYLOAD,
};
use sentinet_sim::{RawRecord, SensorId, Timestamp};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One durable record: an admitted sensor reading plus the sequence
/// number it arrived under (kept so replay can rebuild the
/// deduplication state and recognise post-restart retries).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Per-sensor sequence number the record arrived under.
    pub seq: u64,
    /// Sample timestamp.
    pub time: Timestamp,
    /// Attribute values, preserved bit-exactly.
    pub values: Vec<f64>,
}

impl WalRecord {
    /// The reading as the sanitizer's input type.
    pub fn raw(&self) -> RawRecord {
        RawRecord {
            time: self.time,
            sensor: self.sensor,
            values: self.values.clone(),
        }
    }
}

/// When the log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (still survives `kill -9`; loses data on power cut).
    Never,
    /// Fsync after every N appended records.
    Batch(u32),
    /// Fsync after every append.
    Always,
}

impl FsyncPolicy {
    /// Parses `never`, `always`, or `batch:N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "never" => Ok(FsyncPolicy::Never),
            "always" => Ok(FsyncPolicy::Always),
            other => match other.strip_prefix("batch:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => Ok(FsyncPolicy::Batch(n)),
                    _ => Err(format!("bad fsync batch size `{n}`")),
                },
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected never | always | batch:N)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Never => write!(f, "never"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            FsyncPolicy::Always => write!(f, "always"),
        }
    }
}

/// Write-ahead log configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segments (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the current one would exceed this.
    pub segment_max_bytes: u64,
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// Chaos hook: abort the whole process (as if `kill -9`) right
    /// after the Nth append of this process's lifetime.
    pub crash_after: Option<u64>,
}

impl WalConfig {
    /// A config with default segment size (4 MiB) and no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 4 << 20,
            fsync: FsyncPolicy::Never,
            crash_after: None,
        }
    }
}

/// A WAL failure.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem error, with the path involved.
    Io(PathBuf, std::io::Error),
    /// A non-final segment failed to decode — real corruption, not a
    /// torn tail.
    Corrupt {
        /// The corrupt segment.
        segment: PathBuf,
        /// Byte offset of the undecodable record.
        offset: u64,
        /// What went wrong there.
        reason: FrameError,
    },
    /// A decoded record was not a `Data` payload.
    ForeignRecord {
        /// The segment holding it.
        segment: PathBuf,
        /// Byte offset of the record.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(path, e) => write!(f, "wal io error at {}: {e}", path.display()),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal corruption in {} at byte {offset}: {reason}",
                segment.display()
            ),
            WalError::ForeignRecord { segment, offset } => write!(
                f,
                "non-data record in {} at byte {offset}",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for WalError {}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io(path.to_path_buf(), e)
}

/// How far a scan of one segment's bytes got.
enum SegmentScan {
    /// Every byte decoded.
    Clean,
    /// Decoding failed at this offset for this reason.
    Failed(u64, FrameError),
}

/// Decodes records from `bytes`, pushing onto `out`. Returns where the
/// scan stopped. `ForeignRecord` (a syntactically valid non-Data
/// payload) is real corruption even in the last segment, so it is
/// returned as a hard error directly.
fn scan_segment(
    segment: &Path,
    bytes: &[u8],
    out: &mut Vec<WalRecord>,
) -> Result<SegmentScan, WalError> {
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            return Ok(SegmentScan::Failed(pos as u64, FrameError::Truncated));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Ok(SegmentScan::Failed(
                pos as u64,
                FrameError::TooLarge { len },
            ));
        }
        if rest.len() < 4 + len + 4 {
            return Ok(SegmentScan::Failed(pos as u64, FrameError::Truncated));
        }
        let payload = &rest[4..4 + len];
        let carried =
            u32::from_le_bytes([rest[4 + len], rest[5 + len], rest[6 + len], rest[7 + len]]);
        let computed = crate::crc::crc32(payload);
        if computed != carried {
            return Ok(SegmentScan::Failed(
                pos as u64,
                FrameError::BadCrc { computed, carried },
            ));
        }
        match decode_payload(payload) {
            Ok(Message::Data {
                sensor,
                seq,
                time,
                values,
            }) => out.push(WalRecord {
                sensor,
                seq,
                time,
                values,
            }),
            Ok(_) => {
                return Err(WalError::ForeignRecord {
                    segment: segment.to_path_buf(),
                    offset: pos as u64,
                })
            }
            Err(reason) => return Ok(SegmentScan::Failed(pos as u64, reason)),
        }
        pos += 4 + len + 4;
    }
    Ok(SegmentScan::Clean)
}

/// An open write-ahead log, positioned for appending.
pub struct Wal {
    config: WalConfig,
    file: File,
    segment_index: u64,
    segment_path: PathBuf,
    segment_bytes: u64,
    appended_this_process: u64,
    records_logged: u64,
    pending_sync: u32,
    scratch: Vec<u8>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("segment_index", &self.segment_index)
            .field("records_logged", &self.records_logged)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the log in `config.dir`, recovering
    /// all decodable records and truncating a torn tail.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failure, [`WalError::Corrupt`]
    /// if a non-final segment fails to decode.
    pub fn open(config: WalConfig) -> Result<(Self, Vec<WalRecord>), WalError> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err(&config.dir, e))?;
        let mut indices: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&config.dir).map_err(|e| io_err(&config.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&config.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("wal-")
                .and_then(|r| r.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        if indices.is_empty() {
            indices.push(1);
            let path = config.dir.join(segment_name(1));
            File::create(&path).map_err(|e| io_err(&path, e))?;
        }

        let mut records = Vec::new();
        let last = indices.len() - 1;
        let mut tail_len = 0u64;
        for (i, &idx) in indices.iter().enumerate() {
            let path = config.dir.join(segment_name(idx));
            let mut bytes = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| io_err(&path, e))?;
            match scan_segment(&path, &bytes, &mut records)? {
                SegmentScan::Clean => {
                    if i == last {
                        tail_len = bytes.len() as u64;
                    }
                }
                SegmentScan::Failed(offset, reason) => {
                    if i == last {
                        // Torn tail: keep the clean prefix, drop the rest.
                        let f = OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .map_err(|e| io_err(&path, e))?;
                        f.set_len(offset).map_err(|e| io_err(&path, e))?;
                        f.sync_all().map_err(|e| io_err(&path, e))?;
                        tail_len = offset;
                    } else {
                        return Err(WalError::Corrupt {
                            segment: path,
                            offset,
                            reason,
                        });
                    }
                }
            }
        }

        let segment_index = indices[last];
        let segment_path = config.dir.join(segment_name(segment_index));
        let file = OpenOptions::new()
            .append(true)
            .open(&segment_path)
            .map_err(|e| io_err(&segment_path, e))?;
        let records_logged = records.len() as u64;
        Ok((
            Self {
                config,
                file,
                segment_index,
                segment_path,
                segment_bytes: tail_len,
                appended_this_process: 0,
                records_logged,
                pending_sync: 0,
                scratch: Vec::new(),
            },
            records,
        ))
    }

    /// Total records in the log, recovered plus appended — the cursor
    /// checkpoints reference.
    pub fn records_logged(&self) -> u64 {
        self.records_logged
    }

    /// Appends one record durably (per the fsync policy).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write failure.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.scratch.clear();
        encode_data_payload(
            record.sensor,
            record.seq,
            record.time,
            &record.values,
            &mut self.scratch,
        );
        let mut framed = Vec::with_capacity(self.scratch.len() + 8);
        frame_payload(&self.scratch, &mut framed);

        if self.segment_bytes > 0
            && self.segment_bytes + framed.len() as u64 > self.config.segment_max_bytes
        {
            self.roll_segment()?;
        }

        self.file
            .write_all(&framed)
            .map_err(|e| io_err(&self.segment_path, e))?;
        self.segment_bytes += framed.len() as u64;
        self.records_logged += 1;
        self.appended_this_process += 1;

        match self.config.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::Always => {
                self.file
                    .sync_data()
                    .map_err(|e| io_err(&self.segment_path, e))?;
            }
            FsyncPolicy::Batch(n) => {
                self.pending_sync += 1;
                if self.pending_sync >= n {
                    self.file
                        .sync_data()
                        .map_err(|e| io_err(&self.segment_path, e))?;
                    self.pending_sync = 0;
                }
            }
        }

        if self.config.crash_after == Some(self.appended_this_process) {
            // Chaos coordinate: die as if `kill -9`, mid-everything.
            std::process::abort();
        }
        Ok(())
    }

    /// Forces all buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.segment_path, e))?;
        self.pending_sync = 0;
        Ok(())
    }

    fn roll_segment(&mut self) -> Result<(), WalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.segment_path, e))?;
        self.segment_index += 1;
        self.segment_path = self.config.dir.join(segment_name(self.segment_index));
        self.file = File::create(&self.segment_path).map_err(|e| io_err(&self.segment_path, e))?;
        self.segment_bytes = 0;
        self.pending_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinet-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(sensor: u16, seq: u64, time: u64, v: f64) -> WalRecord {
        WalRecord {
            sensor: SensorId(sensor),
            seq,
            time,
            values: vec![v, v + 1.0],
        }
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = tmpdir("roundtrip");
        let originals: Vec<WalRecord> = (0..50)
            .map(|i| rec(1, i, 300 * (i + 1), i as f64))
            .collect();
        {
            let (mut wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(recovered.is_empty());
            for r in &originals {
                wal.append(r).unwrap();
            }
        }
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered, originals);
        assert_eq!(wal.records_logged(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_recover_in_order() {
        let dir = tmpdir("roll");
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 64; // force frequent rolls
        let originals: Vec<WalRecord> = (0..40).map(|i| rec(2, i, 300 * (i + 1), 0.5)).collect();
        {
            let (mut wal, _) = Wal::open(config.clone()).unwrap();
            for r in &originals {
                wal.append(r).unwrap();
            }
        }
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs > 1, "expected multiple segments, got {segs}");
        let (_, recovered) = Wal::open(config).unwrap();
        assert_eq!(recovered, originals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_clean_prefix() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
            for i in 0..10 {
                wal.append(&rec(1, i, 300 * (i + 1), 1.0)).unwrap();
            }
        }
        let seg = dir.join(segment_name(1));
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap(); // tear mid-record
        drop(f);
        let (_, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.len(), 9);
        // Appending after truncation continues cleanly.
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append(&rec(1, 9, 3000, 1.0)).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_earlier_segment_is_a_hard_error() {
        let dir = tmpdir("corrupt");
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 64;
        {
            let (mut wal, _) = Wal::open(config.clone()).unwrap();
            for i in 0..40 {
                wal.append(&rec(1, i, 300 * (i + 1), 1.0)).unwrap();
            }
        }
        // Flip a byte in the first segment's first record payload.
        let seg = dir.join(segment_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        bytes[6] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(Wal::open(config), Err(WalError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_parse() {
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch:8"), Ok(FsyncPolicy::Batch(8)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
