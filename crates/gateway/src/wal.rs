//! Append-only segmented write-ahead log.
//!
//! Every admitted record is logged *before* it is acknowledged to the
//! client, so an ack means durable: after a crash the daemon replays
//! the log through the identical accept path and resumes bit-exactly.
//!
//! On-disk layout: a directory of segments named `wal-00000001.seg`,
//! `wal-00000002.seg`, … — each a concatenation of records in the same
//! `[u32 len][payload][u32 crc]` framing as the wire protocol (the
//! payload is exactly a `Data` frame payload, so wire and log share one
//! codec). A segment rolls once it would exceed the configured size.
//!
//! Opening scans all segments in order. A decode failure in the *last*
//! segment is treated as a torn tail — the segment is truncated at the
//! failure offset and everything before it is recovered exactly. (A
//! mid-file bit flip in the last segment is indistinguishable from a
//! torn tail by construction, so later records are discarded with it;
//! the client retry protocol re-delivers anything that lost its ack.)
//! A decode failure in an *earlier* segment cannot be a torn tail and
//! is reported as corruption instead of being silently dropped.
//!
//! Durability against power loss is governed by [`FsyncPolicy`]. Note
//! that a `kill -9` does not lose page-cache writes — only the machine
//! dying does — so even `fsync=never` survives process kill.
//!
//! Two robustness mechanisms live at this layer (`DESIGN.md` §13):
//!
//! * **Fail-stop on storage errors.** All I/O flows through the
//!   injectable [`Vfs`]. A failed write or fsync *poisons* the log:
//!   the typed [`StorageError`] is captured, every subsequent append
//!   fails with it, and nothing is ever acknowledged past it. After a
//!   failed fsync the kernel may have silently dropped the dirty pages
//!   (the fsyncgate lesson), so retrying would turn an I/O error into
//!   silent data loss; crash-and-replay from the last verified cursor
//!   is the only sound continuation.
//! * **Checkpoint-gated retention.** The log tracks per-segment record
//!   counts against an absolute record index. Once a checkpoint has
//!   durably captured collector state at a cursor, sealed segments
//!   wholly below that cursor can be reclaimed
//!   ([`Wal::plan_reclaim`]/[`Wal::execute_reclaim`]); the log then
//!   reopens against the checkpoint's `(base segment, base records)`
//!   coordinates, deleting any lower-indexed leftovers from a reclaim
//!   that crashed between checkpoint commit and segment deletion.

use crate::frame::{
    decode_payload, encode_data_payload, frame_payload, FrameError, Message, MAX_PAYLOAD,
};
use crate::vfs::{RealVfs, StorageError, VFile, Vfs, VfsOp};
use sentinet_sim::{RawRecord, SensorId, Timestamp};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One durable record: an admitted sensor reading plus the sequence
/// number it arrived under (kept so replay can rebuild the
/// deduplication state and recognise post-restart retries).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Per-sensor sequence number the record arrived under.
    pub seq: u64,
    /// Sample timestamp.
    pub time: Timestamp,
    /// Attribute values, preserved bit-exactly.
    pub values: Vec<f64>,
}

impl WalRecord {
    /// The reading as the sanitizer's input type.
    pub fn raw(&self) -> RawRecord {
        RawRecord {
            time: self.time,
            sensor: self.sensor,
            values: self.values.clone(),
        }
    }
}

/// When the log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (still survives `kill -9`; loses data on power cut).
    Never,
    /// Fsync after every N appended records.
    Batch(u32),
    /// Fsync after every append.
    Always,
}

impl FsyncPolicy {
    /// Parses `never`, `always`, or `batch:N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "never" => Ok(FsyncPolicy::Never),
            "always" => Ok(FsyncPolicy::Always),
            other => match other.strip_prefix("batch:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => Ok(FsyncPolicy::Batch(n)),
                    _ => Err(format!("bad fsync batch size `{n}`")),
                },
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected never | always | batch:N)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Never => write!(f, "never"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            FsyncPolicy::Always => write!(f, "always"),
        }
    }
}

/// Write-ahead log configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segments (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the current one would exceed this.
    pub segment_max_bytes: u64,
    /// Durability policy.
    pub fsync: FsyncPolicy,
    /// Chaos hook: abort the whole process (as if `kill -9`) right
    /// after the Nth append of this process's lifetime.
    pub crash_after: Option<u64>,
    /// The storage layer all I/O goes through ([`RealVfs`] by
    /// default; tests inject a `FaultyVfs`).
    pub vfs: Arc<dyn Vfs>,
    /// On-disk budget for checkpoint-gated retention: when the log
    /// exceeds this, the collector checkpoints and reclaims sealed
    /// segments (and sheds with NACKs once nothing is reclaimable).
    /// `None` retains everything.
    pub retain_bytes: Option<u64>,
}

impl WalConfig {
    /// A config with default segment size (4 MiB), no fsync, real
    /// storage, and unbounded retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 4 << 20,
            fsync: FsyncPolicy::Never,
            crash_after: None,
            vfs: Arc::new(RealVfs),
            retain_bytes: None,
        }
    }
}

/// A WAL failure.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem error, with the path involved.
    Io(PathBuf, std::io::Error),
    /// A non-final segment failed to decode — real corruption, not a
    /// torn tail.
    Corrupt {
        /// The corrupt segment.
        segment: PathBuf,
        /// Byte offset of the undecodable record.
        offset: u64,
        /// What went wrong there.
        reason: FrameError,
    },
    /// A decoded record was not a `Data` payload.
    ForeignRecord {
        /// The segment holding it.
        segment: PathBuf,
        /// Byte offset of the record.
        offset: u64,
    },
    /// The log directory starts at a segment index above the expected
    /// base — a retained log opened without its checkpoint.
    MissingPrefix {
        /// The lowest segment present.
        first_segment: u64,
        /// The segment the caller expected the log to start at.
        expected: u64,
    },
    /// A write or fsync failed; the log is poisoned (fail-stop) and
    /// every subsequent append reports this same error.
    Storage(StorageError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(path, e) => write!(f, "wal io error at {}: {e}", path.display()),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal corruption in {} at byte {offset}: {reason}",
                segment.display()
            ),
            WalError::ForeignRecord { segment, offset } => write!(
                f,
                "non-data record in {} at byte {offset}",
                segment.display()
            ),
            WalError::MissingPrefix {
                first_segment,
                expected,
            } => write!(
                f,
                "wal starts at segment {first_segment}, expected {expected}: \
                 retained log opened without its checkpoint"
            ),
            WalError::Storage(e) => write!(f, "wal poisoned: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io(path.to_path_buf(), e)
}

/// How far a scan of one segment's bytes got.
enum SegmentScan {
    /// Every byte decoded.
    Clean,
    /// Decoding failed at this offset for this reason.
    Failed(u64, FrameError),
}

/// Decodes records from `bytes`, pushing onto `out`. Returns where the
/// scan stopped. `ForeignRecord` (a syntactically valid non-Data
/// payload) is real corruption even in the last segment, so it is
/// returned as a hard error directly.
fn scan_segment(
    segment: &Path,
    bytes: &[u8],
    out: &mut Vec<WalRecord>,
) -> Result<SegmentScan, WalError> {
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            return Ok(SegmentScan::Failed(pos as u64, FrameError::Truncated));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Ok(SegmentScan::Failed(
                pos as u64,
                FrameError::TooLarge { len },
            ));
        }
        if rest.len() < 4 + len + 4 {
            return Ok(SegmentScan::Failed(pos as u64, FrameError::Truncated));
        }
        let payload = &rest[4..4 + len];
        let carried =
            u32::from_le_bytes([rest[4 + len], rest[5 + len], rest[6 + len], rest[7 + len]]);
        let computed = crate::crc::crc32(payload);
        if computed != carried {
            return Ok(SegmentScan::Failed(
                pos as u64,
                FrameError::BadCrc { computed, carried },
            ));
        }
        match decode_payload(payload) {
            Ok(Message::Data {
                sensor,
                seq,
                time,
                values,
            }) => out.push(WalRecord {
                sensor,
                seq,
                time,
                values,
            }),
            Ok(_) => {
                return Err(WalError::ForeignRecord {
                    segment: segment.to_path_buf(),
                    offset: pos as u64,
                })
            }
            Err(reason) => return Ok(SegmentScan::Failed(pos as u64, reason)),
        }
        pos += 4 + len + 4;
    }
    Ok(SegmentScan::Clean)
}

/// Bookkeeping for one on-disk segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment index (the number in `wal-NNNNNNNN.seg`).
    pub index: u64,
    /// Bytes currently in the segment.
    pub bytes: u64,
    /// Records currently in the segment.
    pub records: u64,
}

/// The outcome of [`Wal::plan_reclaim`]: which sealed segments a
/// committed checkpoint at the given cursor lets the log delete, and
/// the `(base segment, base records)` coordinates the checkpoint must
/// record *before* the deletion happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimPlan {
    /// Segment indices to delete, oldest first.
    pub delete: Vec<u64>,
    /// First surviving segment index after the reclaim.
    pub base_segment: u64,
    /// Absolute index of the first record in that segment.
    pub base_records: u64,
}

impl ReclaimPlan {
    /// Whether the plan deletes anything.
    pub fn is_empty(&self) -> bool {
        self.delete.is_empty()
    }
}

/// An open write-ahead log, positioned for appending.
pub struct Wal {
    config: WalConfig,
    file: Box<dyn VFile>,
    segment_path: PathBuf,
    appended_this_process: u64,
    records_logged: u64,
    pending_sync: u32,
    /// Absolute record cursor covered by the last completed fsync.
    /// Records above it are appended but not yet durable; the
    /// pipelined protocol must not ack past this point.
    synced_records: u64,
    /// Wall time spent inside write calls (bench stage breakdown).
    append_ns: u64,
    /// Wall time spent inside fsync calls (bench stage breakdown).
    fsync_ns: u64,
    scratch: Vec<u8>,
    /// On-disk segments, oldest first; the last entry is the one open
    /// for appending.
    segments: Vec<SegmentInfo>,
    /// Absolute record index of the first record in `segments[0]` —
    /// how many records precede the on-disk log (0 for a full log).
    base_records: u64,
    /// Set on the first failed write or fsync; fail-stop from then on.
    poisoned: Option<StorageError>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("segments", &self.segments)
            .field("base_records", &self.base_records)
            .field("records_logged", &self.records_logged)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the log in `config.dir`, recovering
    /// all decodable records and truncating a torn tail.
    ///
    /// `base` is the `(base segment, base records)` coordinate pair
    /// from a durable checkpoint, for a log whose replayed prefix was
    /// reclaimed; `None` means the log is expected from genesis
    /// (segment 1, record 0). Segments below the base are deleted —
    /// they are leftovers of a reclaim that crashed between checkpoint
    /// commit and segment deletion. The returned records are the
    /// on-disk ones; their absolute indices start at the base.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failure, [`WalError::Corrupt`]
    /// if a non-final segment fails to decode, and
    /// [`WalError::MissingPrefix`] if the directory's first segment is
    /// above the expected base (a retained log opened without its
    /// checkpoint).
    pub fn open(
        config: WalConfig,
        base: Option<(u64, u64)>,
    ) -> Result<(Self, Vec<WalRecord>), WalError> {
        let vfs = Arc::clone(&config.vfs);
        vfs.create_dir_all(&config.dir)
            .map_err(|e| io_err(&config.dir, e))?;
        let (base_segment, base_records) = base.unwrap_or((1, 0));
        let mut indices: Vec<u64> = Vec::new();
        for name in vfs.list(&config.dir).map_err(|e| io_err(&config.dir, e))? {
            if let Some(idx) = name
                .strip_prefix("wal-")
                .and_then(|r| r.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        // Segments below the base are leftovers of an interrupted
        // reclaim: the checkpoint superseding them committed (that is
        // where the base came from), so finish their deletion.
        for &idx in indices.iter().filter(|&&i| i < base_segment) {
            let path = config.dir.join(segment_name(idx));
            vfs.remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        indices.retain(|&i| i >= base_segment);
        if let Some(&first) = indices.first() {
            if first > base_segment {
                return Err(WalError::MissingPrefix {
                    first_segment: first,
                    expected: base_segment,
                });
            }
        }
        if indices.is_empty() {
            indices.push(base_segment);
            let path = config.dir.join(segment_name(base_segment));
            drop(vfs.create(&path).map_err(|e| io_err(&path, e))?);
        }

        let mut records = Vec::new();
        let mut segments = Vec::with_capacity(indices.len());
        let last = indices.len() - 1;
        for (i, &idx) in indices.iter().enumerate() {
            let path = config.dir.join(segment_name(idx));
            let bytes = vfs.read(&path).map_err(|e| io_err(&path, e))?;
            let before = records.len() as u64;
            let seg_bytes = match scan_segment(&path, &bytes, &mut records)? {
                SegmentScan::Clean => bytes.len() as u64,
                SegmentScan::Failed(offset, reason) => {
                    if i == last {
                        // Torn tail: keep the clean prefix, drop the rest.
                        vfs.truncate(&path, offset).map_err(|e| io_err(&path, e))?;
                        offset
                    } else {
                        return Err(WalError::Corrupt {
                            segment: path,
                            offset,
                            reason,
                        });
                    }
                }
            };
            segments.push(SegmentInfo {
                index: idx,
                bytes: seg_bytes,
                records: records.len() as u64 - before,
            });
        }

        // sentinet-allow(expect-used): segments is non-empty by construction above
        let active = *segments.last().expect("at least one segment");
        let segment_path = config.dir.join(segment_name(active.index));
        let file = vfs
            .open_append(&segment_path)
            .map_err(|e| io_err(&segment_path, e))?;
        let records_logged = base_records + records.len() as u64;
        Ok((
            Self {
                config,
                file,
                segment_path,
                appended_this_process: 0,
                records_logged,
                pending_sync: 0,
                // Everything recovered was read back from disk, so the
                // whole recovered prefix counts as covered.
                synced_records: records_logged,
                append_ns: 0,
                fsync_ns: 0,
                scratch: Vec::new(),
                segments,
                base_records,
                poisoned: None,
            },
            records,
        ))
    }

    /// Total records ever logged (reclaimed + on disk + appended) —
    /// the absolute cursor checkpoints reference.
    pub fn records_logged(&self) -> u64 {
        self.records_logged
    }

    /// Absolute record index of the first on-disk record (0 unless a
    /// prefix was reclaimed).
    pub fn base_records(&self) -> u64 {
        self.base_records
    }

    /// Absolute record cursor covered by a completed fsync — the
    /// pipelined protocol releases acks only up to this watermark.
    /// Under [`FsyncPolicy::Never`] the policy opts out of crash
    /// durability entirely, so the watermark tracks
    /// [`Wal::records_logged`].
    pub fn synced_records(&self) -> u64 {
        match self.config.fsync {
            FsyncPolicy::Never => self.records_logged,
            FsyncPolicy::Always | FsyncPolicy::Batch(_) => self.synced_records,
        }
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.config.fsync
    }

    /// Adopts `to` as the log's base cursor. Only legal while the log
    /// holds no records beyond its current base — how a migration
    /// destination starts its accounting at the source's cut cursor,
    /// so the restore-point checkpoints it writes later carry cursors
    /// in the same coordinate system as the shipped snapshot. Returns
    /// `false` (and changes nothing) if records exist on disk or `to`
    /// would move the cursor backwards.
    pub fn advance_base(&mut self, to: u64) -> bool {
        if self.records_logged != self.base_records || to < self.base_records {
            return false;
        }
        self.base_records = to;
        self.records_logged = to;
        self.synced_records = to;
        true
    }

    /// Appends since the last covering fsync (0 means every logged
    /// record is durable).
    pub fn unsynced_records(&self) -> u64 {
        self.records_logged - self.synced_records()
    }

    /// Bytes currently on disk across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// On-disk segments, oldest first (the last is open for appends).
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// The storage error that poisoned the log, if any. A poisoned log
    /// rejects every append with the same error and never acks.
    pub fn poisoned(&self) -> Option<&StorageError> {
        self.poisoned.as_ref()
    }

    /// Exact on-disk footprint of `record` (frame header + payload +
    /// CRC trailer), for budget projection before appending.
    pub fn framed_len(record: &WalRecord) -> u64 {
        // Data payload: tag(1) + sensor(2) + seq(8) + time(8) +
        // count(2) + 8 bytes per value; framing adds len(4) + crc(4).
        21 + 8 * record.values.len() as u64 + 8
    }

    fn poison(&mut self, op: VfsOp, e: &std::io::Error) -> WalError {
        let err = StorageError::new(op, &self.segment_path, e);
        self.poisoned = Some(err.clone());
        WalError::Storage(err)
    }

    /// Appends one record durably (per the fsync policy).
    ///
    /// # Errors
    ///
    /// [`WalError::Storage`] on write or fsync failure — the log is
    /// then poisoned: the data may or may not be durable, so nothing
    /// past this point may be acknowledged, and every later append
    /// fails with the same error.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if let Some(e) = &self.poisoned {
            return Err(WalError::Storage(e.clone()));
        }
        self.scratch.clear();
        encode_data_payload(
            record.sensor,
            record.seq,
            record.time,
            &record.values,
            &mut self.scratch,
        );
        let mut framed = Vec::with_capacity(self.scratch.len() + 8);
        frame_payload(&self.scratch, &mut framed);

        let active = self.active();
        if active.bytes > 0 && active.bytes + framed.len() as u64 > self.config.segment_max_bytes {
            self.roll_segment()?;
        }

        if let Err(e) = self.write_timed(&framed) {
            // The write may have torn: a prefix of the frame can be on
            // disk. Recovery's torn-tail truncation handles it; this
            // process must stop acking.
            return Err(self.poison(VfsOp::Append, &e));
        }
        let len = framed.len() as u64;
        let active = self.active_mut();
        active.bytes += len;
        active.records += 1;
        self.records_logged += 1;
        self.appended_this_process += 1;

        match self.config.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::Always => {
                if let Err(e) = self.fsync_timed() {
                    return Err(self.poison(VfsOp::Fsync, &e));
                }
                self.synced_records = self.records_logged;
            }
            FsyncPolicy::Batch(n) => {
                self.pending_sync += 1;
                if self.pending_sync >= n {
                    if let Err(e) = self.fsync_timed() {
                        return Err(self.poison(VfsOp::Fsync, &e));
                    }
                    self.pending_sync = 0;
                    self.synced_records = self.records_logged;
                }
            }
        }

        if self.config.crash_after == Some(self.appended_this_process) {
            // Chaos coordinate: die as if `kill -9`, mid-everything.
            std::process::abort();
        }
        Ok(())
    }

    /// Appends a batch of records as one contiguous extent — every
    /// record keeps its individual CRC frame (the on-disk format is
    /// unchanged, so recovery stays record-granular), but the extent
    /// reaches the file in a single write and the fsync policy is
    /// charged once per extent rather than once per record. This is
    /// the group-commit fast path: one fsync covers every record
    /// admitted in the flush interval.
    ///
    /// An extent never spans a segment roll, and the `crash_after`
    /// chaos coordinate still fires with exactly that many records
    /// appended — the extent is split at the coordinate so mid-batch
    /// aborts land where per-record appends would put them.
    ///
    /// # Errors
    ///
    /// [`WalError::Storage`] on write or fsync failure; the log is
    /// poisoned and records at or past the failed extent must never
    /// be acknowledged. Records of earlier extents in the same call
    /// are counted in [`Wal::records_logged`].
    pub fn append_many(&mut self, records: &[WalRecord]) -> Result<(), WalError> {
        if let Some(e) = &self.poisoned {
            return Err(WalError::Storage(e.clone()));
        }
        let mut extent: Vec<u8> = Vec::new();
        let mut idx = 0;
        while idx < records.len() {
            extent.clear();
            let mut take = 0usize;
            let base = self.active().bytes;
            // Records left before the chaos abort coordinate.
            let cap = self
                .config
                .crash_after
                .map(|at| at.saturating_sub(self.appended_this_process).max(1) as usize);
            while idx + take < records.len() {
                if cap.is_some_and(|c| take >= c) {
                    break;
                }
                let r = &records[idx + take];
                self.scratch.clear();
                encode_data_payload(r.sensor, r.seq, r.time, &r.values, &mut self.scratch);
                let framed = self.scratch.len() as u64 + 8;
                let filled = base + extent.len() as u64;
                if filled > 0 && filled + framed > self.config.segment_max_bytes {
                    break;
                }
                frame_payload(&self.scratch, &mut extent);
                take += 1;
            }
            if take == 0 {
                // The active segment is full: seal it, retry the record
                // against the fresh one.
                self.roll_segment()?;
                continue;
            }
            if let Err(e) = self.write_timed(&extent) {
                // The extent may have torn mid-record; recovery's
                // torn-tail truncation keeps the clean record prefix.
                return Err(self.poison(VfsOp::Append, &e));
            }
            let len = extent.len() as u64;
            let active = self.active_mut();
            active.bytes += len;
            active.records += take as u64;
            self.records_logged += take as u64;
            self.appended_this_process += take as u64;
            match self.config.fsync {
                FsyncPolicy::Never => {}
                FsyncPolicy::Always => {
                    if let Err(e) = self.fsync_timed() {
                        return Err(self.poison(VfsOp::Fsync, &e));
                    }
                    self.pending_sync = 0;
                    self.synced_records = self.records_logged;
                }
                FsyncPolicy::Batch(n) => {
                    self.pending_sync = self.pending_sync.saturating_add(take as u32);
                    if self.pending_sync >= n {
                        if let Err(e) = self.fsync_timed() {
                            return Err(self.poison(VfsOp::Fsync, &e));
                        }
                        self.pending_sync = 0;
                        self.synced_records = self.records_logged;
                    }
                }
            }
            if self
                .config
                .crash_after
                .is_some_and(|at| self.appended_this_process >= at)
            {
                // Chaos coordinate: die as if `kill -9`, mid-everything.
                std::process::abort();
            }
            idx += take;
        }
        Ok(())
    }

    /// Forces all buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// [`WalError::Storage`] on fsync failure (the log is poisoned).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(e) = &self.poisoned {
            return Err(WalError::Storage(e.clone()));
        }
        if let Err(e) = self.fsync_timed() {
            return Err(self.poison(VfsOp::Fsync, &e));
        }
        self.pending_sync = 0;
        self.synced_records = self.records_logged;
        Ok(())
    }

    fn active(&self) -> SegmentInfo {
        // sentinet-allow(expect-used): segments is non-empty from open to drop
        *self.segments.last().expect("active segment")
    }

    fn active_mut(&mut self) -> &mut SegmentInfo {
        // sentinet-allow(expect-used): segments is non-empty from open to drop
        self.segments.last_mut().expect("active segment")
    }

    /// `file.append` with wall time charged to the append stage.
    fn write_timed(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let start = std::time::Instant::now();
        let result = self.file.append(bytes);
        self.append_ns = self
            .append_ns
            .saturating_add(start.elapsed().as_nanos() as u64);
        result
    }

    /// `file.fsync` with wall time charged to the fsync stage.
    fn fsync_timed(&mut self) -> std::io::Result<()> {
        let start = std::time::Instant::now();
        let result = self.file.fsync();
        self.fsync_ns = self
            .fsync_ns
            .saturating_add(start.elapsed().as_nanos() as u64);
        result
    }

    /// Wall time spent inside write calls since open.
    pub fn append_ns(&self) -> u64 {
        self.append_ns
    }

    /// Wall time spent inside fsync calls since open.
    pub fn fsync_ns(&self) -> u64 {
        self.fsync_ns
    }

    /// Seals the active segment (fsyncing it) and opens the next one.
    /// Public so retention can seal a lone oversized segment, making
    /// it reclaimable by the next checkpoint.
    ///
    /// # Errors
    ///
    /// [`WalError::Storage`] on fsync/create failure (the log is
    /// poisoned).
    pub fn roll_segment(&mut self) -> Result<(), WalError> {
        if let Some(e) = &self.poisoned {
            return Err(WalError::Storage(e.clone()));
        }
        if let Err(e) = self.fsync_timed() {
            return Err(self.poison(VfsOp::Fsync, &e));
        }
        let next = self.active().index + 1;
        self.segment_path = self.config.dir.join(segment_name(next));
        let vfs = Arc::clone(&self.config.vfs);
        match vfs.create(&self.segment_path) {
            Ok(file) => self.file = file,
            Err(e) => return Err(self.poison(VfsOp::Create, &e)),
        }
        self.segments.push(SegmentInfo {
            index: next,
            bytes: 0,
            records: 0,
        });
        self.pending_sync = 0;
        // The seal fsync covered the old segment; every earlier
        // segment was covered by its own seal.
        self.synced_records = self.records_logged;
        Ok(())
    }

    /// Plans which sealed segments a durable checkpoint at `cursor`
    /// would allow deleting, oldest first, until the log fits in
    /// `budget` bytes (the active segment is never deleted, and no
    /// segment holding records at or above the cursor ever is). The
    /// plan's base coordinates must be committed in the checkpoint
    /// *before* [`Wal::execute_reclaim`] runs, so a crash between the
    /// two leaves only deletable leftovers.
    pub fn plan_reclaim(&self, cursor: u64, budget: u64) -> ReclaimPlan {
        let mut plan = ReclaimPlan {
            delete: Vec::new(),
            base_segment: self.segments[0].index,
            base_records: self.base_records,
        };
        let mut total = self.total_bytes();
        let mut first_record = self.base_records;
        for seg in &self.segments[..self.segments.len() - 1] {
            if total <= budget {
                break;
            }
            let end = first_record + seg.records;
            if end > cursor {
                break;
            }
            plan.delete.push(seg.index);
            total -= seg.bytes;
            first_record = end;
            plan.base_segment = seg.index + 1;
            plan.base_records = end;
        }
        plan
    }

    /// Deletes the planned segments. Call only after the checkpoint
    /// carrying the plan's base coordinates has rename-committed: the
    /// log's bookkeeping adopts the new base unconditionally (the
    /// logical truncation is already durable), and a file that fails
    /// to delete is reported but becomes a leftover the next
    /// [`Wal::open`] removes.
    ///
    /// # Errors
    ///
    /// The first deletion failure, as a typed [`StorageError`] (the
    /// log is *not* poisoned — appends remain safe).
    pub fn execute_reclaim(&mut self, plan: &ReclaimPlan) -> Result<(), StorageError> {
        self.segments.retain(|s| !plan.delete.contains(&s.index));
        self.base_records = plan.base_records;
        let vfs = Arc::clone(&self.config.vfs);
        let mut first_err = None;
        for &idx in &plan.delete {
            let path = self.config.dir.join(segment_name(idx));
            if let Err(e) = vfs.remove_file(&path) {
                first_err.get_or_insert(StorageError::new(VfsOp::Remove, &path, &e));
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, FaultSpec, FaultyVfs, StorageFault};
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinet-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(sensor: u16, seq: u64, time: u64, v: f64) -> WalRecord {
        WalRecord {
            sensor: SensorId(sensor),
            seq,
            time,
            values: vec![v, v + 1.0],
        }
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = tmpdir("roundtrip");
        let originals: Vec<WalRecord> = (0..50)
            .map(|i| rec(1, i, 300 * (i + 1), i as f64))
            .collect();
        {
            let (mut wal, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
            assert!(recovered.is_empty());
            for r in &originals {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.total_bytes(), 50 * Wal::framed_len(&originals[0]));
        }
        let (wal, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
        assert_eq!(recovered, originals);
        assert_eq!(wal.records_logged(), 50);
        assert_eq!(wal.base_records(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_many_matches_per_record_appends_byte_for_byte() {
        let records: Vec<WalRecord> = (0..30)
            .map(|i| rec((i % 3) as u16, i, 300 * (i + 1), i as f64))
            .collect();
        let dir_one = tmpdir("many-one");
        let dir_batch = tmpdir("many-batch");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir_one), None).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir_batch), None).unwrap();
            wal.append_many(&records).unwrap();
            assert_eq!(wal.records_logged(), 30);
        }
        let a = fs::read(dir_one.join(segment_name(1))).unwrap();
        let b = fs::read(dir_batch.join(segment_name(1))).unwrap();
        assert_eq!(a, b, "batched extent changed the on-disk bytes");
        fs::remove_dir_all(&dir_one).unwrap();
        fs::remove_dir_all(&dir_batch).unwrap();
    }

    #[test]
    fn append_many_rolls_segments_like_per_record_appends() {
        let records: Vec<WalRecord> = (0..40).map(|i| rec(2, i, 300 * (i + 1), 0.5)).collect();
        let dir = tmpdir("many-roll");
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 64;
        {
            let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
            wal.append_many(&records).unwrap();
            assert!(wal.segments().len() > 1);
        }
        let (_, recovered) = Wal::open(config, None).unwrap();
        assert_eq!(recovered, records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synced_watermark_lags_until_the_covering_fsync() {
        let dir = tmpdir("synced");
        let mut config = WalConfig::new(&dir);
        config.fsync = FsyncPolicy::Batch(8);
        let (mut wal, _) = Wal::open(config, None).unwrap();
        wal.append_many(
            &(0..5)
                .map(|i| rec(1, i, 300 * (i + 1), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(wal.records_logged(), 5);
        assert_eq!(wal.synced_records(), 0, "no fsync has covered the extent");
        assert_eq!(wal.unsynced_records(), 5);
        // The next extent crosses the batch threshold: one fsync
        // covers both extents.
        wal.append_many(
            &(5..9)
                .map(|i| rec(1, i, 300 * (i + 1), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(wal.synced_records(), 9);
        // An explicit sync advances the watermark to the cursor.
        wal.append(&rec(1, 9, 3000, 1.0)).unwrap();
        assert_eq!(wal.synced_records(), 9);
        wal.sync().unwrap();
        assert_eq!(wal.synced_records(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn never_policy_watermark_tracks_the_cursor() {
        let dir = tmpdir("synced-never");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir), None).unwrap();
        wal.append_many(
            &(0..4)
                .map(|i| rec(1, i, 300 * (i + 1), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // `fsync: never` opts out of durability; the protocol treats
        // every logged record as ackable.
        assert_eq!(wal.synced_records(), 4);
        assert_eq!(wal.unsynced_records(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_extent_append_poisons_the_log() {
        let dir = tmpdir("many-poison");
        let mut config = WalConfig::new(&dir);
        config.fsync = FsyncPolicy::Always;
        config.vfs = Arc::new(FaultyVfs::new(FaultPlan::new().with_fault(FaultSpec {
            path: ".seg".into(),
            op: VfsOp::Fsync,
            nth: 1,
            kind: StorageFault::FsyncFail,
            count: 1,
        })));
        let (mut wal, _) = Wal::open(config, None).unwrap();
        let records: Vec<WalRecord> = (0..3).map(|i| rec(1, i, 300 * (i + 1), 1.0)).collect();
        let err = wal.append_many(&records).unwrap_err();
        assert!(matches!(err, WalError::Storage(_)), "{err:?}");
        assert!(wal.poisoned().is_some());
        assert_eq!(wal.synced_records(), 0, "a failed fsync covers nothing");
        assert!(matches!(
            wal.append_many(&records),
            Err(WalError::Storage(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_recover_in_order() {
        let dir = tmpdir("roll");
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 64; // force frequent rolls
        let originals: Vec<WalRecord> = (0..40).map(|i| rec(2, i, 300 * (i + 1), 0.5)).collect();
        {
            let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
            for r in &originals {
                wal.append(r).unwrap();
            }
            assert!(wal.segments().len() > 1);
        }
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs > 1, "expected multiple segments, got {segs}");
        let (_, recovered) = Wal::open(config, None).unwrap();
        assert_eq!(recovered, originals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_clean_prefix() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir), None).unwrap();
            for i in 0..10 {
                wal.append(&rec(1, i, 300 * (i + 1), 1.0)).unwrap();
            }
        }
        let seg = dir.join(segment_name(1));
        let len = fs::metadata(&seg).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap(); // tear mid-record
        drop(f);
        let (_, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
        assert_eq!(recovered.len(), 9);
        // Appending after truncation continues cleanly.
        let (mut wal, _) = Wal::open(WalConfig::new(&dir), None).unwrap();
        wal.append(&rec(1, 9, 3000, 1.0)).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
        assert_eq!(recovered.len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_at_exact_roll_boundary_recovers() {
        let dir = tmpdir("torn-boundary");
        let frame = Wal::framed_len(&rec(1, 0, 300, 1.0));
        let mut config = WalConfig::new(&dir);
        // Exactly two frames per segment: record 5 opens segment 3 at
        // byte 0, right on the roll boundary.
        config.segment_max_bytes = 2 * frame;
        let originals: Vec<WalRecord> =
            (0..5).map(|i| rec(1, i, 300 * (i + 1), i as f64)).collect();
        {
            let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
            for r in &originals {
                wal.append(r).unwrap();
            }
            assert_eq!(
                wal.segments()
                    .iter()
                    .map(|s| (s.index, s.records))
                    .collect::<Vec<_>>(),
                vec![(1, 2), (2, 2), (3, 1)]
            );
        }
        assert_eq!(
            fs::metadata(dir.join(segment_name(1))).unwrap().len(),
            2 * frame,
            "sealed segment filled to the exact boundary"
        );
        // Tear the frame that straddles the boundary: segment 3's only
        // record loses its tail.
        let seg3 = dir.join(segment_name(3));
        let f = fs::OpenOptions::new().write(true).open(&seg3).unwrap();
        f.set_len(frame - 5).unwrap();
        drop(f);
        let (wal, recovered) = Wal::open(config.clone(), None).unwrap();
        assert_eq!(recovered, originals[..4], "boundary prefix intact");
        assert_eq!(fs::metadata(&seg3).unwrap().len(), 0, "tail truncated");
        drop(wal);
        // The re-delivered record 5 lands back in segment 3 and the
        // log recovers to the original contents.
        let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
        wal.append(&originals[4]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(config, None).unwrap();
        assert_eq!(recovered, originals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_earlier_segment_is_a_hard_error() {
        let dir = tmpdir("corrupt");
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 64;
        {
            let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
            for i in 0..40 {
                wal.append(&rec(1, i, 300 * (i + 1), 1.0)).unwrap();
            }
        }
        // Flip a byte in the first segment's first record payload.
        let seg = dir.join(segment_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        bytes[6] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Wal::open(config, None),
            Err(WalError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_the_log() {
        let dir = tmpdir("fsyncgate");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: segment_name(1),
            op: crate::vfs::VfsOp::Fsync,
            nth: 3,
            kind: StorageFault::FsyncFail,
            count: 1,
        });
        let mut config = WalConfig::new(&dir);
        config.fsync = FsyncPolicy::Always;
        config.vfs = Arc::new(FaultyVfs::new(plan));
        let (mut wal, _) = Wal::open(config, None).unwrap();
        wal.append(&rec(1, 0, 300, 1.0)).unwrap();
        wal.append(&rec(1, 1, 600, 2.0)).unwrap();
        let err = wal.append(&rec(1, 2, 900, 3.0)).expect_err("fsync fault");
        assert!(matches!(&err, WalError::Storage(e) if e.op == crate::vfs::VfsOp::Fsync));
        assert!(wal.poisoned().is_some());
        // Fail-stop: the fault was transient (count=1) but the log
        // stays poisoned — no append, sync, or roll ever succeeds.
        assert!(matches!(
            wal.append(&rec(1, 3, 1200, 4.0)),
            Err(WalError::Storage(_))
        ));
        assert!(matches!(wal.sync(), Err(WalError::Storage(_))));
        assert!(matches!(wal.roll_segment(), Err(WalError::Storage(_))));
        drop(wal);
        // Reopen with clean storage: the two acked records are a
        // prefix of recovery. The third append's bytes reached the
        // file (only its flush promise broke) so it survives too —
        // durable-but-unacked, exactly what the retry protocol covers.
        let (_, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
        assert_eq!(recovered.len(), 3, "acked prefix plus the unacked tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_poisons_and_recovery_truncates() {
        let dir = tmpdir("torn-append");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: segment_name(1),
            op: crate::vfs::VfsOp::Append,
            nth: 3,
            kind: StorageFault::TornWrite { bytes: 7 },
            count: 1,
        });
        let mut config = WalConfig::new(&dir);
        config.vfs = Arc::new(FaultyVfs::new(plan));
        let (mut wal, _) = Wal::open(config, None).unwrap();
        wal.append(&rec(1, 0, 300, 1.0)).unwrap();
        wal.append(&rec(1, 1, 600, 2.0)).unwrap();
        assert!(matches!(
            wal.append(&rec(1, 2, 900, 3.0)),
            Err(WalError::Storage(_))
        ));
        drop(wal);
        let (_, recovered) = Wal::open(WalConfig::new(&dir), None).unwrap();
        assert_eq!(recovered.len(), 2, "torn frame truncated away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reclaim_deletes_only_sealed_segments_below_cursor() {
        let dir = tmpdir("reclaim");
        let frame = Wal::framed_len(&rec(1, 0, 300, 1.0));
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 2 * frame;
        let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
        for i in 0..7 {
            wal.append(&rec(1, i, 300 * (i + 1), i as f64)).unwrap();
        }
        // Segments: 1:[0,1] 2:[2,3] 3:[4,5] 4:[6].
        assert_eq!(wal.segments().len(), 4);

        // Cursor at 3 only frees segment 1, whatever the budget.
        let plan = wal.plan_reclaim(3, 0);
        assert_eq!(plan.delete, vec![1]);
        assert_eq!((plan.base_segment, plan.base_records), (2, 2));

        // Cursor at 7 with a two-segment budget frees 1 and 2; the
        // active segment is untouchable even with budget 0.
        let plan = wal.plan_reclaim(7, 3 * frame);
        assert_eq!(plan.delete, vec![1, 2]);
        let all = wal.plan_reclaim(7, 0);
        assert_eq!(all.delete, vec![1, 2, 3]);
        assert_eq!((all.base_segment, all.base_records), (4, 6));

        wal.execute_reclaim(&plan).unwrap();
        assert_eq!(wal.base_records(), 4);
        assert_eq!(wal.total_bytes(), 3 * frame);
        assert!(!dir.join(segment_name(1)).exists());
        assert!(!dir.join(segment_name(2)).exists());

        // Reopen against the committed base: tail records only,
        // absolute cursor preserved.
        drop(wal);
        let (wal, recovered) = Wal::open(config.clone(), Some((3, 4))).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0].seq, 4);
        assert_eq!(wal.records_logged(), 7);
        assert_eq!(wal.base_records(), 4);

        // Opening the retained log without its checkpoint is loud.
        drop(wal);
        assert!(matches!(
            Wal::open(config, None),
            Err(WalError::MissingPrefix {
                first_segment: 3,
                expected: 1
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_deletes_leftover_segments_below_base() {
        let dir = tmpdir("leftover");
        let frame = Wal::framed_len(&rec(1, 0, 300, 1.0));
        let mut config = WalConfig::new(&dir);
        config.segment_max_bytes = 2 * frame;
        let (mut wal, _) = Wal::open(config.clone(), None).unwrap();
        for i in 0..5 {
            wal.append(&rec(1, i, 300 * (i + 1), i as f64)).unwrap();
        }
        drop(wal);
        // Simulate a crash between checkpoint commit (base = segment
        // 2, record 2) and segment deletion: segment 1 is still there.
        assert!(dir.join(segment_name(1)).exists());
        let (wal, recovered) = Wal::open(config, Some((2, 2))).unwrap();
        assert!(!dir.join(segment_name(1)).exists(), "leftover deleted");
        assert_eq!(recovered.len(), 3);
        assert_eq!(wal.records_logged(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_parse() {
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch:8"), Ok(FsyncPolicy::Batch(8)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
