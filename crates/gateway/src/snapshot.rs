//! Restore-point snapshots of the whole collector.
//!
//! A v2 gateway checkpoint carries a [`CollectorSnapshot`] — the
//! complete replay-deterministic state of the collector at a WAL
//! cursor: the detection pipeline (via
//! [`sentinet_core::checkpoint::encode_pipeline`]), the reorder
//! buffer, the sanitizer, per-sensor sequence dedup state, and the
//! ingest/liveness accounting. Restoring it yields a collector that
//! continues bit-identically, which is what lets checkpoint-gated
//! retention delete the WAL prefix below the cursor: replay of the
//! remaining tail from the snapshot equals replay of the full log from
//! genesis, byte for byte.
//!
//! Deliberately *excluded* is everything that is not a function of the
//! admitted record sequence — retransmission counts
//! (`seq_duplicates`), the optional released-trace log, and the
//! storage-fault counters. Those reset on restart (the existing
//! restart tests pin this: duplicate counts differ across a restart,
//! reports otherwise match bit-exactly).
//!
//! The codec follows the workspace convention: hand-rolled line-based
//! text, floats as IEEE-754 bit patterns (`{:016x}`), so a round-trip
//! is bit-exact and encoding a live collector equals encoding its
//! restored twin.

use crate::reorder::{ReorderSnapshot, ReorderStats};
use sentinet_core::checkpoint::{decode_pipeline, encode_pipeline};
use sentinet_core::{PipelineSnapshot, WindowerSnapshot};
use sentinet_sim::{IngestError, SanitizerSnapshot, SensorId, Timestamp};

const MAGIC: &str = "sentinet-collector v1";

/// Plain-data image of a `Collector` at a WAL cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectorSnapshot {
    /// The detection pipeline.
    pub pipeline: PipelineSnapshot,
    /// The reorder buffer (contents, watermark, drop accounting).
    pub reorder: ReorderSnapshot,
    /// The sanitizer's per-sensor history.
    pub sanitizer: SanitizerSnapshot,
    /// Per-sensor dedup state: `(sensor, next expected seq, seen seqs
    /// above next)`.
    pub seqs: Vec<(SensorId, u64, Vec<u64>)>,
    /// Records accepted by the sanitizer so far.
    pub accepted: usize,
    /// Sanitizer rejections so far, in input order.
    pub rejected: Vec<IngestError>,
    /// Per-sensor last admitted timestamp.
    pub last_heard: Vec<(SensorId, Timestamp)>,
    /// Sensors currently declared silent.
    pub silent: Vec<SensorId>,
    /// Silence episodes declared so far.
    pub episodes: usize,
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn put_pairs(out: &mut String, tag: &str, pairs: &[(SensorId, u64)]) {
    out.push_str(tag);
    if pairs.is_empty() {
        out.push_str(" -");
    }
    for (s, t) in pairs {
        out.push_str(&format!(" {}:{t}", s.0));
    }
    out.push('\n');
}

fn put_ingest_error(out: &mut String, e: &IngestError) {
    match e {
        IngestError::EmptyReading { time, sensor } => {
            out.push_str(&format!("rej empty {time} {}\n", sensor.0));
        }
        IngestError::NonFinite {
            time,
            sensor,
            index,
            value,
        } => {
            out.push_str(&format!(
                "rej nonfinite {time} {} {index} {}\n",
                sensor.0,
                hex(*value)
            ));
        }
        IngestError::DuplicateTimestamp { time, sensor } => {
            out.push_str(&format!("rej dup {time} {}\n", sensor.0));
        }
        IngestError::OutOfOrder {
            time,
            sensor,
            latest,
        } => {
            out.push_str(&format!("rej ooo {time} {} {latest}\n", sensor.0));
        }
        IngestError::DimensionMismatch {
            time,
            sensor,
            expected,
            actual,
        } => {
            out.push_str(&format!(
                "rej dim {time} {} {expected} {actual}\n",
                sensor.0
            ));
        }
    }
}

/// Encodes a collector snapshot as durable checkpoint text.
pub fn encode_collector(snap: &CollectorSnapshot) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    match snap.sanitizer.dims {
        Some(d) => out.push_str(&format!("sanitizer {d}\n")),
        None => out.push_str("sanitizer -\n"),
    }
    put_pairs(&mut out, "slatest", &snap.sanitizer.latest);
    let ReorderStats {
        duplicates,
        late,
        shed,
    } = snap.reorder.stats;
    match snap.reorder.watermark {
        Some(w) => out.push_str(&format!("reorder {w} {duplicates} {late} {shed}\n")),
        None => out.push_str(&format!("reorder - {duplicates} {late} {shed}\n")),
    }
    for (time, sensor, values) in &snap.reorder.buffer {
        out.push_str(&format!("rbuf {time} {}", sensor.0));
        for v in values {
            out.push(' ');
            out.push_str(&hex(*v));
        }
        out.push('\n');
    }
    put_pairs(&mut out, "rrel", &snap.reorder.last_released);
    for (sensor, next, above) in &snap.seqs {
        let above = if above.is_empty() {
            "-".to_string()
        } else {
            above
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!("seq {} {next} {above}\n", sensor.0));
    }
    out.push_str(&format!("accepted {}\n", snap.accepted));
    for e in &snap.rejected {
        put_ingest_error(&mut out, e);
    }
    put_pairs(&mut out, "heard", &snap.last_heard);
    out.push_str("silent");
    if snap.silent.is_empty() {
        out.push_str(" -");
    }
    for s in &snap.silent {
        out.push_str(&format!(" {}", s.0));
    }
    out.push('\n');
    out.push_str(&format!("episodes {}\n", snap.episodes));
    out.push_str("pipeline\n");
    out.push_str(&encode_pipeline(&snap.pipeline));
    out
}

/// Splits `snap` into the state for sensors inside the half-open
/// range `[range.start, range.end)` and the complement, in that
/// order. This is the migration cut: the *inside* half ships to the
/// destination collector, the *outside* half is what the source keeps
/// owning.
///
/// Per-sensor state (pipeline runtimes, windower readings, sanitizer
/// history, reorder buffer and release marks, dedup seqs, liveness)
/// partitions exactly. Whole-collector state splits by two rules:
///
/// - *Lineage* — the global model, the in-progress window coordinates,
///   the reorder watermark and the sanitizer dimensionality are
///   duplicated into both halves: the migrated sensors keep being
///   classified under the model they were trained with.
/// - *Accounting* — `accepted`, `episodes`, the rejection log and the
///   reorder drop counters stay with the outside half; the inside
///   half starts a fresh ledger, exactly like any newly opened
///   collector.
///
/// [`merge_snapshot`] inverts the split bit-exactly (pinned by the
/// sub-range filter proptests), which is what the migration engine's
/// cut-coverage check leans on: a cut that cannot be re-merged into
/// the original snapshot byte-for-byte is refused before anything
/// ships.
pub fn split_snapshot(
    snap: &CollectorSnapshot,
    range: std::ops::Range<u16>,
) -> (CollectorSnapshot, CollectorSnapshot) {
    let inside = |sensor: SensorId| range.contains(&sensor.0);
    fn part<T: Clone>(items: &[T], is_inside: impl Fn(&T) -> bool) -> (Vec<T>, Vec<T>) {
        items.iter().cloned().partition(is_inside)
    }
    let (p_in, p_out) = part(&snap.pipeline.sensors, |(s, _)| inside(*s));
    let (w_in, w_out) = part(&snap.pipeline.windower.readings, |(s, _, _)| inside(*s));
    let (sl_in, sl_out) = part(&snap.sanitizer.latest, |(s, _)| inside(*s));
    let (rb_in, rb_out) = part(&snap.reorder.buffer, |(_, s, _)| inside(*s));
    let (rr_in, rr_out) = part(&snap.reorder.last_released, |(s, _)| inside(*s));
    let (sq_in, sq_out) = part(&snap.seqs, |(s, _, _)| inside(*s));
    let (lh_in, lh_out) = part(&snap.last_heard, |(s, _)| inside(*s));
    let (si_in, si_out) = part(&snap.silent, |s| inside(*s));
    let half = |sensors, readings, latest, buffer, released, seqs, heard, silent, keep_ledger| {
        CollectorSnapshot {
            pipeline: PipelineSnapshot {
                global: snap.pipeline.global.clone(),
                windower: WindowerSnapshot {
                    started: snap.pipeline.windower.started,
                    index: snap.pipeline.windower.index,
                    start: snap.pipeline.windower.start,
                    readings,
                },
                sensors,
            },
            reorder: ReorderSnapshot {
                buffer,
                last_released: released,
                watermark: snap.reorder.watermark,
                stats: if keep_ledger {
                    snap.reorder.stats
                } else {
                    ReorderStats::default()
                },
            },
            sanitizer: SanitizerSnapshot {
                latest,
                dims: snap.sanitizer.dims,
            },
            seqs,
            accepted: if keep_ledger { snap.accepted } else { 0 },
            rejected: if keep_ledger {
                snap.rejected.clone()
            } else {
                Vec::new()
            },
            last_heard: heard,
            silent,
            episodes: if keep_ledger { snap.episodes } else { 0 },
        }
    };
    (
        half(p_in, w_in, sl_in, rb_in, rr_in, sq_in, lh_in, si_in, false),
        half(
            p_out, w_out, sl_out, rb_out, rr_out, sq_out, lh_out, si_out, true,
        ),
    )
}

/// Merges two [`split_snapshot`] halves back into one snapshot — the
/// exact inverse of the split. Per-sensor lists merge by ascending
/// sensor id (the canonical order every collector structure keeps),
/// the reorder buffer by its `(time, sensor)` release order; lineage
/// fields come from `outside`, and the accounting ledgers add.
pub fn merge_snapshot(
    outside: &CollectorSnapshot,
    inside: &CollectorSnapshot,
) -> CollectorSnapshot {
    fn merge_by<T: Clone, K: Ord>(a: &[T], b: &[T], key: impl Fn(&T) -> K) -> Vec<T> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if key(&a[i]) <= key(&b[j]) {
                out.push(a[i].clone());
                i += 1;
            } else {
                out.push(b[j].clone());
                j += 1;
            }
        }
        out.extend(a[i..].iter().cloned());
        out.extend(b[j..].iter().cloned());
        out
    }
    let (o, n) = (outside, inside);
    CollectorSnapshot {
        pipeline: PipelineSnapshot {
            global: o.pipeline.global.clone(),
            windower: WindowerSnapshot {
                started: o.pipeline.windower.started,
                index: o.pipeline.windower.index,
                start: o.pipeline.windower.start,
                readings: merge_by(
                    &o.pipeline.windower.readings,
                    &n.pipeline.windower.readings,
                    |(s, _, _)| *s,
                ),
            },
            sensors: merge_by(&o.pipeline.sensors, &n.pipeline.sensors, |(s, _)| *s),
        },
        reorder: ReorderSnapshot {
            buffer: merge_by(&o.reorder.buffer, &n.reorder.buffer, |(t, s, _)| (*t, *s)),
            last_released: merge_by(
                &o.reorder.last_released,
                &n.reorder.last_released,
                |(s, _)| *s,
            ),
            watermark: o.reorder.watermark,
            stats: ReorderStats {
                duplicates: o.reorder.stats.duplicates + n.reorder.stats.duplicates,
                late: o.reorder.stats.late + n.reorder.stats.late,
                shed: o.reorder.stats.shed + n.reorder.stats.shed,
            },
        },
        sanitizer: SanitizerSnapshot {
            latest: merge_by(&o.sanitizer.latest, &n.sanitizer.latest, |(s, _)| *s),
            dims: o.sanitizer.dims,
        },
        seqs: merge_by(&o.seqs, &n.seqs, |(s, _, _)| *s),
        accepted: o.accepted + n.accepted,
        rejected: o
            .rejected
            .iter()
            .chain(n.rejected.iter())
            .cloned()
            .collect(),
        last_heard: merge_by(&o.last_heard, &n.last_heard, |(s, _)| *s),
        silent: merge_by(&o.silent, &n.silent, |s| *s),
        episodes: o.episodes + n.episodes,
    }
}

/// Line cursor over the head section, with single-line pushback for
/// the variable-length groups.
struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let line = self.lines.get(self.pos).copied();
        if line.is_some() {
            self.pos += 1;
        }
        line
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T, String> {
        Err(format!(
            "collector snapshot line {}: {}",
            self.pos,
            reason.into()
        ))
    }

    fn num<T: std::str::FromStr>(&self, s: &str) -> Result<T, String> {
        s.parse()
            .map_err(|_| format!("collector snapshot line {}: bad number `{s}`", self.pos))
    }

    fn hexf(&self, s: &str) -> Result<f64, String> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("collector snapshot line {}: bad hex float `{s}`", self.pos))
    }

    fn pairs(&mut self, tag: &str) -> Result<Vec<(SensorId, u64)>, String> {
        let Some(rest) = self.next().and_then(|l| l.strip_prefix(tag)) else {
            return self.fail(format!("expected {tag} line"));
        };
        let mut out = Vec::new();
        for item in rest.split_whitespace() {
            if item == "-" {
                continue;
            }
            let Some((s, t)) = item.split_once(':') else {
                return self.fail(format!("bad pair `{item}`"));
            };
            out.push((SensorId(self.num(s)?), self.num(t)?));
        }
        Ok(out)
    }

    /// Consumes consecutive lines starting with `prefix`.
    fn group(&mut self, prefix: &str) -> Vec<&'a str> {
        let mut rows = Vec::new();
        while let Some(line) = self.lines.get(self.pos) {
            let Some(rest) = line.strip_prefix(prefix) else {
                break;
            };
            self.pos += 1;
            rows.push(rest);
        }
        rows
    }
}

fn parse_ingest_error(cur: &Cursor<'_>, rest: &str) -> Result<IngestError, String> {
    let parts: Vec<&str> = rest.split(' ').collect();
    let arity_err = || format!("collector snapshot line {}: bad rej arity", cur.pos);
    match parts.first().copied() {
        Some("empty") if parts.len() == 3 => Ok(IngestError::EmptyReading {
            time: cur.num(parts[1])?,
            sensor: SensorId(cur.num(parts[2])?),
        }),
        Some("nonfinite") if parts.len() == 5 => Ok(IngestError::NonFinite {
            time: cur.num(parts[1])?,
            sensor: SensorId(cur.num(parts[2])?),
            index: cur.num(parts[3])?,
            value: cur.hexf(parts[4])?,
        }),
        Some("dup") if parts.len() == 3 => Ok(IngestError::DuplicateTimestamp {
            time: cur.num(parts[1])?,
            sensor: SensorId(cur.num(parts[2])?),
        }),
        Some("ooo") if parts.len() == 4 => Ok(IngestError::OutOfOrder {
            time: cur.num(parts[1])?,
            sensor: SensorId(cur.num(parts[2])?),
            latest: cur.num(parts[3])?,
        }),
        Some("dim") if parts.len() == 5 => Ok(IngestError::DimensionMismatch {
            time: cur.num(parts[1])?,
            sensor: SensorId(cur.num(parts[2])?),
            expected: cur.num(parts[3])?,
            actual: cur.num(parts[4])?,
        }),
        Some(other) if !matches!(other, "empty" | "nonfinite" | "dup" | "ooo" | "dim") => {
            Err(format!(
                "collector snapshot line {}: unknown rejection kind `{other}`",
                cur.pos
            ))
        }
        _ => Err(arity_err()),
    }
}

/// Decodes checkpoint text produced by [`encode_collector`].
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn decode_collector(text: &str) -> Result<CollectorSnapshot, String> {
    let Some((head, pipeline_text)) = text.split_once("\npipeline\n") else {
        return Err("collector snapshot: missing pipeline section".into());
    };
    let mut cur = Cursor {
        lines: head.lines().collect(),
        pos: 0,
    };
    match cur.next() {
        Some(MAGIC) => {}
        Some(other) => return cur.fail(format!("bad magic `{other}`")),
        None => return cur.fail("empty snapshot"),
    }
    let dims = match cur.next().and_then(|l| l.strip_prefix("sanitizer ")) {
        Some("-") => None,
        Some(d) => Some(cur.num(d)?),
        None => return cur.fail("expected sanitizer line"),
    };
    let latest = cur.pairs("slatest")?;
    let Some(rest) = cur.next().and_then(|l| l.strip_prefix("reorder ")) else {
        return cur.fail("expected reorder line");
    };
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 4 {
        return cur.fail("reorder needs `watermark duplicates late shed`");
    }
    let watermark = if parts[0] == "-" {
        None
    } else {
        Some(cur.num(parts[0])?)
    };
    let stats = ReorderStats {
        duplicates: cur.num(parts[1])?,
        late: cur.num(parts[2])?,
        shed: cur.num(parts[3])?,
    };
    let mut buffer = Vec::new();
    for row in cur.group("rbuf ") {
        let mut it = row.split(' ');
        let (Some(t), Some(s)) = (it.next(), it.next()) else {
            return cur.fail("rbuf needs `time sensor values…`");
        };
        let values: Vec<f64> = it.map(|v| cur.hexf(v)).collect::<Result<_, _>>()?;
        buffer.push((cur.num(t)?, SensorId(cur.num(s)?), values));
    }
    let last_released = cur.pairs("rrel")?;
    let mut seqs = Vec::new();
    for row in cur.group("seq ") {
        let parts: Vec<&str> = row.split(' ').collect();
        if parts.len() != 3 {
            return cur.fail("seq needs `sensor next above`");
        }
        let above = if parts[2] == "-" {
            Vec::new()
        } else {
            parts[2]
                .split(',')
                .map(|n| cur.num(n))
                .collect::<Result<_, _>>()?
        };
        seqs.push((SensorId(cur.num(parts[0])?), cur.num(parts[1])?, above));
    }
    let accepted = match cur.next().and_then(|l| l.strip_prefix("accepted ")) {
        Some(n) => cur.num(n)?,
        None => return cur.fail("expected accepted line"),
    };
    let mut rejected = Vec::new();
    for row in cur.group("rej ") {
        rejected.push(parse_ingest_error(&cur, row)?);
    }
    let last_heard = cur.pairs("heard")?;
    let Some(rest) = cur.next().and_then(|l| l.strip_prefix("silent")) else {
        return cur.fail("expected silent line");
    };
    let mut silent = Vec::new();
    for item in rest.split_whitespace() {
        if item == "-" {
            continue;
        }
        silent.push(SensorId(cur.num(item)?));
    }
    let episodes = match cur.next().and_then(|l| l.strip_prefix("episodes ")) {
        Some(n) => cur.num(n)?,
        None => return cur.fail("expected episodes line"),
    };
    if let Some(extra) = cur.next() {
        return cur.fail(format!("unexpected trailing line `{extra}`"));
    }
    let pipeline = decode_pipeline(pipeline_text).map_err(|e| e.to_string())?;
    Ok(CollectorSnapshot {
        pipeline,
        reorder: ReorderSnapshot {
            buffer,
            last_released,
            watermark,
            stats,
        },
        sanitizer: SanitizerSnapshot { latest, dims },
        seqs,
        accepted,
        rejected,
        last_heard,
        silent,
        episodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinet_core::{Pipeline, PipelineConfig};

    fn sample() -> CollectorSnapshot {
        let mut pipeline = Pipeline::new(PipelineConfig::default(), 300);
        for i in 0..30u64 {
            for s in 0..3u16 {
                let v = 20.0 + (i % 5) as f64 + f64::from(s);
                pipeline.push_values(300 * (i + 1), SensorId(s), &[v, v + 30.0]);
            }
        }
        CollectorSnapshot {
            pipeline: pipeline.snapshot(),
            reorder: ReorderSnapshot {
                buffer: vec![(9300, SensorId(1), vec![24.5, 54.5])],
                last_released: vec![(SensorId(0), 9000), (SensorId(1), 9000)],
                watermark: Some(8700),
                stats: ReorderStats {
                    duplicates: 2,
                    late: 1,
                    shed: 0,
                },
            },
            sanitizer: SanitizerSnapshot {
                latest: vec![(SensorId(0), 9000), (SensorId(1), 9000)],
                dims: Some(2),
            },
            seqs: vec![(SensorId(0), 31, vec![]), (SensorId(1), 30, vec![32, 33])],
            accepted: 88,
            rejected: vec![
                IngestError::EmptyReading {
                    time: 600,
                    sensor: SensorId(2),
                },
                IngestError::NonFinite {
                    time: 900,
                    sensor: SensorId(0),
                    index: 1,
                    value: f64::NEG_INFINITY,
                },
                IngestError::DuplicateTimestamp {
                    time: 1200,
                    sensor: SensorId(1),
                },
                IngestError::OutOfOrder {
                    time: 300,
                    sensor: SensorId(1),
                    latest: 1200,
                },
                IngestError::DimensionMismatch {
                    time: 1500,
                    sensor: SensorId(2),
                    expected: 2,
                    actual: 3,
                },
            ],
            last_heard: vec![(SensorId(0), 9000), (SensorId(1), 9300)],
            silent: vec![SensorId(2)],
            episodes: 1,
        }
    }

    #[test]
    fn collector_codec_round_trips_bit_exactly() {
        let snap = sample();
        let text = encode_collector(&snap);
        let decoded = decode_collector(&text).expect("round trip");
        assert_eq!(decoded, snap);
        assert_eq!(encode_collector(&decoded), text);
    }

    #[test]
    fn collector_codec_round_trips_empty_state() {
        let snap = CollectorSnapshot {
            pipeline: Pipeline::new(PipelineConfig::default(), 300).snapshot(),
            reorder: ReorderSnapshot::default(),
            sanitizer: SanitizerSnapshot::default(),
            seqs: Vec::new(),
            accepted: 0,
            rejected: Vec::new(),
            last_heard: Vec::new(),
            silent: Vec::new(),
            episodes: 0,
        };
        let decoded = decode_collector(&encode_collector(&snap)).expect("round trip");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn collector_decode_rejects_malformed() {
        let text = encode_collector(&sample());
        assert!(decode_collector("").is_err());
        assert!(decode_collector("nonsense\npipeline\n").is_err());
        assert!(decode_collector(&text.replace("\npipeline\n", "\n")).is_err());
        assert!(decode_collector(&text.replace("rej dup", "rej dupp")).is_err());
        assert!(decode_collector(&text.replace("episodes 1", "episodes x")).is_err());
        let err = decode_collector(&text.replace("accepted ", "acepted ")).expect_err("corrupt");
        assert!(err.contains("line"), "{err}");
    }
}
