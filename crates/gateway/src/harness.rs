//! Deterministic single-step server harness — the injectable seam the
//! protocol model checker (`cargo run -p xtask -- protocol-check`)
//! drives.
//!
//! [`Server`](crate::server::Server) is built around threads, sockets
//! and wall-clock timeouts, none of which an exhaustive state-space
//! explorer can schedule. [`StepServer`] is the same protocol state
//! machine with every nondeterministic edge lifted out: the caller
//! owns the "network" (it feeds raw frame bytes per connection and
//! collects typed reply messages), the caller decides when the
//! queue-dry group commit fires ([`StepServer::commit`]), and every
//! step decodes exactly one message. Crucially it is **not** a model
//! of the server: admission, durability and ack release run through
//! the real [`Collector`] (real [`SeqTracker`](crate::collector::SeqTracker)
//! dedup, real [`Wal`](crate::wal::Wal) appends over whatever
//! [`Vfs`](crate::vfs::Vfs) the collector was opened with, real
//! [`FrameBuffer`] decoding), so an invariant the checker proves holds
//! for the shipped code paths, not a re-implementation. This mirrors
//! how the shard-schedule checker drives the real engine coordinator
//! through `ShardBackend`.
//!
//! The event-loop semantics replicated here (one arm per message, in
//! [`StepServer::step`]) are intentionally line-for-line parallel to
//! `Server::event_loop`; a behavioral change to one must be made to
//! both (the checker's cross-validation against the socket tests is
//! the tripwire).

use crate::collector::{Collector, DeliverOutcome, GatewayError};
use crate::frame::{FrameBuffer, FrameError, Message, PROTOCOL_V1, PROTOCOL_VERSION};
use sentinet_sim::SensorId;

/// When a queued cumulative ack may be written to the client.
///
/// The shipped rule is [`AckDiscipline::Durable`]. [`AckDiscipline::Eager`]
/// deliberately re-creates the bug the group-commit release gate
/// exists to prevent — acking on admission, before a completed fsync
/// covers the batch's WAL extent — so the model checker can prove it
/// *detects* the violation (a mutation-style self-test; see
/// `xtask/src/protocol_check.rs`). Production code must never use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDiscipline {
    /// Release an `AckUpTo` only once [`Collector::synced_cursor`]
    /// covers its WAL cursor — the shipped ack-after-durable rule.
    Durable,
    /// Release on admission without consulting the synced cursor (the
    /// deliberately broken discipline the checker must catch).
    Eager,
}

/// A queued cumulative ack awaiting fsync coverage (the harness twin
/// of the server's `PendingAck`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedAck {
    /// Connection the ack belongs to.
    pub conn: usize,
    /// Acknowledged sensor.
    pub sensor: SensorId,
    /// Cumulative watermark to report.
    pub seq: u64,
    /// WAL cursor a completed fsync must cover first.
    pub cursor: u64,
}

/// What one [`StepServer::step`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// No complete frame was buffered on the connection.
    Idle,
    /// One message was consumed; replies (with their destination
    /// connections) in the order the socket server would write them.
    Replies(Vec<(usize, Message)>),
    /// The connection's byte stream is corrupt — connection-fatal,
    /// its queued acks are discarded exactly as the server drops a
    /// `BadFrame` connection.
    BadFrame(FrameError),
}

/// The single-stepped protocol v1/v2 server core over a real
/// [`Collector`]. See the module docs for what it is (a seam) and is
/// not (a model).
pub struct StepServer {
    collector: Collector,
    conns: Vec<Option<FrameBuffer>>,
    pending: Vec<QueuedAck>,
    credit_window: u32,
    discipline: AckDiscipline,
    version_rejects: u64,
}

impl StepServer {
    /// Wraps an opened collector; `credit_window` is granted in every
    /// v2 `HelloAck`.
    pub fn new(collector: Collector, credit_window: u32, discipline: AckDiscipline) -> Self {
        Self {
            collector,
            conns: Vec::new(),
            pending: Vec::new(),
            credit_window,
            discipline,
            version_rejects: 0,
        }
    }

    /// Opens a new connection; returns its id.
    pub fn connect(&mut self) -> usize {
        self.conns.push(Some(FrameBuffer::new()));
        self.conns.len() - 1
    }

    /// Closes `conn`: its buffered bytes and queued acks are dropped,
    /// as on the server's `Closed`/`BadFrame` events. The client's
    /// retransmit protocol re-delivers whatever lost its ack.
    pub fn disconnect(&mut self, conn: usize) {
        if let Some(slot) = self.conns.get_mut(conn) {
            *slot = None;
        }
        self.pending.retain(|p| p.conn != conn);
    }

    /// Appends raw frame bytes to `conn`'s receive stream (the
    /// "network delivers a packet" edge). Bytes for a closed
    /// connection are discarded.
    pub fn feed(&mut self, conn: usize, bytes: &[u8]) {
        if let Some(Some(fb)) = self.conns.get_mut(conn) {
            fb.feed(bytes);
        }
    }

    /// Decodes and handles at most one message from `conn`, exactly as
    /// one `Event::Msg` arm of the server's event loop.
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage collector failures, exactly as
    /// [`Server::run`](crate::server::Server::run) would abort.
    pub fn step(&mut self, conn: usize) -> Result<StepEvent, GatewayError> {
        let msg = match self.conns.get_mut(conn) {
            Some(Some(fb)) => match fb.next_message() {
                Ok(Some(msg)) => msg,
                Ok(None) => return Ok(StepEvent::Idle),
                Err(e) => {
                    self.disconnect(conn);
                    return Ok(StepEvent::BadFrame(e));
                }
            },
            _ => return Ok(StepEvent::Idle),
        };
        let mut replies = Vec::new();
        match msg {
            Message::Data {
                sensor,
                seq,
                time,
                values,
            } => {
                // v1 stop-and-wait: deliver() made the record durable
                // under the fsync policy before returning, so the ack
                // needs no release gate.
                let outcome = self.collector.deliver(sensor, seq, time, values)?;
                let reply = match outcome {
                    DeliverOutcome::Accepted | DeliverOutcome::Duplicate => {
                        Message::Ack { sensor, seq }
                    }
                    DeliverOutcome::Rejected(_) => Message::Nack { sensor, seq },
                };
                replies.push((conn, reply));
            }
            Message::DataBatch {
                sensor,
                first_seq,
                readings,
            } => {
                let out = self.collector.deliver_batch(sensor, first_seq, &readings)?;
                if let Some((seq, _)) = out.nack {
                    replies.push((conn, Message::Nack { sensor, seq }));
                }
                if let Some(seq) = out.ack_up_to {
                    self.pending.push(QueuedAck {
                        conn,
                        sensor,
                        seq,
                        cursor: out.ack_cursor,
                    });
                    // Policy-driven fsyncs may already cover the batch;
                    // release what can go now, pipeline the rest.
                    self.release_ready(&mut replies);
                }
            }
            Message::Fin => {
                if !self.pending.is_empty() {
                    self.collector.sync_wal()?;
                    self.release_ready(&mut replies);
                }
                replies.push((conn, Message::FinAck));
            }
            Message::Hello { version, epoch } => {
                if epoch > 0 {
                    self.collector.observe_epoch(epoch);
                }
                match version {
                    PROTOCOL_V1 => {}
                    PROTOCOL_VERSION => {
                        replies.push((
                            conn,
                            Message::HelloAck {
                                version: PROTOCOL_VERSION,
                                credits: self.credit_window,
                            },
                        ));
                    }
                    _ => {
                        self.version_rejects += 1;
                        replies.push((
                            conn,
                            Message::HelloReject {
                                supported: PROTOCOL_VERSION,
                            },
                        ));
                        self.disconnect(conn);
                    }
                }
            }
            Message::Heartbeat { epoch } => {
                if epoch > 0 {
                    self.collector.observe_epoch(epoch);
                }
                replies.push((
                    conn,
                    Message::HeartbeatAck {
                        epoch: self.collector.epoch(),
                        checkpoint_cursor: self.collector.checkpoint_cursor(),
                    },
                ));
            }
            Message::MigrateOffer { start, end } => {
                // Source side of a live migration, exactly as the
                // event loop: cut, release acks the cut's fsync
                // covered, answer with the staged snapshot — or
                // silence when the cut cannot be made durable.
                let cut = self.collector.export_range(start..end);
                if !self.pending.is_empty() {
                    self.release_ready(&mut replies);
                }
                match cut {
                    Ok((inside, cursor)) => replies.push((
                        conn,
                        Message::MigrateAccept {
                            start,
                            end,
                            cursor,
                            snapshot: crate::snapshot::encode_collector(&inside).into_bytes(),
                        },
                    )),
                    Err(GatewayError::MigrationCut(_)) | Err(GatewayError::Wal(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Message::MigrateAccept {
                start,
                end,
                cursor,
                snapshot,
            } => {
                // Destination side: adopt, confirm only once durable.
                let adopted = String::from_utf8(snapshot)
                    .ok()
                    .and_then(|text| crate::snapshot::decode_collector(&text).ok())
                    .map(|snap| self.collector.adopt_range(start..end, cursor, &snap));
                match adopted {
                    Some(Ok(())) => {
                        replies.push((conn, Message::MigrateDone { start, end, cursor }));
                    }
                    Some(Err(GatewayError::MigrationCut(_)))
                    | Some(Err(GatewayError::Wal(_)))
                    | None => {}
                    Some(Err(e)) => return Err(e),
                }
            }
            Message::MigrateDone { start, end, cursor } => {
                self.collector.clear_outbox(start..end);
                replies.push((conn, Message::MigrateDone { start, end, cursor }));
            }
            Message::Ack { .. }
            | Message::AckUpTo { .. }
            | Message::FinAck
            | Message::Nack { .. }
            | Message::HelloAck { .. }
            | Message::HelloReject { .. }
            | Message::HeartbeatAck { .. } => {
                // Server-bound streams should not carry replies;
                // ignored, exactly as the event loop does.
            }
        }
        Ok(StepEvent::Replies(replies))
    }

    /// The queue-dry group commit: one fsync covers every batch
    /// admitted since the last, and the acks it unblocks are released
    /// together. Mirrors the `TryRecvError::Empty` arm of the event
    /// loop; the caller (the model checker's schedule) decides when
    /// the queue counts as dry.
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage failures; a storage failure
    /// poisons the WAL and is absorbed, exactly like the server.
    pub fn commit(&mut self) -> Result<Vec<(usize, Message)>, GatewayError> {
        let mut replies = Vec::new();
        if !self.pending.is_empty() {
            self.collector.sync_wal()?;
            self.release_ready(&mut replies);
        }
        Ok(replies)
    }

    /// Releases every queued ack its discipline allows, appending the
    /// `AckUpTo` messages in queue order (the harness twin of the
    /// server's `release_ready`).
    fn release_ready(&mut self, replies: &mut Vec<(usize, Message)>) {
        let synced = self.collector.synced_cursor();
        let eager = self.discipline == AckDiscipline::Eager;
        self.pending.retain(|p| {
            if p.cursor > synced && !eager {
                return true;
            }
            replies.push((
                p.conn,
                Message::AckUpTo {
                    sensor: p.sensor,
                    seq: p.seq,
                },
            ));
            false
        });
    }

    /// Acks admitted but not yet released (awaiting fsync coverage).
    pub fn pending_acks(&self) -> &[QueuedAck] {
        &self.pending
    }

    /// Hellos refused for an unknown protocol version.
    pub fn version_rejects(&self) -> u64 {
        self.version_rejects
    }

    /// The underlying collector (for invariant probes).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Tears the harness down, returning the collector (e.g. to
    /// finish it for a report).
    pub fn into_collector(self) -> Collector {
        self.collector
    }
}
