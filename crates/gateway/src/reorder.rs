//! Watermark reorder buffer.
//!
//! Store-and-forward radios and retries deliver records out of
//! timestamp order. The sanitizer deliberately rejects out-of-order
//! records (reordering there would break replay determinism), so
//! without help every late packet would become silent data loss. This
//! buffer holds admitted records and releases them in `(time, sensor)`
//! order once they fall behind a watermark, turning bounded network
//! reordering into in-order delivery and leaving the sanitizer's
//! rejection as a last-resort guard rather than the common path.
//!
//! Invariants, which together guarantee the released stream always
//! satisfies the sanitizer's ordering rules:
//!
//! * The **watermark** is `max(admitted time) − watermark_delay`.
//!   Records are released (sorted) only once their time is at or below
//!   the watermark, so any record arriving within `watermark_delay` of
//!   the newest data is re-sequenced losslessly.
//! * A record older than the watermark at arrival, or at or before its
//!   sensor's last released time, is dropped as **late** (counted) —
//!   it can no longer be placed without violating release order.
//! * A record whose `(time, sensor)` slot is already buffered is a
//!   **duplicate** (counted); the first arrival wins.
//! * Each sensor may buffer at most `per_sensor_capacity` records;
//!   overflow **sheds** that sensor's oldest buffered record
//!   (counted) — explicit drop-oldest load shedding, never an
//!   unbounded queue and never a silent drop.

use sentinet_sim::{RawRecord, SensorId, Timestamp};
use std::collections::BTreeMap;

/// Reorder buffer tuning.
#[derive(Debug, Clone)]
pub struct ReorderConfig {
    /// How far behind the newest admitted time a record may arrive and
    /// still be re-sequenced.
    pub watermark_delay: Timestamp,
    /// Buffered-record cap per sensor; overflow sheds oldest.
    pub per_sensor_capacity: usize,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        Self {
            watermark_delay: 1800,
            per_sensor_capacity: 64,
        }
    }
}

/// What happened to one offered record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Buffered (possibly shedding an older record to make room).
    Admitted,
    /// Dropped: behind the watermark or its sensor's released history.
    Late,
    /// Dropped: its `(time, sensor)` slot is already buffered.
    Duplicate,
}

/// Transport-layer drop accounting, merged into the ingest report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Same-slot duplicates dropped (first arrival kept).
    pub duplicates: usize,
    /// Records dropped as behind the watermark.
    pub late: usize,
    /// Records shed oldest-first under per-sensor overflow.
    pub shed: usize,
}

/// The buffer itself. Feed with [`offer`](ReorderBuffer::offer), drain
/// with [`drain_ready`](ReorderBuffer::drain_ready), and
/// [`flush`](ReorderBuffer::flush) at end of stream.
#[derive(Debug)]
pub struct ReorderBuffer {
    config: ReorderConfig,
    buffer: BTreeMap<(Timestamp, SensorId), Vec<f64>>,
    buffered_per_sensor: BTreeMap<SensorId, usize>,
    last_released: BTreeMap<SensorId, Timestamp>,
    watermark: Option<Timestamp>,
    stats: ReorderStats,
}

/// Plain-data image of a [`ReorderBuffer`], for checkpointing the
/// transport layer alongside the pipeline it feeds. The per-sensor
/// buffered counts are derivable from `buffer` and are rebuilt on
/// restore.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReorderSnapshot {
    /// Buffered records as `(time, sensor, values)`, in release order.
    pub buffer: Vec<(Timestamp, SensorId, Vec<f64>)>,
    /// Per-sensor last released timestamp.
    pub last_released: Vec<(SensorId, Timestamp)>,
    /// The release watermark, if any record has been admitted.
    pub watermark: Option<Timestamp>,
    /// Drop accounting so far.
    pub stats: ReorderStats,
}

impl ReorderBuffer {
    /// An empty buffer.
    pub fn new(config: ReorderConfig) -> Self {
        Self {
            config,
            buffer: BTreeMap::new(),
            buffered_per_sensor: BTreeMap::new(),
            last_released: BTreeMap::new(),
            watermark: None,
            stats: ReorderStats::default(),
        }
    }

    /// The current release watermark, if any record has been admitted.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// Drop accounting so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Offers one deduplicated record. On `Admitted` the record is
    /// buffered; call [`drain_ready`](ReorderBuffer::drain_ready) to
    /// collect whatever the (possibly advanced) watermark now frees.
    pub fn offer(&mut self, record: RawRecord) -> AdmitOutcome {
        let RawRecord {
            time,
            sensor,
            values,
        } = record;
        if let Some(w) = self.watermark {
            if time < w {
                self.stats.late += 1;
                return AdmitOutcome::Late;
            }
        }
        if let Some(&released) = self.last_released.get(&sensor) {
            if time <= released {
                self.stats.late += 1;
                return AdmitOutcome::Late;
            }
        }
        if self.buffer.contains_key(&(time, sensor)) {
            self.stats.duplicates += 1;
            return AdmitOutcome::Duplicate;
        }

        let buffered = self.buffered_per_sensor.entry(sensor).or_insert(0);
        if *buffered >= self.config.per_sensor_capacity {
            // Shed this sensor's oldest buffered record to make room.
            let oldest = self.buffer.keys().find(|(_, s)| *s == sensor).copied();
            if let Some(key) = oldest {
                self.buffer.remove(&key);
                *buffered -= 1;
                self.stats.shed += 1;
            }
        }
        *buffered += 1;
        self.buffer.insert((time, sensor), values);

        let horizon = time.saturating_sub(self.config.watermark_delay);
        if self.watermark.is_none_or(|w| horizon > w) {
            self.watermark = Some(horizon);
        }
        AdmitOutcome::Admitted
    }

    /// Moves every buffered record at or below the watermark into
    /// `out`, in `(time, sensor)` order.
    pub fn drain_ready(&mut self, out: &mut Vec<RawRecord>) {
        let Some(w) = self.watermark else { return };
        self.release_through(w, out);
    }

    /// End of stream: releases everything still buffered, in order.
    pub fn flush(&mut self, out: &mut Vec<RawRecord>) {
        self.release_through(Timestamp::MAX, out);
    }

    /// Captures the buffer's contents and accounting for checkpointing.
    pub fn snapshot(&self) -> ReorderSnapshot {
        ReorderSnapshot {
            buffer: self
                .buffer
                .iter()
                .map(|(&(t, s), v)| (t, s, v.clone()))
                .collect(),
            last_released: self.last_released.iter().map(|(&s, &t)| (s, t)).collect(),
            watermark: self.watermark,
            stats: self.stats,
        }
    }

    /// Rebuilds a buffer from a snapshot taken under the same config;
    /// admit/release decisions continue exactly as the captured
    /// instance's would.
    pub fn from_snapshot(config: ReorderConfig, snapshot: ReorderSnapshot) -> Self {
        let mut buffered_per_sensor: BTreeMap<SensorId, usize> = BTreeMap::new();
        let mut buffer = BTreeMap::new();
        for (t, s, v) in snapshot.buffer {
            *buffered_per_sensor.entry(s).or_insert(0) += 1;
            buffer.insert((t, s), v);
        }
        Self {
            config,
            buffer,
            buffered_per_sensor,
            last_released: snapshot.last_released.into_iter().collect(),
            watermark: snapshot.watermark,
            stats: snapshot.stats,
        }
    }

    fn release_through(&mut self, limit: Timestamp, out: &mut Vec<RawRecord>) {
        while let Some((&(time, sensor), _)) = self.buffer.iter().next() {
            if time > limit {
                break;
            }
            if let Some(values) = self.buffer.remove(&(time, sensor)) {
                if let Some(count) = self.buffered_per_sensor.get_mut(&sensor) {
                    *count = count.saturating_sub(1);
                }
                self.last_released.insert(sensor, time);
                out.push(RawRecord {
                    time,
                    sensor,
                    values,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(time: u64, sensor: u16, v: f64) -> RawRecord {
        RawRecord {
            time,
            sensor: SensorId(sensor),
            values: vec![v],
        }
    }

    fn cfg(delay: u64, cap: usize) -> ReorderConfig {
        ReorderConfig {
            watermark_delay: delay,
            per_sensor_capacity: cap,
        }
    }

    #[test]
    fn reordered_within_watermark_comes_out_sorted() {
        let mut rb = ReorderBuffer::new(cfg(1000, 16));
        for t in [600u64, 300, 900, 1200, 1500] {
            assert_eq!(rb.offer(raw(t, 1, t as f64)), AdmitOutcome::Admitted);
        }
        let mut out = Vec::new();
        rb.flush(&mut out);
        let times: Vec<u64> = out.iter().map(|r| r.time).collect();
        assert_eq!(times, vec![300, 600, 900, 1200, 1500]);
        assert_eq!(rb.stats(), ReorderStats::default());
    }

    #[test]
    fn watermark_releases_progressively() {
        let mut rb = ReorderBuffer::new(cfg(600, 16));
        rb.offer(raw(300, 1, 1.0));
        rb.offer(raw(600, 1, 2.0));
        let mut out = Vec::new();
        rb.drain_ready(&mut out);
        assert!(out.is_empty(), "nothing behind watermark yet");
        rb.offer(raw(1200, 1, 3.0)); // watermark now 600
        rb.drain_ready(&mut out);
        assert_eq!(
            out.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![300, 600]
        );
    }

    #[test]
    fn behind_watermark_is_late() {
        let mut rb = ReorderBuffer::new(cfg(300, 16));
        rb.offer(raw(3000, 1, 1.0)); // watermark 2700
        assert_eq!(rb.offer(raw(600, 1, 2.0)), AdmitOutcome::Late);
        assert_eq!(rb.stats().late, 1);
    }

    #[test]
    fn same_slot_is_duplicate_first_wins() {
        let mut rb = ReorderBuffer::new(cfg(1000, 16));
        rb.offer(raw(300, 1, 1.0));
        assert_eq!(rb.offer(raw(300, 1, 99.0)), AdmitOutcome::Duplicate);
        let mut out = Vec::new();
        rb.flush(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, vec![1.0]);
        assert_eq!(rb.stats().duplicates, 1);
    }

    #[test]
    fn overflow_sheds_oldest_per_sensor() {
        let mut rb = ReorderBuffer::new(cfg(u64::MAX, 3));
        for t in [300u64, 600, 900, 1200] {
            rb.offer(raw(t, 1, t as f64));
        }
        assert_eq!(rb.stats().shed, 1);
        let mut out = Vec::new();
        rb.flush(&mut out);
        assert_eq!(
            out.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![600, 900, 1200],
            "oldest record shed"
        );
    }

    #[test]
    fn reorder_snapshot_round_trips_and_continues_identically() {
        let mut rb = ReorderBuffer::new(cfg(600, 8));
        let mut out = Vec::new();
        for (t, s) in [(600u64, 1u16), (300, 2), (900, 1), (100, 2)] {
            rb.offer(raw(t, s, t as f64));
            rb.drain_ready(&mut out);
        }
        let snap = rb.snapshot();
        assert!(snap.stats.late > 0, "the straggler at t=100 was dropped");
        let mut restored = ReorderBuffer::from_snapshot(cfg(600, 8), snap.clone());
        assert_eq!(restored.snapshot(), snap);
        // Both continue identically from here.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (t, s) in [(1500u64, 1u16), (1200, 2), (2400, 1)] {
            assert_eq!(
                rb.offer(raw(t, s, t as f64)),
                restored.offer(raw(t, s, t as f64))
            );
            rb.drain_ready(&mut a);
            restored.drain_ready(&mut b);
        }
        rb.flush(&mut a);
        restored.flush(&mut b);
        assert_eq!(a, b);
        assert_eq!(rb.stats(), restored.stats());
    }

    #[test]
    fn released_stream_is_per_sensor_strictly_increasing() {
        let mut rb = ReorderBuffer::new(cfg(600, 8));
        let mut out = Vec::new();
        // Interleave two sensors with jitter and a straggler.
        for (t, s) in [
            (600u64, 1u16),
            (300, 2),
            (900, 1),
            (600, 2),
            (1500, 1),
            (1200, 2),
            (900, 2),
            (2400, 1),
        ] {
            rb.offer(raw(t, s, 1.0));
            rb.drain_ready(&mut out);
        }
        rb.flush(&mut out);
        let mut last: BTreeMap<SensorId, u64> = BTreeMap::new();
        let mut last_global = 0u64;
        for r in &out {
            assert!(r.time >= last_global, "global order violated");
            last_global = r.time;
            if let Some(&prev) = last.get(&r.sensor) {
                assert!(r.time > prev, "per-sensor order violated");
            }
            last.insert(r.sensor, r.time);
        }
    }
}
