//! Injectable storage layer for the gateway's durable state.
//!
//! Every byte the gateway persists — WAL segments and the checkpoint
//! file — flows through the [`Vfs`]/[`VFile`] trait pair. Production
//! uses [`RealVfs`], a zero-cost veneer over `std::fs`. Tests use
//! [`FaultyVfs`], which injects faults at *operation coordinates*: the
//! nth append/fsync/rename/… touching a named path, mirroring the
//! shard/window/point coordinates of `sentinet_engine`'s chaos plans.
//! A fault plan is data, so a failing schedule found by the seeded
//! sweep can be replayed exactly.
//!
//! The fault catalogue covers the storage pathologies the recovery
//! design must survive (§13 of `DESIGN.md`):
//!
//! * [`StorageFault::Enospc`] — the volume fills mid-write;
//! * [`StorageFault::FsyncFail`] — `fsync` reports an I/O error. Per
//!   the fsyncgate lesson, a failed fsync leaves page-cache state
//!   unknowable, so the WAL treats the first failure as poisoning the
//!   writer (fail-stop) rather than retrying;
//! * [`StorageFault::TornWrite`] — a crash mid-write persists only a
//!   prefix of the buffer (modelled by writing `bytes` bytes, then
//!   failing);
//! * [`StorageFault::ReadErr`] — recovery-time reads fail;
//! * [`StorageFault::Slow`] — an operation stalls (latency injection
//!   for timeout paths); the data still goes through.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A typed, cloneable description of a storage failure, carried from
/// the failing syscall up into [`GatewayReport`](crate::GatewayReport)
/// (`std::io::Error` is not `Clone`, so the OS detail is captured as
/// text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// Which operation failed.
    pub op: VfsOp,
    /// The path it failed on.
    pub path: PathBuf,
    /// OS-level detail, as text.
    pub detail: String,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage {} failed on {}: {}",
            self.op,
            self.path.display(),
            self.detail
        )
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Wraps an `io::Error` with its operation and path.
    pub fn new(op: VfsOp, path: &Path, err: &std::io::Error) -> Self {
        Self {
            op,
            path: path.to_path_buf(),
            detail: err.to_string(),
        }
    }
}

/// The storage operations a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VfsOp {
    /// Appending bytes to an open file.
    Append,
    /// Flushing an open file to stable storage.
    Fsync,
    /// Creating (truncating) a file, or opening it for append.
    Create,
    /// Atomically renaming a file.
    Rename,
    /// Removing a file.
    Remove,
    /// Reading a whole file.
    Read,
    /// Writing a whole file (create + write + sync).
    Write,
}

impl fmt::Display for VfsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VfsOp::Append => "append",
            VfsOp::Fsync => "fsync",
            VfsOp::Create => "create",
            VfsOp::Rename => "rename",
            VfsOp::Remove => "remove",
            VfsOp::Read => "read",
            VfsOp::Write => "write",
        };
        f.write_str(name)
    }
}

/// An open, appendable file handle.
pub trait VFile: Send {
    /// Appends `buf` at the end of the file.
    ///
    /// # Errors
    ///
    /// Any I/O failure; a partial (torn) write may have persisted a
    /// prefix of `buf`.
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()>;

    /// Flushes file data to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// Any I/O failure. After a failed fsync the kernel may have
    /// dropped the dirty pages; callers must treat the writer as
    /// poisoned (see `DESIGN.md` §13).
    fn fsync(&mut self) -> std::io::Result<()>;
}

/// The filesystem surface the gateway's durable layer is written
/// against. Implementations must be shareable across threads.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `dir` and its ancestors (idempotent).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;

    /// File names (not paths) of `dir`'s direct children.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn list(&self, dir: &Path) -> std::io::Result<Vec<String>>;

    /// Creates (or truncates) `path` for writing.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VFile>>;

    /// Opens `path` for appending (positioned at end of file).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VFile>>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;

    /// Writes `bytes` as the whole content of `path` and syncs it —
    /// the write half of an atomic tmp-then-rename commit.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Truncates `path` to `len` bytes and syncs (torn-tail repair).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()>;

    /// Atomically renames `from` to `to`.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Bytes available on the volume backing `path`, when the
    /// implementation can tell (fault injection can; plain `std` has
    /// no portable API, so [`RealVfs`] returns `None`).
    fn available_space(&self, path: &Path) -> Option<u64>;
}

/// The production [`Vfs`]: a direct pass-through to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl VFile for File {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.write_all(buf)
    }

    fn fsync(&mut self) -> std::io::Result<()> {
        self.sync_data()
    }
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VFile>> {
        Ok(Box::new(OpenOptions::new().append(true).open(path)?))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn available_space(&self, _path: &Path) -> Option<u64> {
        None
    }
}

/// What a triggered fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The operation fails with `ENOSPC` (volume full). Nothing is
    /// persisted.
    Enospc,
    /// `fsync` (or the targeted operation) fails with `EIO`; for an
    /// append, the data *is* written — it is the flush whose promise
    /// breaks.
    FsyncFail,
    /// Only the first `bytes` bytes of the buffer persist before the
    /// operation fails — a crash mid-write.
    TornWrite {
        /// How many bytes of the buffer survive.
        bytes: usize,
    },
    /// The operation fails with `EIO` on the read path.
    ReadErr,
    /// The operation stalls for `ms` milliseconds, then succeeds.
    Slow {
        /// Injected latency in milliseconds.
        ms: u64,
    },
}

/// One scheduled fault: the `nth` (1-based) operation of kind `op`
/// whose path ends with `path` fires `kind`, `count` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Path suffix to match (e.g. a file name like `wal-00000002.seg`,
    /// or `""` to match every path).
    pub path: String,
    /// The operation to intercept.
    pub op: VfsOp,
    /// Which matching occurrence triggers (1-based).
    pub nth: u64,
    /// What happens when it triggers.
    pub kind: StorageFault,
    /// How many consecutive matching occurrences fire (a permanently
    /// failing disk is `u32::MAX`).
    pub count: u32,
}

/// A deterministic schedule of storage faults, mirroring
/// `sentinet_engine`'s chaos plans: a plan is plain data, built
/// explicitly with [`FaultPlan::with_fault`] or drawn from a seed with
/// [`FaultPlan::seeded`], and injected by wrapping the real storage in
/// a [`FaultyVfs`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds one fault to the schedule.
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Draws `num_faults` random fault coordinates over the given path
    /// suffixes from a seed. The same seed always yields the same
    /// plan, so a failing schedule found by a sweep is reproducible
    /// from its seed alone.
    pub fn seeded(seed: u64, paths: &[&str], num_faults: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = [
            VfsOp::Append,
            VfsOp::Fsync,
            VfsOp::Create,
            VfsOp::Rename,
            VfsOp::Remove,
            VfsOp::Read,
            VfsOp::Write,
        ];
        let mut plan = Self::new();
        for _ in 0..num_faults {
            let path = if paths.is_empty() {
                String::new()
            } else {
                paths[rng.gen_range(0..paths.len())].to_string()
            };
            let op = ops[rng.gen_range(0..ops.len())];
            let kind = match rng.gen_range(0..5u8) {
                0 => StorageFault::Enospc,
                1 => StorageFault::FsyncFail,
                2 => StorageFault::TornWrite {
                    bytes: rng.gen_range(0..32),
                },
                3 => StorageFault::ReadErr,
                _ => StorageFault::Slow {
                    ms: rng.gen_range(1..10),
                },
            };
            plan = plan.with_fault(FaultSpec {
                path,
                op,
                nth: rng.gen_range(1..20),
                kind,
                count: rng.gen_range(1..3),
            });
        }
        plan
    }
}

/// Shared interception state: the plan plus per-spec occurrence
/// counters, keyed by spec index.
#[derive(Debug)]
struct PlanState {
    plan: FaultPlan,
    /// Per-spec count of matching operations seen so far.
    seen: Vec<u64>,
    /// Per-spec count of firings already consumed.
    fired: Vec<u32>,
    /// Every fault actually injected, for test assertions.
    injected: Vec<(VfsOp, PathBuf, StorageFault)>,
    /// Total operations observed per kind, plan-independent — the
    /// observability hook tests use to prove an I/O fast path (e.g.
    /// "this checkpoint issued zero fsyncs") actually ran.
    op_counts: std::collections::BTreeMap<VfsOp, u64>,
}

impl PlanState {
    /// Registers one `op` on `path`; returns the fault to inject, if
    /// any spec's coordinates match.
    fn intercept(&mut self, op: VfsOp, path: &Path) -> Option<StorageFault> {
        *self.op_counts.entry(op).or_insert(0) += 1;
        for (i, spec) in self.plan.faults.iter().enumerate() {
            if spec.op != op || !path.to_string_lossy().ends_with(&spec.path) {
                continue;
            }
            self.seen[i] += 1;
            let occurrence = self.seen[i];
            let window = spec.nth..spec.nth + u64::from(spec.count);
            if window.contains(&occurrence) && self.fired[i] < spec.count {
                self.fired[i] += 1;
                self.injected.push((op, path.to_path_buf(), spec.kind));
                return Some(spec.kind);
            }
        }
        None
    }
}

fn enospc() -> std::io::Error {
    std::io::Error::from_raw_os_error(28) // ENOSPC
}

fn eio() -> std::io::Error {
    std::io::Error::from_raw_os_error(5) // EIO
}

/// A [`Vfs`] that executes a [`FaultPlan`] over a real filesystem:
/// every operation is counted against the plan's coordinates and
/// either performed, delayed, truncated, or failed as scheduled.
#[derive(Debug)]
pub struct FaultyVfs {
    inner: RealVfs,
    state: Arc<Mutex<PlanState>>,
}

impl FaultyVfs {
    /// Wraps the real filesystem with a fault schedule.
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.faults.len();
        Self {
            inner: RealVfs,
            state: Arc::new(Mutex::new(PlanState {
                plan,
                seen: vec![0; n],
                fired: vec![0; n],
                injected: Vec::new(),
                op_counts: std::collections::BTreeMap::new(),
            })),
        }
    }

    /// Every fault injected so far, in firing order.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the plan lock.
    pub fn injected(&self) -> Vec<(VfsOp, PathBuf, StorageFault)> {
        // sentinet-allow(expect-used): lock poisoning means a panic already unwound through the vfs; propagate it
        self.state.lock().expect("fault plan lock").injected.clone()
    }

    /// Total `op` operations this vfs has intercepted (fault-injected
    /// or not) — lets a test assert an I/O fast path, e.g. that a
    /// checkpoint whose cursor is already synced issues zero fsyncs.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the plan lock.
    pub fn op_count(&self, op: VfsOp) -> u64 {
        // sentinet-allow(expect-used): lock poisoning means a panic already unwound through the vfs; propagate it
        let state = self.state.lock().expect("fault plan lock");
        state.op_counts.get(&op).copied().unwrap_or(0)
    }

    fn intercept(&self, op: VfsOp, path: &Path) -> Option<StorageFault> {
        let fault = self
            .state
            .lock()
            // sentinet-allow(expect-used): lock poisoning means a panic already unwound through the vfs; propagate it
            .expect("fault plan lock")
            .intercept(op, path);
        if let Some(StorageFault::Slow { ms }) = fault {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        fault
    }

    /// Maps an intercepted fault on a whole-operation path (no torn
    /// semantics) to its error, or `None` for `Slow` (which already
    /// slept and lets the operation proceed).
    fn verdict(fault: Option<StorageFault>) -> Result<(), std::io::Error> {
        match fault {
            None | Some(StorageFault::Slow { .. }) => Ok(()),
            Some(StorageFault::Enospc) => Err(enospc()),
            Some(
                StorageFault::FsyncFail | StorageFault::ReadErr | StorageFault::TornWrite { .. },
            ) => Err(eio()),
        }
    }
}

/// A [`VFile`] whose appends and fsyncs are counted against the plan.
struct FaultyFile {
    inner: Box<dyn VFile>,
    path: PathBuf,
    state: Arc<Mutex<PlanState>>,
}

impl FaultyFile {
    fn intercept(&self, op: VfsOp) -> Option<StorageFault> {
        let fault = self
            .state
            .lock()
            // sentinet-allow(expect-used): lock poisoning means a panic already unwound through the vfs; propagate it
            .expect("fault plan lock")
            .intercept(op, &self.path);
        if let Some(StorageFault::Slow { ms }) = fault {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        fault
    }
}

impl VFile for FaultyFile {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self.intercept(VfsOp::Append) {
            None | Some(StorageFault::Slow { .. }) => self.inner.append(buf),
            Some(StorageFault::Enospc) => Err(enospc()),
            Some(StorageFault::TornWrite { bytes }) => {
                // A crash mid-write persists a prefix only.
                self.inner.append(&buf[..bytes.min(buf.len())])?;
                let _ = self.inner.fsync();
                Err(eio())
            }
            Some(StorageFault::FsyncFail | StorageFault::ReadErr) => Err(eio()),
        }
    }

    fn fsync(&mut self) -> std::io::Result<()> {
        match self.intercept(VfsOp::Fsync) {
            None | Some(StorageFault::Slow { .. }) => self.inner.fsync(),
            Some(_) => Err(eio()),
        }
    }
}

impl Vfs for FaultyVfs {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        FaultyVfs::verdict(self.intercept(VfsOp::Read, dir))?;
        self.inner.list(dir)
    }

    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VFile>> {
        FaultyVfs::verdict(self.intercept(VfsOp::Create, path))?;
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VFile>> {
        FaultyVfs::verdict(self.intercept(VfsOp::Create, path))?;
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_append(path)?,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        FaultyVfs::verdict(self.intercept(VfsOp::Read, path))?;
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.intercept(VfsOp::Write, path) {
            None | Some(StorageFault::Slow { .. }) => self.inner.write_file(path, bytes),
            Some(StorageFault::Enospc) => Err(enospc()),
            Some(StorageFault::TornWrite { bytes: n }) => {
                self.inner.write_file(path, &bytes[..n.min(bytes.len())])?;
                Err(eio())
            }
            Some(StorageFault::FsyncFail | StorageFault::ReadErr) => Err(eio()),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()> {
        FaultyVfs::verdict(self.intercept(VfsOp::Write, path))?;
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        FaultyVfs::verdict(self.intercept(VfsOp::Rename, to))?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        FaultyVfs::verdict(self.intercept(VfsOp::Remove, path))?;
        self.inner.remove_file(path)
    }

    fn available_space(&self, path: &Path) -> Option<u64> {
        self.inner.available_space(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinet-vfs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn real_vfs_round_trips_files() {
        let dir = tmpdir("real");
        let vfs = RealVfs;
        let path = dir.join("a.bin");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.fsync().unwrap();
        drop(f);
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"world").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.list(&dir).unwrap(), vec!["a.bin".to_string()]);
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        let moved = dir.join("b.bin");
        vfs.rename(&path, &moved).unwrap();
        vfs.remove_file(&moved).unwrap();
        assert!(vfs.list(&dir).unwrap().is_empty());
        assert!(vfs.available_space(&dir).is_none());
    }

    #[test]
    fn faults_fire_at_their_coordinates_and_count_down() {
        let dir = tmpdir("coords");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: "x.bin".into(),
            op: VfsOp::Append,
            nth: 2,
            kind: StorageFault::Enospc,
            count: 2,
        });
        let vfs = FaultyVfs::new(plan);
        let mut f = vfs.create(dir.join("x.bin").as_path()).unwrap();
        assert!(f.append(b"1").is_ok(), "append #1 clean");
        let err = f.append(b"2").expect_err("append #2 faulted");
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        assert!(f.append(b"3").is_err(), "append #3 faulted (count=2)");
        assert!(f.append(b"4").is_ok(), "append #4 clean again");
        assert_eq!(vfs.injected().len(), 2);
        // Unrelated paths never match.
        let mut g = vfs.create(dir.join("y.bin").as_path()).unwrap();
        for _ in 0..8 {
            g.append(b"z").unwrap();
        }
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let dir = tmpdir("torn");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: "t.bin".into(),
            op: VfsOp::Append,
            nth: 1,
            kind: StorageFault::TornWrite { bytes: 3 },
            count: 1,
        });
        let vfs = FaultyVfs::new(plan);
        let path = dir.join("t.bin");
        let mut f = vfs.create(&path).unwrap();
        assert!(f.append(b"abcdef").is_err());
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"abc");
    }

    #[test]
    fn fsync_rename_and_read_faults_fail_typed() {
        let dir = tmpdir("ops");
        let plan = FaultPlan::new()
            .with_fault(FaultSpec {
                path: "f.bin".into(),
                op: VfsOp::Fsync,
                nth: 1,
                kind: StorageFault::FsyncFail,
                count: 1,
            })
            .with_fault(FaultSpec {
                path: "dst.bin".into(),
                op: VfsOp::Rename,
                nth: 1,
                kind: StorageFault::Enospc,
                count: 1,
            })
            .with_fault(FaultSpec {
                path: "f.bin".into(),
                op: VfsOp::Read,
                nth: 1,
                kind: StorageFault::ReadErr,
                count: 1,
            });
        let vfs = FaultyVfs::new(plan);
        let path = dir.join("f.bin");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"data").unwrap();
        assert!(f.fsync().is_err(), "fsync fault");
        f.fsync().expect("fsync recovered (count exhausted)");
        drop(f);
        assert!(vfs.rename(&path, dir.join("dst.bin").as_path()).is_err());
        assert!(vfs.read(&path).is_err(), "read fault");
        assert_eq!(vfs.read(&path).unwrap(), b"data", "read recovered");
        let kinds: Vec<VfsOp> = vfs.injected().iter().map(|(op, _, _)| *op).collect();
        assert_eq!(kinds, vec![VfsOp::Fsync, VfsOp::Rename, VfsOp::Read]);
    }

    #[test]
    fn slow_fault_delays_but_succeeds() {
        let dir = tmpdir("slow");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: "s.bin".into(),
            op: VfsOp::Append,
            nth: 1,
            kind: StorageFault::Slow { ms: 20 },
            count: 1,
        });
        let vfs = FaultyVfs::new(plan);
        let path = dir.join("s.bin");
        let mut f = vfs.create(&path).unwrap();
        let start = std::time::Instant::now();
        f.append(b"ok").expect("slow append still lands");
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"ok");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, &["wal-00000001.seg", "checkpoint.ck"], 6);
        let b = FaultPlan::seeded(42, &["wal-00000001.seg", "checkpoint.ck"], 6);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        let c = FaultPlan::seeded(43, &["wal-00000001.seg", "checkpoint.ck"], 6);
        assert_ne!(a, c, "different seed, different plan");
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn storage_error_displays_op_and_path() {
        let e = StorageError::new(VfsOp::Fsync, Path::new("/w/wal-00000001.seg"), &eio());
        let shown = e.to_string();
        assert!(shown.contains("fsync"), "{shown}");
        assert!(shown.contains("wal-00000001.seg"), "{shown}");
    }
}
