//! CRC-32 (IEEE 802.3 polynomial, reflected) for frame and WAL record
//! integrity.
//!
//! The vendored dependency set has no checksum crate, so the gateway
//! carries the standard table-driven implementation: the same
//! polynomial as zlib/Ethernet, table built once at compile time by a
//! `const fn`. Every framed payload — on the socket and in the
//! write-ahead log — is followed by this checksum, so a flipped bit or
//! a torn tail is detected before the payload is parsed.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`) —
/// matches zlib's `crc32(0, data)`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"sentinet gateway frame payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
