//! CRC-32 (IEEE 802.3 polynomial, reflected) for frame and WAL record
//! integrity.
//!
//! The vendored dependency set has no checksum crate, so the gateway
//! carries a slicing-by-8 table-driven implementation: the same
//! polynomial as zlib/Ethernet, eight 256-entry tables built once at
//! compile time by a `const fn`, folding eight input bytes per step
//! instead of one. Every framed payload — on the socket and in the
//! write-ahead log — is followed by this checksum, so a flipped bit or
//! a torn tail is detected before the payload is parsed. The checksum
//! sits on the ingest hot path twice per reading (socket decode and
//! WAL framing), which is why the wide variant earns its tables.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC contribution of byte `b` positioned `k` bytes before the
/// end of an 8-byte block, so one XOR-join of eight lookups advances
/// the register a full block.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][n] = c;
        n += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut n = 0usize;
        while n < 256 {
            let prev = tables[t - 1][n];
            tables[t][n] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            n += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`) —
/// matches zlib's `crc32(0, data)`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte-at-a-time reference the sliced version must match.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // Cover every remainder length and several whole blocks,
        // including the 8-byte boundary cases the fast path folds.
        let data: Vec<u8> = (0..253u32)
            .map(|i| (i.wrapping_mul(151) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"sentinet gateway frame payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
