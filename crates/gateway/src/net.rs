//! Minimal socket abstraction over TCP and Unix-domain transports.
//!
//! Endpoints are plain strings: `"127.0.0.1:4410"` (TCP) or
//! `"unix:/tmp/sentinet.sock"` (Unix-domain). Both sides of the
//! gateway speak through [`Stream`]/[`Listener`] so the framing,
//! retry, and collector code is transport-agnostic, and `std::net`
//! stays confined to this crate (enforced by the `net-outside-gateway`
//! lint).
//!
//! Every stream gets an explicit read timeout before its first read —
//! a gateway thread must never block forever on a dead peer (enforced
//! by the `socket-read-timeout` lint).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A bound listening socket over either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (remembers its path for cleanup).
    #[cfg(unix)]
    Unix(UnixListener),
}

#[cfg(not(unix))]
fn unsupported(spec: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!("unix-domain endpoint `{spec}` unsupported on this platform"),
    )
}

impl Listener {
    /// Binds `spec`, returning the listener and the resolved address a
    /// client can connect to (for TCP, the OS-assigned port is filled
    /// in).
    pub(crate) fn bind(spec: &str) -> io::Result<(Self, String)> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                // A stale socket file from a killed process blocks
                // rebinding; remove it first.
                // sentinet-allow(io-outside-vfs): a socket node is transport
                // state, not durable data — fault injection on the unlink
                // would only break rebinding, not durability.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                return Ok((Listener::Unix(listener), format!("unix:{path}")));
            }
            #[cfg(not(unix))]
            return Err(unsupported(spec));
        }
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?.to_string();
        Ok((Listener::Tcp(listener), addr))
    }

    /// Switches blocking mode of `accept`.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Stream {
    /// Connects to `spec` (same syntax as [`Listener::bind`]).
    pub(crate) fn connect(spec: &str) -> io::Result<Self> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            return UnixStream::connect(path).map(Stream::Unix);
            #[cfg(not(unix))]
            return Err(unsupported(spec));
        }
        TcpStream::connect(spec).map(Stream::Tcp)
    }

    /// Bounds how long a read may block.
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bounds how long a write may block.
    pub(crate) fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Clones the handle (shared underlying socket), so one thread can
    /// read while another writes acks.
    pub(crate) fn try_clone(&self) -> io::Result<Self> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Shuts down both directions.
    pub(crate) fn shutdown(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// True when a read failed only because its timeout elapsed.
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
