//! Length-prefixed, CRC-framed wire protocol.
//!
//! Every frame on the socket (and every record in the WAL, which
//! reuses the same payload codec) has the shape
//!
//! ```text
//! [u32 payload_len LE] [payload bytes] [u32 crc32(payload) LE]
//! ```
//!
//! and every payload starts with a one-byte message tag. Floating
//! point values travel as IEEE-754 bit patterns (`f64::to_bits`), so a
//! reading round-trips bit-exactly — including the NaN/∞ payloads a
//! broken ADC produces, which must reach the sanitizer unchanged for
//! its accounting to be faithful.
//!
//! Decoding is incremental: a [`FrameBuffer`] is fed raw socket bytes
//! as they arrive (reads use short timeouts, never blocking forever)
//! and yields complete messages. A CRC mismatch or an oversized length
//! prefix is connection-fatal — after corruption the stream offset can
//! no longer be trusted, so the peer closes and the client's retry
//! loop re-delivers anything unacknowledged on a fresh connection.

use crate::crc::crc32;
use sentinet_sim::{SensorId, Timestamp};
use std::fmt;

/// Hard cap on a frame payload; anything larger is corruption.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Current protocol version carried by [`Message::Hello`]. Version 2
/// adds pipelined batch frames ([`Message::DataBatch`]), cumulative
/// acks ([`Message::AckUpTo`]) and explicit negotiation
/// ([`Message::HelloAck`] / [`Message::HelloReject`]).
pub const PROTOCOL_VERSION: u32 = 2;

/// The original stop-and-wait protocol version (one `Data` frame per
/// `Ack`). Still spoken by [`crate::client::SensorUplink`]; the server
/// accepts it unchanged.
pub const PROTOCOL_V1: u32 = 1;

const TAG_HELLO: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_FIN: u8 = 4;
const TAG_FIN_ACK: u8 = 5;
const TAG_NACK: u8 = 6;
const TAG_DATA_BATCH: u8 = 7;
const TAG_ACK_UP_TO: u8 = 8;
const TAG_HELLO_ACK: u8 = 9;
const TAG_HELLO_REJECT: u8 = 10;
const TAG_HEARTBEAT: u8 = 11;
const TAG_HEARTBEAT_ACK: u8 = 12;
const TAG_MIGRATE_OFFER: u8 = 13;
const TAG_MIGRATE_ACCEPT: u8 = 14;
const TAG_MIGRATE_DONE: u8 = 15;

/// Hard cap on readings per [`Message::DataBatch`] frame (the frame
/// must also fit [`MAX_PAYLOAD`]).
pub const MAX_BATCH_READINGS: usize = 4096;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client greeting; carries the protocol version and (for fenced
    /// federation links) the sender's owner epoch.
    Hello {
        /// Wire protocol version (see [`PROTOCOL_VERSION`]).
        version: u32,
        /// Owner epoch the sender believes is current; `0` means
        /// unfenced (standalone clients). Encoded as an optional
        /// trailing field only when non-zero, so the v1 wire bytes a
        /// plain `Hello` produces are unchanged.
        epoch: u64,
    },
    /// One sensor reading with its per-sensor sequence number.
    Data {
        /// Reporting sensor.
        sensor: SensorId,
        /// Per-sensor sequence number assigned by the client.
        seq: u64,
        /// Sample timestamp.
        time: Timestamp,
        /// Attribute values (possibly empty or non-finite — the
        /// sanitizer, not the codec, polices value semantics).
        values: Vec<f64>,
    },
    /// Server acknowledgment: the `(sensor, seq)` record is durable.
    Ack {
        /// Acknowledged sensor.
        sensor: SensorId,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Client end-of-stream: flush and finalize.
    Fin,
    /// Server acknowledgment of [`Message::Fin`].
    FinAck,
    /// Negative acknowledgment: the `(sensor, seq)` record could not
    /// be made durable (storage failure or WAL budget shedding) and
    /// was *not* accepted. The client must not treat it as delivered;
    /// its retry protocol redelivers later or gives up loudly.
    Nack {
        /// Refused sensor.
        sensor: SensorId,
        /// Refused sequence number.
        seq: u64,
    },
    /// Many consecutive readings from one sensor in a single frame
    /// (protocol v2). Reading `i` carries sequence number
    /// `first_seq + i`; the server admits each reading individually
    /// but logs and fsyncs the batch as one WAL extent.
    DataBatch {
        /// Reporting sensor.
        sensor: SensorId,
        /// Sequence number of the first reading in the batch.
        first_seq: u64,
        /// `(timestamp, values)` per reading, in sequence order.
        readings: Vec<(Timestamp, Vec<f64>)>,
    },
    /// Cumulative acknowledgment (protocol v2): every reading of
    /// `sensor` with sequence number `≤ seq` is durable — its WAL
    /// extent is covered by a completed fsync.
    AckUpTo {
        /// Acknowledged sensor.
        sensor: SensorId,
        /// Highest durable sequence number (inclusive).
        seq: u64,
    },
    /// Server reply to a v2 [`Message::Hello`]: the negotiated version
    /// plus the initial credit grant (how many `DataBatch` frames the
    /// client may keep in flight before waiting for acks).
    HelloAck {
        /// Negotiated protocol version.
        version: u32,
        /// Batch frames the client may keep unacknowledged.
        credits: u32,
    },
    /// Server refusal of an unknown [`Message::Hello`] version; names
    /// the highest version the server speaks so the mismatch is a
    /// typed protocol event, not corrupt-frame noise.
    HelloReject {
        /// Highest protocol version the server supports.
        supported: u32,
    },
    /// Lightweight liveness probe from a federation controller. The
    /// carried epoch doubles as a fence observation: a server whose
    /// configured epoch is older fail-stops its WAL.
    Heartbeat {
        /// Owner epoch the controller believes is current.
        epoch: u64,
    },
    /// Server reply to [`Message::Heartbeat`]: the server's own epoch
    /// plus the WAL cursor of its last committed checkpoint, so
    /// standbys can pre-warm from the freshest snapshot.
    HeartbeatAck {
        /// The server's configured owner epoch.
        epoch: u64,
        /// WAL cursor of the last committed checkpoint (0: none yet).
        checkpoint_cursor: u64,
    },
    /// Controller order to the current owner of `[start, end)`: cut
    /// that sensor range out of the live collector at the current WAL
    /// cursor and stage it for transfer. From the moment the cut
    /// commits the range answers `Nack`/fenced, so no acked reading
    /// can postdate the cut. The server replies with
    /// [`Message::MigrateAccept`] carrying the staged sub-range
    /// snapshot.
    MigrateOffer {
        /// First sensor id of the moving range (inclusive).
        start: u16,
        /// One past the last sensor id of the moving range.
        end: u16,
    },
    /// The staged cut of `[start, end)`: the sub-range collector
    /// snapshot taken at `cursor`. Sent by the source server in answer
    /// to [`Message::MigrateOffer`], then forwarded verbatim by the
    /// controller to the destination server, which adopts it and
    /// answers [`Message::MigrateDone`]. The snapshot must fit one
    /// frame ([`MAX_PAYLOAD`]), which bounds how much per-sensor state
    /// a single migration may carry.
    MigrateAccept {
        /// First sensor id of the moving range (inclusive).
        start: u16,
        /// One past the last sensor id of the moving range.
        end: u16,
        /// Source WAL cursor the cut was taken at.
        cursor: u64,
        /// Sub-range snapshot bytes (`snapshot::encode_collector`).
        snapshot: Vec<u8>,
    },
    /// The range `[start, end)` is durably adopted at its new home:
    /// sent by the destination once the shipped snapshot's restore
    /// point commits, and forwarded by the controller to the source as
    /// permission to discard the staged outbox payload (the source
    /// echoes it as an acknowledgment).
    MigrateDone {
        /// First sensor id of the migrated range (inclusive).
        start: u16,
        /// One past the last sensor id of the migrated range.
        end: u16,
        /// The cut cursor being confirmed.
        cursor: u64,
    },
}

/// A frame- or payload-level decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    TooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload checksum did not match its CRC trailer.
    BadCrc {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
    /// The payload tag byte is unknown.
    UnknownTag(u8),
    /// The payload was shorter than its tag requires.
    ShortPayload {
        /// The offending tag.
        tag: u8,
        /// Bytes present.
        len: usize,
    },
    /// The stream ended in the middle of a frame.
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadCrc { computed, carried } => {
                write!(
                    f,
                    "frame crc mismatch (computed {computed:08x}, carried {carried:08x})"
                )
            }
            FrameError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            FrameError::ShortPayload { tag, len } => {
                write!(f, "payload too short ({len} bytes) for tag {tag}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a payload slice with typed underrun errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(FrameError::ShortPayload {
                tag: self.tag,
                len: self.bytes.len(),
            }),
        }
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Appends the payload of a `Data` message (tag included) to `out`.
/// The WAL reuses exactly this encoding for its records, so wire and
/// log bytes can share one decoder.
pub fn encode_data_payload(
    sensor: SensorId,
    seq: u64,
    time: Timestamp,
    values: &[f64],
    out: &mut Vec<u8>,
) {
    out.push(TAG_DATA);
    put_u16(out, sensor.0);
    put_u64(out, seq);
    put_u64(out, time);
    put_u16(out, values.len() as u16);
    for v in values {
        put_u64(out, v.to_bits());
    }
}

/// Appends the payload bytes of `msg` to `out`.
pub fn encode_payload(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello { version, epoch } => {
            out.push(TAG_HELLO);
            put_u32(out, *version);
            // Optional trailing field: absent when zero, keeping the
            // pinned v1 Hello bytes byte-for-byte.
            if *epoch > 0 {
                put_u64(out, *epoch);
            }
        }
        Message::Data {
            sensor,
            seq,
            time,
            values,
        } => encode_data_payload(*sensor, *seq, *time, values, out),
        Message::Ack { sensor, seq } => {
            out.push(TAG_ACK);
            put_u16(out, sensor.0);
            put_u64(out, *seq);
        }
        Message::Fin => out.push(TAG_FIN),
        Message::FinAck => out.push(TAG_FIN_ACK),
        Message::Nack { sensor, seq } => {
            out.push(TAG_NACK);
            put_u16(out, sensor.0);
            put_u64(out, *seq);
        }
        Message::DataBatch {
            sensor,
            first_seq,
            readings,
        } => {
            out.push(TAG_DATA_BATCH);
            put_u16(out, sensor.0);
            put_u64(out, *first_seq);
            put_u16(out, readings.len() as u16);
            for (time, values) in readings {
                put_u64(out, *time);
                put_u16(out, values.len() as u16);
                for v in values {
                    put_u64(out, v.to_bits());
                }
            }
        }
        Message::AckUpTo { sensor, seq } => {
            out.push(TAG_ACK_UP_TO);
            put_u16(out, sensor.0);
            put_u64(out, *seq);
        }
        Message::HelloAck { version, credits } => {
            out.push(TAG_HELLO_ACK);
            put_u32(out, *version);
            put_u32(out, *credits);
        }
        Message::HelloReject { supported } => {
            out.push(TAG_HELLO_REJECT);
            put_u32(out, *supported);
        }
        Message::Heartbeat { epoch } => {
            out.push(TAG_HEARTBEAT);
            put_u64(out, *epoch);
        }
        Message::HeartbeatAck {
            epoch,
            checkpoint_cursor,
        } => {
            out.push(TAG_HEARTBEAT_ACK);
            put_u64(out, *epoch);
            put_u64(out, *checkpoint_cursor);
        }
        Message::MigrateOffer { start, end } => {
            out.push(TAG_MIGRATE_OFFER);
            put_u16(out, *start);
            put_u16(out, *end);
        }
        Message::MigrateAccept {
            start,
            end,
            cursor,
            snapshot,
        } => {
            out.push(TAG_MIGRATE_ACCEPT);
            put_u16(out, *start);
            put_u16(out, *end);
            put_u64(out, *cursor);
            put_u32(out, snapshot.len() as u32);
            out.extend_from_slice(snapshot);
        }
        Message::MigrateDone { start, end, cursor } => {
            out.push(TAG_MIGRATE_DONE);
            put_u16(out, *start);
            put_u16(out, *end);
            put_u64(out, *cursor);
        }
    }
}

/// Decodes one payload (tag byte first) into a [`Message`].
///
/// # Errors
///
/// [`FrameError::UnknownTag`] / [`FrameError::ShortPayload`] on a
/// malformed payload.
pub fn decode_payload(payload: &[u8]) -> Result<Message, FrameError> {
    let (&tag, rest) = match payload.split_first() {
        Some(split) => split,
        None => return Err(FrameError::ShortPayload { tag: 0, len: 0 }),
    };
    let mut cur = Cursor {
        bytes: rest,
        pos: 0,
        tag,
    };
    let msg = match tag {
        TAG_HELLO => {
            let version = cur.u32()?;
            // The epoch is an optional trailing field (pre-fencing
            // peers never send it); absent decodes as 0 = unfenced.
            let epoch = if cur.pos < rest.len() { cur.u64()? } else { 0 };
            Message::Hello { version, epoch }
        }
        TAG_DATA => {
            let sensor = SensorId(cur.u16()?);
            let seq = cur.u64()?;
            let time = cur.u64()?;
            let n = cur.u16()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f64::from_bits(cur.u64()?));
            }
            Message::Data {
                sensor,
                seq,
                time,
                values,
            }
        }
        TAG_ACK => Message::Ack {
            sensor: SensorId(cur.u16()?),
            seq: cur.u64()?,
        },
        TAG_FIN => Message::Fin,
        TAG_FIN_ACK => Message::FinAck,
        TAG_NACK => Message::Nack {
            sensor: SensorId(cur.u16()?),
            seq: cur.u64()?,
        },
        TAG_DATA_BATCH => {
            let sensor = SensorId(cur.u16()?);
            let first_seq = cur.u64()?;
            let count = cur.u16()? as usize;
            let mut readings = Vec::with_capacity(count.min(MAX_BATCH_READINGS));
            for _ in 0..count {
                let time = cur.u64()?;
                let n = cur.u16()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(f64::from_bits(cur.u64()?));
                }
                readings.push((time, values));
            }
            Message::DataBatch {
                sensor,
                first_seq,
                readings,
            }
        }
        TAG_ACK_UP_TO => Message::AckUpTo {
            sensor: SensorId(cur.u16()?),
            seq: cur.u64()?,
        },
        TAG_HELLO_ACK => Message::HelloAck {
            version: cur.u32()?,
            credits: cur.u32()?,
        },
        TAG_HELLO_REJECT => Message::HelloReject {
            supported: cur.u32()?,
        },
        TAG_HEARTBEAT => Message::Heartbeat { epoch: cur.u64()? },
        TAG_HEARTBEAT_ACK => Message::HeartbeatAck {
            epoch: cur.u64()?,
            checkpoint_cursor: cur.u64()?,
        },
        TAG_MIGRATE_OFFER => Message::MigrateOffer {
            start: cur.u16()?,
            end: cur.u16()?,
        },
        TAG_MIGRATE_ACCEPT => {
            let start = cur.u16()?;
            let end = cur.u16()?;
            let cursor = cur.u64()?;
            let len = cur.u32()? as usize;
            let snapshot = cur.take(len)?.to_vec();
            Message::MigrateAccept {
                start,
                end,
                cursor,
                snapshot,
            }
        }
        TAG_MIGRATE_DONE => Message::MigrateDone {
            start: cur.u16()?,
            end: cur.u16()?,
            cursor: cur.u64()?,
        },
        other => return Err(FrameError::UnknownTag(other)),
    };
    if cur.pos != rest.len() {
        return Err(FrameError::ShortPayload {
            tag,
            len: payload.len(),
        });
    }
    Ok(msg)
}

/// Wraps already-encoded payload bytes in the frame envelope
/// (`len` prefix + CRC trailer), appending to `out`.
pub fn frame_payload(payload: &[u8], out: &mut Vec<u8>) {
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Encodes `msg` as one complete frame (envelope included).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(msg, &mut payload);
    let mut out = Vec::with_capacity(payload.len() + 8);
    frame_payload(&payload, &mut out);
    out
}

/// Incremental frame decoder: feed raw stream bytes, pop messages.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow without bound.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; after an error the stream offset is
    /// untrustworthy and the connection should be closed.
    pub fn next_message(&mut self) -> Result<Option<Message>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge { len });
        }
        if avail.len() < 4 + len + 4 {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let carried = u32::from_le_bytes([
            avail[4 + len],
            avail[5 + len],
            avail[6 + len],
            avail[7 + len],
        ]);
        let computed = crc32(payload);
        if computed != carried {
            return Err(FrameError::BadCrc { computed, carried });
        }
        let msg = decode_payload(payload)?;
        self.start += 4 + len + 4;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(sensor: u16, seq: u64, time: u64, values: Vec<f64>) -> Message {
        Message::Data {
            sensor: SensorId(sensor),
            seq,
            time,
            values,
        }
    }

    #[test]
    fn roundtrip_every_message_kind() {
        let messages = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                epoch: 0,
            },
            Message::Hello {
                version: PROTOCOL_VERSION,
                epoch: 7,
            },
            data(3, 42, 600, vec![17.25, -80.5]),
            data(0, 0, 0, vec![]),
            Message::Ack {
                sensor: SensorId(7),
                seq: 9,
            },
            Message::Fin,
            Message::FinAck,
            Message::Nack {
                sensor: SensorId(2),
                seq: 11,
            },
            Message::DataBatch {
                sensor: SensorId(4),
                first_seq: 100,
                readings: vec![(300, vec![20.5, 55.0]), (600, vec![21.0, 54.5])],
            },
            Message::DataBatch {
                sensor: SensorId(0),
                first_seq: 0,
                readings: vec![],
            },
            Message::AckUpTo {
                sensor: SensorId(4),
                seq: 101,
            },
            Message::HelloAck {
                version: PROTOCOL_VERSION,
                credits: 32,
            },
            Message::HelloReject {
                supported: PROTOCOL_VERSION,
            },
            Message::Heartbeat { epoch: 3 },
            Message::HeartbeatAck {
                epoch: 3,
                checkpoint_cursor: 4096,
            },
            Message::MigrateOffer { start: 2, end: 5 },
            Message::MigrateAccept {
                start: 2,
                end: 5,
                cursor: 640,
                snapshot: b"sentinet-collector v1\n...".to_vec(),
            },
            Message::MigrateAccept {
                start: 0,
                end: 1,
                cursor: 0,
                snapshot: Vec::new(),
            },
            Message::MigrateDone {
                start: 2,
                end: 5,
                cursor: 640,
            },
        ];
        let mut fb = FrameBuffer::new();
        for m in &messages {
            fb.feed(&encode_frame(m));
        }
        for m in &messages {
            assert_eq!(fb.next_message().unwrap().unwrap(), *m);
        }
        assert_eq!(fb.next_message().unwrap(), None);
    }

    #[test]
    fn nan_and_infinity_roundtrip_bit_exactly() {
        let values = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let mut fb = FrameBuffer::new();
        fb.feed(&encode_frame(&data(1, 1, 300, values.clone())));
        let Some(Message::Data { values: got, .. }) = fb.next_message().unwrap() else {
            panic!("expected data");
        };
        let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&values));
    }

    #[test]
    fn partial_feeds_reassemble() {
        let frame = encode_frame(&data(2, 5, 900, vec![1.0, 2.0]));
        let mut fb = FrameBuffer::new();
        for b in &frame {
            assert!(fb.next_message().unwrap().is_none());
            fb.feed(std::slice::from_ref(b));
        }
        assert!(fb.next_message().unwrap().is_some());
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut frame = encode_frame(&data(2, 5, 900, vec![1.0]));
        let n = frame.len();
        frame[n - 1] ^= 0x01; // flip a CRC trailer bit
        let mut fb = FrameBuffer::new();
        fb.feed(&frame);
        assert!(matches!(fb.next_message(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn payload_flip_is_detected() {
        let mut frame = encode_frame(&data(2, 5, 900, vec![1.0]));
        frame[6] ^= 0x80; // flip a payload bit
        let mut fb = FrameBuffer::new();
        fb.feed(&frame);
        assert!(matches!(fb.next_message(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut fb = FrameBuffer::new();
        fb.feed(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        fb.feed(&[0; 8]);
        assert!(matches!(
            fb.next_message(),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut payload = vec![99u8];
        payload.extend_from_slice(&[0; 4]);
        let mut framed = Vec::new();
        frame_payload(&payload, &mut framed);
        let mut fb = FrameBuffer::new();
        fb.feed(&framed);
        assert!(matches!(fb.next_message(), Err(FrameError::UnknownTag(99))));
    }

    #[test]
    fn migrate_accept_snapshot_length_overrun_is_rejected() {
        let mut payload = Vec::new();
        encode_payload(
            &Message::MigrateAccept {
                start: 1,
                end: 2,
                cursor: 9,
                snapshot: vec![7; 4],
            },
            &mut payload,
        );
        // Claim one more snapshot byte than the payload carries.
        let len_at = 1 + 2 + 2 + 8;
        payload[len_at] = 5;
        assert!(matches!(
            decode_payload(&payload),
            Err(FrameError::ShortPayload {
                tag: TAG_MIGRATE_ACCEPT,
                ..
            })
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut payload = Vec::new();
        encode_payload(&Message::Fin, &mut payload);
        payload.push(0xAB); // extra byte after a complete Fin
        let mut framed = Vec::new();
        frame_payload(&payload, &mut framed);
        let mut fb = FrameBuffer::new();
        fb.feed(&framed);
        assert!(matches!(
            fb.next_message(),
            Err(FrameError::ShortPayload { .. })
        ));
    }

    #[test]
    fn batch_roundtrips_non_finite_values_bit_exactly() {
        let m = Message::DataBatch {
            sensor: SensorId(3),
            first_seq: 7,
            readings: vec![
                (300, vec![f64::NAN, f64::INFINITY]),
                (600, vec![-0.0, f64::NEG_INFINITY]),
                (900, vec![]),
            ],
        };
        let mut fb = FrameBuffer::new();
        fb.feed(&encode_frame(&m));
        let Some(Message::DataBatch { readings, .. }) = fb.next_message().unwrap() else {
            panic!("expected batch");
        };
        let Message::DataBatch { readings: want, .. } = m else {
            unreachable!()
        };
        assert_eq!(readings.len(), want.len());
        for ((tg, vg), (tw, vw)) in readings.iter().zip(&want) {
            assert_eq!(tg, tw);
            let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(vg), bits(vw));
        }
    }

    #[test]
    fn truncated_batch_payload_is_short() {
        let m = Message::DataBatch {
            sensor: SensorId(1),
            first_seq: 0,
            readings: vec![(300, vec![1.0]), (600, vec![2.0])],
        };
        let mut payload = Vec::new();
        encode_payload(&m, &mut payload);
        payload.truncate(payload.len() - 3); // cut into the final value
        let mut framed = Vec::new();
        frame_payload(&payload, &mut framed);
        let mut fb = FrameBuffer::new();
        fb.feed(&framed);
        assert!(matches!(
            fb.next_message(),
            Err(FrameError::ShortPayload { .. })
        ));
    }

    #[test]
    fn v1_frames_decode_unchanged_under_v2() {
        // The v1 message set must keep its exact wire bytes so legacy
        // stop-and-wait clients interoperate with a v2 server.
        let hello = encode_frame(&Message::Hello {
            version: PROTOCOL_V1,
            epoch: 0,
        });
        let payload = [TAG_HELLO, 1, 0, 0, 0];
        let mut want = vec![5, 0, 0, 0];
        want.extend_from_slice(&payload);
        want.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
        assert_eq!(hello, want);
        // A legacy epoch-less Hello decodes as epoch 0 (unfenced).
        let mut fb = FrameBuffer::new();
        fb.feed(&hello);
        assert_eq!(
            fb.next_message().unwrap().unwrap(),
            Message::Hello {
                version: PROTOCOL_V1,
                epoch: 0,
            }
        );
        let data = encode_frame(&data(1, 2, 300, vec![1.5]));
        assert_eq!(data[4], 2); // TAG_DATA survives
        assert_eq!(data.len(), 4 + 21 + 8 + 4); // envelope + payload shape
    }

    #[test]
    fn buffer_compaction_preserves_stream() {
        let mut fb = FrameBuffer::new();
        let m = data(1, 7, 300, vec![3.5]);
        for _ in 0..2000 {
            fb.feed(&encode_frame(&m));
            assert_eq!(fb.next_message().unwrap().unwrap(), m);
        }
        assert_eq!(fb.pending(), 0);
    }
}
