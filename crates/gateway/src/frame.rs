//! Length-prefixed, CRC-framed wire protocol.
//!
//! Every frame on the socket (and every record in the WAL, which
//! reuses the same payload codec) has the shape
//!
//! ```text
//! [u32 payload_len LE] [payload bytes] [u32 crc32(payload) LE]
//! ```
//!
//! and every payload starts with a one-byte message tag. Floating
//! point values travel as IEEE-754 bit patterns (`f64::to_bits`), so a
//! reading round-trips bit-exactly — including the NaN/∞ payloads a
//! broken ADC produces, which must reach the sanitizer unchanged for
//! its accounting to be faithful.
//!
//! Decoding is incremental: a [`FrameBuffer`] is fed raw socket bytes
//! as they arrive (reads use short timeouts, never blocking forever)
//! and yields complete messages. A CRC mismatch or an oversized length
//! prefix is connection-fatal — after corruption the stream offset can
//! no longer be trusted, so the peer closes and the client's retry
//! loop re-delivers anything unacknowledged on a fresh connection.

use crate::crc::crc32;
use sentinet_sim::{SensorId, Timestamp};
use std::fmt;

/// Hard cap on a frame payload; anything larger is corruption.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Protocol version carried by [`Message::Hello`].
pub const PROTOCOL_VERSION: u32 = 1;

const TAG_HELLO: u8 = 1;
const TAG_DATA: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_FIN: u8 = 4;
const TAG_FIN_ACK: u8 = 5;
const TAG_NACK: u8 = 6;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client greeting; carries the protocol version.
    Hello {
        /// Wire protocol version (see [`PROTOCOL_VERSION`]).
        version: u32,
    },
    /// One sensor reading with its per-sensor sequence number.
    Data {
        /// Reporting sensor.
        sensor: SensorId,
        /// Per-sensor sequence number assigned by the client.
        seq: u64,
        /// Sample timestamp.
        time: Timestamp,
        /// Attribute values (possibly empty or non-finite — the
        /// sanitizer, not the codec, polices value semantics).
        values: Vec<f64>,
    },
    /// Server acknowledgment: the `(sensor, seq)` record is durable.
    Ack {
        /// Acknowledged sensor.
        sensor: SensorId,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Client end-of-stream: flush and finalize.
    Fin,
    /// Server acknowledgment of [`Message::Fin`].
    FinAck,
    /// Negative acknowledgment: the `(sensor, seq)` record could not
    /// be made durable (storage failure or WAL budget shedding) and
    /// was *not* accepted. The client must not treat it as delivered;
    /// its retry protocol redelivers later or gives up loudly.
    Nack {
        /// Refused sensor.
        sensor: SensorId,
        /// Refused sequence number.
        seq: u64,
    },
}

/// A frame- or payload-level decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    TooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload checksum did not match its CRC trailer.
    BadCrc {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
    /// The payload tag byte is unknown.
    UnknownTag(u8),
    /// The payload was shorter than its tag requires.
    ShortPayload {
        /// The offending tag.
        tag: u8,
        /// Bytes present.
        len: usize,
    },
    /// The stream ended in the middle of a frame.
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadCrc { computed, carried } => {
                write!(
                    f,
                    "frame crc mismatch (computed {computed:08x}, carried {carried:08x})"
                )
            }
            FrameError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            FrameError::ShortPayload { tag, len } => {
                write!(f, "payload too short ({len} bytes) for tag {tag}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a payload slice with typed underrun errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(FrameError::ShortPayload {
                tag: self.tag,
                len: self.bytes.len(),
            }),
        }
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Appends the payload of a `Data` message (tag included) to `out`.
/// The WAL reuses exactly this encoding for its records, so wire and
/// log bytes can share one decoder.
pub fn encode_data_payload(
    sensor: SensorId,
    seq: u64,
    time: Timestamp,
    values: &[f64],
    out: &mut Vec<u8>,
) {
    out.push(TAG_DATA);
    put_u16(out, sensor.0);
    put_u64(out, seq);
    put_u64(out, time);
    put_u16(out, values.len() as u16);
    for v in values {
        put_u64(out, v.to_bits());
    }
}

/// Appends the payload bytes of `msg` to `out`.
pub fn encode_payload(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello { version } => {
            out.push(TAG_HELLO);
            put_u32(out, *version);
        }
        Message::Data {
            sensor,
            seq,
            time,
            values,
        } => encode_data_payload(*sensor, *seq, *time, values, out),
        Message::Ack { sensor, seq } => {
            out.push(TAG_ACK);
            put_u16(out, sensor.0);
            put_u64(out, *seq);
        }
        Message::Fin => out.push(TAG_FIN),
        Message::FinAck => out.push(TAG_FIN_ACK),
        Message::Nack { sensor, seq } => {
            out.push(TAG_NACK);
            put_u16(out, sensor.0);
            put_u64(out, *seq);
        }
    }
}

/// Decodes one payload (tag byte first) into a [`Message`].
///
/// # Errors
///
/// [`FrameError::UnknownTag`] / [`FrameError::ShortPayload`] on a
/// malformed payload.
pub fn decode_payload(payload: &[u8]) -> Result<Message, FrameError> {
    let (&tag, rest) = match payload.split_first() {
        Some(split) => split,
        None => return Err(FrameError::ShortPayload { tag: 0, len: 0 }),
    };
    let mut cur = Cursor {
        bytes: rest,
        pos: 0,
        tag,
    };
    let msg = match tag {
        TAG_HELLO => Message::Hello {
            version: cur.u32()?,
        },
        TAG_DATA => {
            let sensor = SensorId(cur.u16()?);
            let seq = cur.u64()?;
            let time = cur.u64()?;
            let n = cur.u16()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f64::from_bits(cur.u64()?));
            }
            Message::Data {
                sensor,
                seq,
                time,
                values,
            }
        }
        TAG_ACK => Message::Ack {
            sensor: SensorId(cur.u16()?),
            seq: cur.u64()?,
        },
        TAG_FIN => Message::Fin,
        TAG_FIN_ACK => Message::FinAck,
        TAG_NACK => Message::Nack {
            sensor: SensorId(cur.u16()?),
            seq: cur.u64()?,
        },
        other => return Err(FrameError::UnknownTag(other)),
    };
    if cur.pos != rest.len() {
        return Err(FrameError::ShortPayload {
            tag,
            len: payload.len(),
        });
    }
    Ok(msg)
}

/// Wraps already-encoded payload bytes in the frame envelope
/// (`len` prefix + CRC trailer), appending to `out`.
pub fn frame_payload(payload: &[u8], out: &mut Vec<u8>) {
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Encodes `msg` as one complete frame (envelope included).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(msg, &mut payload);
    let mut out = Vec::with_capacity(payload.len() + 8);
    frame_payload(&payload, &mut out);
    out
}

/// Incremental frame decoder: feed raw stream bytes, pop messages.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow without bound.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; after an error the stream offset is
    /// untrustworthy and the connection should be closed.
    pub fn next_message(&mut self) -> Result<Option<Message>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge { len });
        }
        if avail.len() < 4 + len + 4 {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let carried = u32::from_le_bytes([
            avail[4 + len],
            avail[5 + len],
            avail[6 + len],
            avail[7 + len],
        ]);
        let computed = crc32(payload);
        if computed != carried {
            return Err(FrameError::BadCrc { computed, carried });
        }
        let msg = decode_payload(payload)?;
        self.start += 4 + len + 4;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(sensor: u16, seq: u64, time: u64, values: Vec<f64>) -> Message {
        Message::Data {
            sensor: SensorId(sensor),
            seq,
            time,
            values,
        }
    }

    #[test]
    fn roundtrip_every_message_kind() {
        let messages = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
            },
            data(3, 42, 600, vec![17.25, -80.5]),
            data(0, 0, 0, vec![]),
            Message::Ack {
                sensor: SensorId(7),
                seq: 9,
            },
            Message::Fin,
            Message::FinAck,
            Message::Nack {
                sensor: SensorId(2),
                seq: 11,
            },
        ];
        let mut fb = FrameBuffer::new();
        for m in &messages {
            fb.feed(&encode_frame(m));
        }
        for m in &messages {
            assert_eq!(fb.next_message().unwrap().unwrap(), *m);
        }
        assert_eq!(fb.next_message().unwrap(), None);
    }

    #[test]
    fn nan_and_infinity_roundtrip_bit_exactly() {
        let values = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let mut fb = FrameBuffer::new();
        fb.feed(&encode_frame(&data(1, 1, 300, values.clone())));
        let Some(Message::Data { values: got, .. }) = fb.next_message().unwrap() else {
            panic!("expected data");
        };
        let bits = |vs: &[f64]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&values));
    }

    #[test]
    fn partial_feeds_reassemble() {
        let frame = encode_frame(&data(2, 5, 900, vec![1.0, 2.0]));
        let mut fb = FrameBuffer::new();
        for b in &frame {
            assert!(fb.next_message().unwrap().is_none());
            fb.feed(std::slice::from_ref(b));
        }
        assert!(fb.next_message().unwrap().is_some());
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut frame = encode_frame(&data(2, 5, 900, vec![1.0]));
        let n = frame.len();
        frame[n - 1] ^= 0x01; // flip a CRC trailer bit
        let mut fb = FrameBuffer::new();
        fb.feed(&frame);
        assert!(matches!(fb.next_message(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn payload_flip_is_detected() {
        let mut frame = encode_frame(&data(2, 5, 900, vec![1.0]));
        frame[6] ^= 0x80; // flip a payload bit
        let mut fb = FrameBuffer::new();
        fb.feed(&frame);
        assert!(matches!(fb.next_message(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut fb = FrameBuffer::new();
        fb.feed(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        fb.feed(&[0; 8]);
        assert!(matches!(
            fb.next_message(),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut payload = vec![99u8];
        payload.extend_from_slice(&[0; 4]);
        let mut framed = Vec::new();
        frame_payload(&payload, &mut framed);
        let mut fb = FrameBuffer::new();
        fb.feed(&framed);
        assert!(matches!(fb.next_message(), Err(FrameError::UnknownTag(99))));
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut payload = Vec::new();
        encode_payload(&Message::Fin, &mut payload);
        payload.push(0xAB); // extra byte after a complete Fin
        let mut framed = Vec::new();
        frame_payload(&payload, &mut framed);
        let mut fb = FrameBuffer::new();
        fb.feed(&framed);
        assert!(matches!(
            fb.next_message(),
            Err(FrameError::ShortPayload { .. })
        ));
    }

    #[test]
    fn buffer_compaction_preserves_stream() {
        let mut fb = FrameBuffer::new();
        let m = data(1, 7, 300, vec![3.5]);
        for _ in 0..2000 {
            fb.feed(&encode_frame(&m));
            assert_eq!(fb.next_message().unwrap().unwrap(), m);
        }
        assert_eq!(fb.pending(), 0);
    }
}
