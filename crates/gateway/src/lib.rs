//! `sentinet-gateway` — the durable streaming front end that turns the
//! detection pipeline into a long-running service.
//!
//! The paper's collector ingests live, lossy mote traffic; this crate
//! supplies that operating mode for `sentinet` (which otherwise
//! processes offline CSV traces). Three guarantees, std-only (no async
//! runtime — plain threads, bounded channels, socket timeouts):
//!
//! 1. **Reliable transport** ([`frame`], [`client`], [`server`]):
//!    length-prefixed CRC-framed messages over TCP or Unix sockets;
//!    per-sensor sequence numbers; a stop-and-wait client with capped
//!    exponential backoff, seeded jitter, and reconnection; server-side
//!    dedup plus a watermark reorder buffer ([`reorder`]) so bounded
//!    network reordering is repaired rather than rejected; bounded
//!    queues with explicit, counted drop-oldest load shedding. A
//!    version-negotiated pipelined mode (protocol v2) batches many
//!    readings per frame under a server-granted credit window with
//!    cumulative `AckUpTo` acks, closing the per-reading round-trip
//!    gap while the stop-and-wait v1 path stays wire-compatible.
//! 2. **Durability** ([`wal`], [`collector`]): every admitted record
//!    is appended to a segmented CRC-framed write-ahead log before it
//!    is acknowledged; on restart the log replays through the
//!    identical admission path (verified against periodic
//!    `core::checkpoint` fingerprints), so `kill -9` at any point
//!    resumes to a bit-identical `PipelineReport`.
//! 3. **Liveness** ([`collector`]): a silent sensor never stalls the
//!    window barrier — it is declared missing after a stream-time
//!    deadline and surfaced in [`LivenessStatus`].
//!
//! [`netsim`] drives all of it from seeded BurstLoss-shaped delivery
//! schedules, in-process or over a real socket.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod collector;
pub mod crc;
pub mod frame;
pub mod harness;
mod net;
pub mod netsim;
pub mod reorder;
pub mod report_codec;
pub mod server;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use client::{
    backoff_delay, probe_heartbeat, probe_migrate_adopt, probe_migrate_cut, probe_migrate_done,
    PipelinedConfig, PipelinedUplink, SensorUplink, UplinkConfig, UplinkError, UplinkStats,
};
pub use collector::{
    BatchOutcome, Collector, CutCheck, DeliverOutcome, FenceCheck, GatewayConfig, GatewayError,
    GatewayReport, LivenessStatus, RecoveryInfo, RejectCause, SeqTracker, StageTimings,
    StorageStatus, CHECKPOINT_FILE,
};
pub use frame::{
    FrameBuffer, FrameError, Message, MAX_BATCH_READINGS, MAX_PAYLOAD, PROTOCOL_V1,
    PROTOCOL_VERSION,
};
pub use harness::{AckDiscipline, QueuedAck, StepEvent, StepServer};
pub use netsim::{
    deliver_schedule, delivery_schedule, drive_uplink, trace_to_raw, Emission, NetsimConfig,
};
pub use reorder::{AdmitOutcome, ReorderBuffer, ReorderConfig, ReorderSnapshot, ReorderStats};
pub use report_codec::{CountersError, ReportCounters, COUNTERS_MAGIC};
pub use server::{Server, ServerConfig, ServerStats};
pub use snapshot::{
    decode_collector, encode_collector, merge_snapshot, split_snapshot, CollectorSnapshot,
};
pub use vfs::{
    FaultPlan, FaultSpec, FaultyVfs, RealVfs, StorageError, StorageFault, VFile, Vfs, VfsOp,
};
pub use wal::{FsyncPolicy, ReclaimPlan, SegmentInfo, Wal, WalConfig, WalError, WalRecord};
