//! The durable collector: WAL-backed admission into the detection
//! pipeline.
//!
//! Every delivered frame passes through one fixed sequence of gates:
//!
//! ```text
//! frame → seq dedup → WAL append → ack → reorder buffer → sanitizer
//!       → core::Pipeline
//! ```
//!
//! The WAL append happens *before* the ack, so an acknowledged record
//! is durable; everything after the ack (reordering, late/shed drops,
//! sanitization) is a pure deterministic function of the admitted
//! record sequence. Crash recovery exploits exactly that: on open the
//! WAL's records are replayed through the identical admission path, so
//! the rebuilt pipeline is bit-for-bit the state the crashed process
//! would have reached — a `kill -9` at any point resumes to a
//! [`PipelineReport`] identical to an uninterrupted run.
//!
//! Periodic checkpoints reuse [`core::checkpoint`](sentinet_core::checkpoint):
//! a checkpoint records the WAL cursor plus the
//! [`encode_shard`] fingerprint of every sensor's runtime state at that
//! cursor. Replay re-derives the fingerprint when it passes the cursor
//! and fails loudly on mismatch, so silent WAL corruption (or a
//! non-deterministic code change) cannot masquerade as a clean
//! recovery. (Resuming *from* the snapshot without replay would also
//! need a global-model snapshot, which the clustering state does not
//! yet support — see DESIGN.md §12.)
//!
//! Liveness: sensors that fall silent do not stall anything — the
//! window barrier is driven by whatever data does arrive. When a
//! sensor's last admission falls a configurable deadline behind the
//! reorder watermark it is declared silent and surfaced in
//! [`LivenessStatus`] (the paper's missing-packet semantics: its
//! absence from the window is itself the signal), recovering
//! automatically if it reports again.

use crate::reorder::{AdmitOutcome, ReorderBuffer, ReorderConfig};
use crate::wal::{Wal, WalConfig, WalError, WalRecord};
use sentinet_core::checkpoint::encode_shard;
use sentinet_core::{Pipeline, PipelineConfig, PipelineReport, RecoveryPlan};
use sentinet_sim::{IngestReport, RawRecord, Sanitizer, SensorId, Timestamp, Trace, TraceRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::PathBuf;

/// Marker line opening a gateway checkpoint file.
const CHECKPOINT_MAGIC: &str = "sentinet-gateway-checkpoint v1";
/// Checkpoint file name inside the WAL directory.
const CHECKPOINT_FILE: &str = "checkpoint.ck";

/// Full gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Detection-pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Sensor sampling period in seconds.
    pub sample_period: u64,
    /// Write-ahead log configuration.
    pub wal: WalConfig,
    /// Reorder buffer tuning.
    pub reorder: ReorderConfig,
    /// Declare a sensor silent once its last admission falls this far
    /// behind the watermark (`None` disables liveness tracking).
    pub silence_deadline: Option<Timestamp>,
    /// Write a checkpoint every N WAL records (0 disables).
    pub checkpoint_every: u64,
    /// Record the released stream as a [`Trace`] from the very first
    /// record — including recovery replay, which happens inside
    /// [`Collector::open`] before [`record_released_trace`]
    /// (`Collector::record_released_trace`) could be called.
    pub record_released: bool,
}

impl GatewayConfig {
    /// Defaults around a WAL directory: paper-default pipeline, 300 s
    /// sampling, 30 min watermark, checkpoint every 256 records.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            sample_period: 300,
            wal: WalConfig::new(wal_dir),
            reorder: ReorderConfig::default(),
            silence_deadline: Some(3600),
            checkpoint_every: 256,
            record_released: false,
        }
    }
}

/// A gateway-level failure.
#[derive(Debug)]
pub enum GatewayError {
    /// The write-ahead log failed.
    Wal(WalError),
    /// The checkpoint file exists but cannot be parsed.
    CheckpointMalformed(String),
    /// Replay reached the checkpoint cursor with different pipeline
    /// state than the checkpoint recorded.
    CheckpointMismatch {
        /// WAL cursor the checkpoint was taken at.
        cursor: u64,
    },
    /// The checkpoint cursor lies beyond the recovered WAL — the log
    /// lost durable records the checkpoint had seen (e.g. power loss
    /// under `fsync=never`).
    CheckpointAhead {
        /// WAL cursor the checkpoint was taken at.
        cursor: u64,
        /// Records actually recovered from the WAL.
        recovered: u64,
    },
    /// Filesystem error outside the WAL itself.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Wal(e) => write!(f, "{e}"),
            GatewayError::CheckpointMalformed(reason) => {
                write!(f, "malformed gateway checkpoint: {reason}")
            }
            GatewayError::CheckpointMismatch { cursor } => write!(
                f,
                "checkpoint mismatch at wal cursor {cursor}: replay diverged from checkpointed state"
            ),
            GatewayError::CheckpointAhead { cursor, recovered } => write!(
                f,
                "checkpoint cursor {cursor} beyond recovered wal ({recovered} records); \
                 log lost durable data (consider fsync=always)"
            ),
            GatewayError::Io(path, e) => write!(f, "gateway io error at {}: {e}", path.display()),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<WalError> for GatewayError {
    fn from(e: WalError) -> Self {
        GatewayError::Wal(e)
    }
}

/// Per-sensor sequence-number deduplication window.
#[derive(Debug, Default)]
struct SeqTracker {
    /// Lowest sequence number not yet seen.
    next: u64,
    /// Seen sequence numbers above `next` (out-of-order arrivals).
    above: BTreeSet<u64>,
}

impl SeqTracker {
    /// Records `seq`; returns `true` if it was new.
    fn observe(&mut self, seq: u64) -> bool {
        if seq < self.next || self.above.contains(&seq) {
            return false;
        }
        if seq == self.next {
            self.next += 1;
            while self.above.remove(&self.next) {
                self.next += 1;
            }
        } else {
            self.above.insert(seq);
        }
        true
    }
}

/// What the server should tell the client about a delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// New record, now durable: ack it.
    Accepted,
    /// Retransmission of an already-durable record: re-ack it.
    Duplicate,
}

/// What recovery found on open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Records replayed from the WAL.
    pub replayed: u64,
    /// WAL cursor of the checkpoint that was verified bit-exactly
    /// during replay, if one existed.
    pub verified_cursor: Option<u64>,
}

/// Current silence accounting (the gateway's degraded-mode surface,
/// alongside the engine's `DegradedStatus`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessStatus {
    /// Sensors currently past their silence deadline, with the stream
    /// time each was last heard from.
    pub silent: Vec<(SensorId, Timestamp)>,
    /// Silence episodes declared over the whole run, including ones
    /// that later recovered.
    pub episodes: usize,
}

impl LivenessStatus {
    /// Whether every sensor is currently reporting.
    pub fn is_live(&self) -> bool {
        self.silent.is_empty()
    }
}

impl fmt::Display for LivenessStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "liveness: silent sensors [")?;
        for (i, (s, last)) in self.silent.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} (last heard t={last})", s.0)?;
        }
        write!(f, "], {} episode(s) total", self.episodes)
    }
}

/// Everything a finished gateway run produced.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// The detection pipeline's report — bit-comparable across runs.
    pub pipeline: PipelineReport,
    /// Ingest accounting: sanitizer rejections plus transport-layer
    /// duplicate/late/shed counts.
    pub ingest: IngestReport,
    /// Silence accounting.
    pub liveness: LivenessStatus,
    /// Recommended per-sensor recovery actions.
    pub plan: RecoveryPlan,
    /// The complete released stream (present when recording was on —
    /// see [`GatewayConfig::record_released`]). Unlike
    /// [`Collector::released_trace`] mid-run, this includes the
    /// records the final flush released.
    pub released: Option<Trace>,
}

/// The durable collector. Create with [`Collector::open`], feed with
/// [`deliver`](Collector::deliver), close with
/// [`finish`](Collector::finish).
pub struct Collector {
    config: GatewayConfig,
    wal: Wal,
    pipeline: Pipeline,
    sanitizer: Sanitizer,
    reorder: ReorderBuffer,
    seqs: BTreeMap<SensorId, SeqTracker>,
    seq_duplicates: usize,
    accepted: usize,
    rejected: Vec<sentinet_sim::IngestError>,
    last_heard: BTreeMap<SensorId, Timestamp>,
    silent: BTreeSet<SensorId>,
    episodes: usize,
    released_scratch: Vec<RawRecord>,
    trace_log: Option<Vec<TraceRecord>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("wal", &self.wal)
            .field("accepted", &self.accepted)
            .finish()
    }
}

impl Collector {
    /// Opens the collector over its WAL directory, replaying any
    /// existing log through the admission path (verifying the latest
    /// checkpoint on the way) so the pipeline resumes exactly where
    /// the previous process died.
    ///
    /// # Errors
    ///
    /// Any [`GatewayError`]; corruption and checkpoint divergence are
    /// loud failures, never silent data loss.
    pub fn open(config: GatewayConfig) -> Result<(Self, RecoveryInfo), GatewayError> {
        let checkpoint = read_checkpoint(&config.wal.dir)?;
        let (wal, records) = Wal::open(config.wal.clone())?;
        let pipeline = Pipeline::new(config.pipeline.clone(), config.sample_period);
        let reorder = ReorderBuffer::new(config.reorder.clone());
        let trace_log = config.record_released.then(Vec::new);
        let mut collector = Self {
            config,
            wal,
            pipeline,
            sanitizer: Sanitizer::new(),
            reorder,
            seqs: BTreeMap::new(),
            seq_duplicates: 0,
            accepted: 0,
            rejected: Vec::new(),
            last_heard: BTreeMap::new(),
            silent: BTreeSet::new(),
            episodes: 0,
            released_scratch: Vec::new(),
            trace_log,
        };

        if let Some((cursor, _)) = &checkpoint {
            if *cursor > records.len() as u64 {
                return Err(GatewayError::CheckpointAhead {
                    cursor: *cursor,
                    recovered: records.len() as u64,
                });
            }
        }
        let mut verified_cursor = None;
        for (i, record) in records.iter().enumerate() {
            collector
                .seqs
                .entry(record.sensor)
                .or_default()
                .observe(record.seq);
            collector.admit(record.raw());
            if let Some((cursor, fingerprint)) = &checkpoint {
                if *cursor == (i + 1) as u64 {
                    let now = encode_shard(&collector.pipeline.sensor_snapshots());
                    if now != *fingerprint {
                        return Err(GatewayError::CheckpointMismatch { cursor: *cursor });
                    }
                    verified_cursor = Some(*cursor);
                }
            }
        }
        let info = RecoveryInfo {
            replayed: records.len() as u64,
            verified_cursor,
        };
        Ok((collector, info))
    }

    /// Starts recording the released (post-reorder, pre-sanitize
    /// accepted) stream as a [`Trace`], for re-running through the
    /// sharded engine. Call before any records are delivered.
    pub fn record_released_trace(&mut self) {
        self.trace_log = Some(Vec::new());
    }

    /// Handles one delivered `Data` frame. `Accepted` and `Duplicate`
    /// both mean "durable, send the ack".
    ///
    /// # Errors
    ///
    /// [`GatewayError`] if the WAL append or checkpoint write fails.
    pub fn deliver(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: Vec<f64>,
    ) -> Result<DeliverOutcome, GatewayError> {
        if !self.seqs.entry(sensor).or_default().observe(seq) {
            self.seq_duplicates += 1;
            return Ok(DeliverOutcome::Duplicate);
        }
        let record = WalRecord {
            sensor,
            seq,
            time,
            values,
        };
        self.wal.append(&record)?;
        self.admit(record.raw());
        let logged = self.wal.records_logged();
        if self.config.checkpoint_every > 0 && logged.is_multiple_of(self.config.checkpoint_every) {
            self.write_checkpoint(logged)?;
        }
        Ok(DeliverOutcome::Accepted)
    }

    /// Runs one admitted record through reorder → sanitize → pipeline.
    fn admit(&mut self, record: RawRecord) {
        let sensor = record.sensor;
        let time = record.time;
        if self.reorder.offer(record) == AdmitOutcome::Admitted {
            let heard = self.last_heard.entry(sensor).or_insert(time);
            if time > *heard {
                *heard = time;
            }
            // A reappearing sensor clears its silence (the episode
            // stays counted).
            self.silent.remove(&sensor);
        }
        let mut released = std::mem::take(&mut self.released_scratch);
        self.reorder.drain_ready(&mut released);
        for raw in released.drain(..) {
            self.ingest_released(raw);
        }
        self.released_scratch = released;
        self.update_liveness();
    }

    fn ingest_released(&mut self, raw: RawRecord) {
        match self.sanitizer.accept(raw) {
            Ok(record) => {
                self.accepted += 1;
                if let Some(reading) = record.payload.reading() {
                    let outcomes =
                        self.pipeline
                            .push_values(record.time, record.sensor, reading.values());
                    for outcome in outcomes {
                        self.pipeline.recycle_outcome(outcome);
                    }
                }
                if let Some(log) = &mut self.trace_log {
                    log.push(record);
                }
            }
            Err(e) => self.rejected.push(e),
        }
    }

    fn update_liveness(&mut self) {
        let Some(deadline) = self.config.silence_deadline else {
            return;
        };
        let Some(watermark) = self.reorder.watermark() else {
            return;
        };
        for (&sensor, &heard) in &self.last_heard {
            if watermark > heard.saturating_add(deadline) && self.silent.insert(sensor) {
                self.episodes += 1;
            }
        }
    }

    fn write_checkpoint(&mut self, cursor: u64) -> Result<(), GatewayError> {
        // The WAL prefix must be durable before the checkpoint can
        // reference it, or a power cut could leave the checkpoint
        // pointing past the recovered log.
        self.wal.sync()?;
        let mut text = String::new();
        text.push_str(CHECKPOINT_MAGIC);
        text.push('\n');
        text.push_str(&format!("cursor {cursor}\n"));
        text.push_str(&encode_shard(&self.pipeline.sensor_snapshots()));
        let dir = &self.config.wal.dir;
        let tmp = dir.join("checkpoint.tmp");
        let path = dir.join(CHECKPOINT_FILE);
        fs::write(&tmp, &text).map_err(|e| GatewayError::Io(tmp.clone(), e))?;
        fs::rename(&tmp, &path).map_err(|e| GatewayError::Io(path.clone(), e))?;
        Ok(())
    }

    /// Ingest accounting so far (transport counters merged in).
    pub fn ingest_report(&self) -> IngestReport {
        let stats = self.reorder.stats();
        IngestReport {
            accepted: self.accepted,
            rejected: self.rejected.clone(),
            duplicates: self.seq_duplicates + stats.duplicates,
            late: stats.late,
            shed: stats.shed,
        }
    }

    /// Current silence accounting.
    pub fn liveness(&self) -> LivenessStatus {
        LivenessStatus {
            silent: self
                .silent
                .iter()
                .map(|s| (*s, self.last_heard.get(s).copied().unwrap_or(0)))
                .collect(),
            episodes: self.episodes,
        }
    }

    /// The released trace recorded since
    /// [`record_released_trace`](Collector::record_released_trace).
    pub fn released_trace(&self) -> Option<Trace> {
        self.trace_log
            .as_ref()
            .map(|records| Trace::from_records(records.clone()))
    }

    /// Records currently in the WAL (the checkpoint cursor domain).
    pub fn wal_records(&self) -> u64 {
        self.wal.records_logged()
    }

    /// End of stream: flushes the reorder buffer and the final window,
    /// syncs the WAL, and produces the run's report.
    ///
    /// # Errors
    ///
    /// [`GatewayError`] if the final WAL sync fails.
    pub fn finish(mut self) -> Result<GatewayReport, GatewayError> {
        let mut released = std::mem::take(&mut self.released_scratch);
        self.reorder.flush(&mut released);
        for raw in released.drain(..) {
            self.ingest_released(raw);
        }
        for outcome in self.pipeline.finalize() {
            self.pipeline.recycle_outcome(outcome);
        }
        self.wal.sync()?;
        let ingest = self.ingest_report();
        let liveness = self.liveness();
        let plan = RecoveryPlan::from_pipeline(&self.pipeline);
        let released = self.trace_log.take().map(Trace::from_records);
        Ok(GatewayReport {
            pipeline: self.pipeline.report(),
            ingest,
            liveness,
            plan,
            released,
        })
    }
}

/// Reads and parses the checkpoint file, if present, returning the
/// cursor and the expected [`encode_shard`] fingerprint.
fn read_checkpoint(dir: &std::path::Path) -> Result<Option<(u64, String)>, GatewayError> {
    let path = dir.join(CHECKPOINT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(GatewayError::Io(path, e)),
    };
    let mut lines = text.splitn(3, '\n');
    if lines.next() != Some(CHECKPOINT_MAGIC) {
        return Err(GatewayError::CheckpointMalformed(
            "missing magic header".into(),
        ));
    }
    let cursor = lines
        .next()
        .and_then(|l| l.strip_prefix("cursor "))
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| GatewayError::CheckpointMalformed("bad cursor line".into()))?;
    let fingerprint = lines.next().unwrap_or("").to_string();
    Ok(Some((cursor, fingerprint)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentinet-collector-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &PathBuf) -> GatewayConfig {
        let mut c = GatewayConfig::new(dir);
        c.reorder.watermark_delay = 600;
        c.checkpoint_every = 16;
        c
    }

    /// A small deterministic two-sensor stream.
    fn stream(n: u64) -> Vec<(SensorId, u64, Timestamp, Vec<f64>)> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = 300 * (i + 1);
            for s in 0..2u16 {
                let v = 20.0 + (i % 7) as f64 + s as f64;
                out.push((SensorId(s), i, t, vec![v, v + 30.0]));
            }
        }
        out
    }

    #[test]
    fn seq_tracker_dedups_and_advances() {
        let mut t = SeqTracker::default();
        assert!(t.observe(0));
        assert!(t.observe(2));
        assert!(!t.observe(0));
        assert!(!t.observe(2));
        assert!(t.observe(1));
        assert!(!t.observe(1));
        assert!(t.observe(3));
        assert_eq!(t.next, 4);
        assert!(t.above.is_empty());
    }

    #[test]
    fn duplicate_delivery_is_reacked_not_reprocessed() {
        let dir = tmpdir("dup");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        // Redeliver a prefix: all duplicates, all re-acked.
        for (s, seq, t, v) in stream(5) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Duplicate);
        }
        let report = c.finish().unwrap();
        assert_eq!(report.ingest.duplicates, 10);
        assert_eq!(report.ingest.accepted, 40);
        assert!(report.ingest.rejected.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_resumes_bit_identically() {
        let dir_a = tmpdir("resume-a");
        let dir_b = tmpdir("resume-b");
        let records = stream(120);

        // Uninterrupted run.
        let (mut c, _) = Collector::open(config(&dir_a)).unwrap();
        for (s, seq, t, v) in records.clone() {
            c.deliver(s, seq, t, v).unwrap();
        }
        let baseline = c.finish().unwrap();

        // Interrupted run: drop the collector cold mid-stream (the
        // in-process analogue of kill -9), reopen, keep going — with
        // a retransmitted overlap to exercise recovered dedup state.
        let (mut c, _) = Collector::open(config(&dir_b)).unwrap();
        for (s, seq, t, v) in records[..150].iter().cloned() {
            c.deliver(s, seq, t, v).unwrap();
        }
        drop(c); // no finish(), no flush: simulated crash
        let (mut c2, info) = Collector::open(config(&dir_b)).unwrap();
        assert_eq!(info.replayed, 150);
        assert!(info.verified_cursor.is_some(), "checkpoint verified");
        for (s, seq, t, v) in records[140..].iter().cloned() {
            c2.deliver(s, seq, t, v).unwrap();
        }
        let resumed = c2.finish().unwrap();

        assert_eq!(
            format!("{}", baseline.pipeline),
            format!("{}", resumed.pipeline)
        );
        assert_eq!(baseline.ingest.accepted, resumed.ingest.accepted);
        assert_eq!(resumed.ingest.duplicates, 10, "overlap re-acked");
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn tampered_checkpoint_fails_loudly() {
        let dir = tmpdir("tamper");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(40) {
            c.deliver(s, seq, t, v).unwrap();
        }
        drop(c);
        // Corrupt the checkpoint fingerprint.
        let path = dir.join(CHECKPOINT_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("sensor 0", "sensor 9")).unwrap();
        assert!(matches!(
            Collector::open(config(&dir)),
            Err(GatewayError::CheckpointMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silence_deadline_surfaces_silent_sensor() {
        let dir = tmpdir("silence");
        let mut cfg = config(&dir);
        cfg.silence_deadline = Some(900);
        cfg.reorder.watermark_delay = 0;
        let (mut c, _) = Collector::open(cfg).unwrap();
        // Sensor 1 stops reporting at t=600; sensor 0 keeps going.
        let mut seq = [0u64; 2];
        for i in 1..=20u64 {
            let t = 300 * i;
            c.deliver(SensorId(0), seq[0], t, vec![20.0, 50.0]).unwrap();
            seq[0] += 1;
            if t <= 600 {
                c.deliver(SensorId(1), seq[1], t, vec![21.0, 51.0]).unwrap();
                seq[1] += 1;
            }
        }
        let live = c.liveness();
        assert_eq!(live.silent, vec![(SensorId(1), 600)]);
        assert_eq!(live.episodes, 1);
        // It comes back: silence clears but the episode stays counted.
        c.deliver(SensorId(1), seq[1], 6300, vec![21.0, 51.0])
            .unwrap();
        let live = c.liveness();
        assert!(live.is_live());
        assert_eq!(live.episodes, 1);
        let report = c.finish().unwrap();
        assert!(report.liveness.is_live());
        fs::remove_dir_all(&dir).unwrap();
    }
}
