//! The durable collector: WAL-backed admission into the detection
//! pipeline.
//!
//! Every delivered frame passes through one fixed sequence of gates:
//!
//! ```text
//! frame → seq dedup → WAL append → ack → reorder buffer → sanitizer
//!       → core::Pipeline
//! ```
//!
//! The WAL append happens *before* the ack, so an acknowledged record
//! is durable; everything after the ack (reordering, late/shed drops,
//! sanitization) is a pure deterministic function of the admitted
//! record sequence. Crash recovery exploits exactly that: on open the
//! WAL's records are replayed through the identical admission path, so
//! the rebuilt pipeline is bit-for-bit the state the crashed process
//! would have reached — a `kill -9` at any point resumes to a
//! [`PipelineReport`] identical to an uninterrupted run.
//!
//! Periodic checkpoints are *restore points*: a checkpoint records the
//! WAL cursor plus a full [`CollectorSnapshot`] (pipeline, reorder
//! buffer, sanitizer, dedup state, liveness accounting) at that
//! cursor. While the full log is present, replay re-derives the
//! snapshot when it passes the cursor and fails loudly on mismatch, so
//! silent WAL corruption (or a non-deterministic code change) cannot
//! masquerade as a clean recovery. Once **checkpoint-gated retention**
//! (`WalConfig::retain_bytes`) reclaims sealed segments below the
//! cursor, recovery instead restores the snapshot and replays only the
//! surviving tail — byte-equal to a full-log replay, because the
//! snapshot is the state the deleted prefix would have rebuilt.
//!
//! Storage failures are **fail-stop** (`DESIGN.md` §13): the first
//! failed write or fsync poisons the WAL, [`Collector::deliver`] stops
//! acknowledging (returning [`DeliverOutcome::Rejected`] so the server
//! NACKs), and the typed [`StorageError`] surfaces in
//! [`GatewayReport::storage`]. Restarting on healthy storage replays
//! the acked prefix bit-identically.
//!
//! Liveness: sensors that fall silent do not stall anything — the
//! window barrier is driven by whatever data does arrive. When a
//! sensor's last admission falls a configurable deadline behind the
//! reorder watermark it is declared silent and surfaced in
//! [`LivenessStatus`] (the paper's missing-packet semantics: its
//! absence from the window is itself the signal), recovering
//! automatically if it reports again.

use crate::reorder::{AdmitOutcome, ReorderBuffer, ReorderConfig};
use crate::snapshot::{
    decode_collector, encode_collector, merge_snapshot, split_snapshot, CollectorSnapshot,
};
use crate::vfs::{StorageError, VfsOp};
use crate::wal::{Wal, WalConfig, WalError, WalRecord};
use sentinet_core::{Pipeline, PipelineConfig, PipelineReport, RecoveryPlan};
use sentinet_sim::{IngestReport, RawRecord, Sanitizer, SensorId, Timestamp, Trace, TraceRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Marker line opening a gateway checkpoint file.
const CHECKPOINT_MAGIC: &str = "sentinet-gateway-checkpoint v2";
/// Checkpoint file name inside the WAL directory. Public so pre-warm
/// caches (federation standbys staging the owner's latest snapshot)
/// can read the same bytes [`Collector::open_prewarmed`] will compare.
pub const CHECKPOINT_FILE: &str = "checkpoint.ck";
/// Scratch name the checkpoint is written under before rename-commit.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Marker line opening the fence-token file.
const FENCE_MAGIC: &str = "sentinet-fence v1";
/// Fence-token file name inside the WAL directory: the committed
/// owner epoch, persisted beside the WAL so a stale owner sharing the
/// directory observes its successor.
const FENCE_FILE: &str = "fence.tk";
/// Scratch name the fence token is written under before rename-commit.
const FENCE_TMP: &str = "fence.tmp";
/// Marker line opening the retired-ranges file.
const RETIRED_MAGIC: &str = "sentinet-retired v1";
/// Retired-ranges file name inside the WAL directory: the sensor
/// ranges migrated away from this collector, persisted beside the
/// fence token so a restarted source keeps NACKing the moved range.
const RETIRED_FILE: &str = "retired.tk";
/// Scratch name the retired-ranges file is written under before
/// rename-commit.
const RETIRED_TMP: &str = "retired.tmp";
/// Marker line opening a migration outbox file.
const OUTBOX_MAGIC: &str = "sentinet-outbox v1";

/// Full gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Detection-pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Sensor sampling period in seconds.
    pub sample_period: u64,
    /// Write-ahead log configuration.
    pub wal: WalConfig,
    /// Reorder buffer tuning.
    pub reorder: ReorderConfig,
    /// Declare a sensor silent once its last admission falls this far
    /// behind the watermark (`None` disables liveness tracking).
    pub silence_deadline: Option<Timestamp>,
    /// Write a checkpoint every N WAL records (0 disables).
    pub checkpoint_every: u64,
    /// Record the released stream as a [`Trace`] from the very first
    /// record — including recovery replay, which happens inside
    /// [`Collector::open`] before [`record_released_trace`]
    /// (`Collector::record_released_trace`) could be called.
    pub record_released: bool,
    /// Owner epoch this collector claims over its WAL directory. `0`
    /// disables fencing entirely (standalone collectors pay nothing).
    /// With a non-zero epoch, [`Collector::open`] refuses a directory
    /// whose persisted fence token names a newer epoch, commits its
    /// own token otherwise, and the deliver path fail-stops with
    /// [`RejectCause::Fenced`] once a newer committed epoch is
    /// observed — on disk or via the wire handshake.
    pub epoch: u64,
    /// Whether the deliver-path fence check runs. Production is always
    /// [`FenceCheck::Enforced`]; see [`FenceCheck::Skip`] for the
    /// mutation seam.
    pub fence: FenceCheck,
    /// Whether a migration cut actually ships the moved sub-range.
    /// Production is always [`CutCheck::Enforced`]; see
    /// [`CutCheck::Skip`] for the mutation seam.
    pub cut: CutCheck,
}

/// Whether a fenced collector actually checks for a newer committed
/// epoch on the deliver path.
///
/// The shipped rule is [`FenceCheck::Enforced`]. [`FenceCheck::Skip`]
/// deliberately re-creates the split-brain the fence exists to prevent
/// — a partitioned-but-alive owner keeps appending to a WAL its
/// successor now owns — so the nemesis campaign can prove it *detects*
/// the violation (a mutation-style self-test mirroring
/// [`AckDiscipline::Eager`](crate::harness::AckDiscipline)). Production
/// code must never use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceCheck {
    /// Check the persisted fence token (and any wire-observed epoch)
    /// before every append; fail-stop on a newer committed epoch.
    Enforced,
    /// Never check — the deliberately broken mode the nemesis
    /// campaign's mutation self-test must catch.
    Skip,
}

/// Whether [`Collector::export_range`] actually stages the moved
/// sub-range's state into the migration outbox.
///
/// The shipped rule is [`CutCheck::Enforced`]. [`CutCheck::Skip`]
/// deliberately re-creates the bug the durable-cut step exists to
/// prevent — the source retires the range and rebases onto the outside
/// half, but ships an *empty* inside snapshot, so every reading acked
/// below the cut cursor silently vanishes from the fleet — so the
/// nemesis migration campaign can prove it *detects* the loss (a
/// mutation-style self-test mirroring [`FenceCheck::Skip`]).
/// Production code must never use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutCheck {
    /// Stage the real inside half of the snapshot before the rebase —
    /// the shipped cut-then-ship rule.
    Enforced,
    /// Ship an empty inside snapshot while still retiring the range
    /// and rebasing (the deliberately broken mode the migration
    /// campaign's mutation self-test must catch).
    Skip,
}

impl GatewayConfig {
    /// Defaults around a WAL directory: paper-default pipeline, 300 s
    /// sampling, 30 min watermark, checkpoint every 256 records.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            sample_period: 300,
            wal: WalConfig::new(wal_dir),
            reorder: ReorderConfig::default(),
            silence_deadline: Some(3600),
            checkpoint_every: 256,
            record_released: false,
            epoch: 0,
            fence: FenceCheck::Enforced,
            cut: CutCheck::Enforced,
        }
    }
}

/// A gateway-level failure.
#[derive(Debug)]
pub enum GatewayError {
    /// The write-ahead log failed.
    Wal(WalError),
    /// The checkpoint file exists but cannot be parsed.
    CheckpointMalformed(String),
    /// Replay reached the checkpoint cursor with different collector
    /// state than the checkpoint recorded.
    CheckpointMismatch {
        /// WAL cursor the checkpoint was taken at.
        cursor: u64,
    },
    /// The checkpoint cursor lies beyond the recovered WAL — the log
    /// lost durable records the checkpoint had seen (e.g. power loss
    /// under `fsync=never`).
    CheckpointAhead {
        /// WAL cursor the checkpoint was taken at.
        cursor: u64,
        /// Records actually recovered from the WAL.
        recovered: u64,
    },
    /// The WAL's replayed prefix was reclaimed by retention but the
    /// checkpoint that justified the reclaim is gone — the log alone
    /// can no longer rebuild collector state.
    CheckpointMissing {
        /// Lowest WAL segment present on disk.
        first_segment: u64,
    },
    /// The WAL directory's persisted fence token names a newer owner
    /// epoch than this collector was configured with: a successor has
    /// already committed ownership, so opening would split-brain.
    Fenced {
        /// Epoch committed in the fence token.
        persisted: u64,
        /// Epoch this collector was configured with.
        configured: u64,
    },
    /// A live migration step (range export, snapshot install, range
    /// import) could not be made durable: the cut never commits
    /// halfway, so the caller aborts or retries instead of proceeding
    /// on a collector whose on-disk restore point disagrees with the
    /// shipped snapshot.
    MigrationCut(String),
    /// Filesystem error outside the WAL itself.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Wal(e) => write!(f, "{e}"),
            GatewayError::CheckpointMalformed(reason) => {
                write!(f, "malformed gateway checkpoint: {reason}")
            }
            GatewayError::CheckpointMismatch { cursor } => write!(
                f,
                "checkpoint mismatch at wal cursor {cursor}: replay diverged from checkpointed state"
            ),
            GatewayError::CheckpointAhead { cursor, recovered } => write!(
                f,
                "checkpoint cursor {cursor} beyond recovered wal ({recovered} records); \
                 log lost durable data (consider fsync=always)"
            ),
            GatewayError::CheckpointMissing { first_segment } => write!(
                f,
                "wal starts at retained segment {first_segment} but its checkpoint is missing; \
                 cannot rebuild the reclaimed prefix"
            ),
            GatewayError::Fenced {
                persisted,
                configured,
            } => write!(
                f,
                "wal directory fenced at epoch {persisted}; this collector's epoch {configured} is stale"
            ),
            GatewayError::MigrationCut(reason) => {
                write!(f, "migration cut failed: {reason}")
            }
            GatewayError::Io(path, e) => write!(f, "gateway io error at {}: {e}", path.display()),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<WalError> for GatewayError {
    fn from(e: WalError) -> Self {
        GatewayError::Wal(e)
    }
}

/// Per-sensor sequence-number deduplication window.
///
/// Public so the protocol model checker (`xtask protocol-check`) can
/// drive the *real* dedup/watermark arithmetic as its specification
/// oracle rather than re-implementing it.
#[derive(Debug, Default)]
pub struct SeqTracker {
    /// Lowest sequence number not yet seen.
    next: u64,
    /// Seen sequence numbers above `next` (out-of-order arrivals).
    above: BTreeSet<u64>,
}

impl SeqTracker {
    /// Whether `seq` has not been seen yet (no state change).
    pub fn is_new(&self, seq: u64) -> bool {
        seq >= self.next && !self.above.contains(&seq)
    }

    /// Records `seq`; returns `true` if it was new.
    pub fn observe(&mut self, seq: u64) -> bool {
        if !self.is_new(seq) {
            return false;
        }
        if seq == self.next {
            self.next += 1;
            while self.above.remove(&self.next) {
                self.next += 1;
            }
        } else {
            self.above.insert(seq);
        }
        true
    }

    /// Highest seq such that every seq at or below it has been seen —
    /// the cumulative-ack watermark (`None` before anything arrived).
    pub fn watermark(&self) -> Option<u64> {
        self.next.checked_sub(1)
    }
}

/// Why a delivered frame was refused (the server sends a NACK).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The WAL is poisoned by a storage failure; nothing can be made
    /// durable until the process restarts on healthy storage.
    Storage,
    /// The WAL retention budget is exhausted and nothing below the
    /// checkpoint cursor is reclaimable — counted load shedding.
    WalBudget,
    /// A newer committed owner epoch was observed (in the persisted
    /// fence token or via the wire handshake): this collector is a
    /// stale owner and fail-stops instead of racing its successor.
    Fenced,
}

/// What the server should tell the client about a delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// New record, now durable: ack it.
    Accepted,
    /// Retransmission of an already-durable record: re-ack it.
    Duplicate,
    /// The record could not be made durable: NACK it, never ack. The
    /// client's retry protocol redelivers after restart/recovery.
    Rejected(RejectCause),
}

/// Per-stage wall time accumulated by the collector's ingest path —
/// the bench's stage breakdown. All fields are nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Batch admission: dedup/budget probes plus
    /// reorder/sanitize/pipeline for accepted readings.
    pub admission_ns: u64,
    /// Inside WAL write calls.
    pub wal_append_ns: u64,
    /// Inside WAL fsync calls.
    pub fsync_ns: u64,
}

/// Per-batch admission accounting from [`Collector::deliver_batch`].
///
/// The ack-release rule of the pipelined protocol lives in the two
/// cursor fields: `ack_up_to` is the cumulative watermark the client
/// may be told about, but only once the WAL's synced cursor
/// ([`Collector::synced_cursor`]) has reached `ack_cursor` — i.e. once
/// a completed fsync covers every record this batch appended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Readings newly admitted (appended to the WAL this call).
    pub accepted: usize,
    /// Readings that were retransmissions of already-logged records.
    pub duplicates: usize,
    /// Readings refused — everything from the `nack` coordinate on.
    pub rejected: usize,
    /// Cumulative ack watermark for the sensor after this batch:
    /// every seq at or below it is logged.
    pub ack_up_to: Option<u64>,
    /// WAL cursor a completed fsync must cover before `ack_up_to` may
    /// be released to the client.
    pub ack_cursor: u64,
    /// First refused seq and why (the selective-NACK coordinate; the
    /// client retransmits from here).
    pub nack: Option<(u64, RejectCause)>,
}

/// What recovery found on open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Records replayed from the WAL (only the tail above the restore
    /// point, when one was used).
    pub replayed: u64,
    /// WAL cursor of the checkpoint that was verified bit-exactly
    /// during full-log replay, if one existed.
    pub verified_cursor: Option<u64>,
    /// WAL cursor of the restore-point snapshot state was rebuilt
    /// from, when retention had reclaimed the replay prefix.
    pub restored_from: Option<u64>,
    /// Whether a pre-warmed checkpoint image (staged from a heartbeat
    /// before adoption) matched the on-disk checkpoint byte-for-byte
    /// — the standby adopted from a snapshot it had already validated.
    pub prewarmed: bool,
}

/// Current silence accounting (the gateway's degraded-mode surface,
/// alongside the engine's `DegradedStatus`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessStatus {
    /// Sensors currently past their silence deadline, with the stream
    /// time each was last heard from.
    pub silent: Vec<(SensorId, Timestamp)>,
    /// Silence episodes declared over the whole run, including ones
    /// that later recovered.
    pub episodes: usize,
}

impl LivenessStatus {
    /// Whether every sensor is currently reporting.
    pub fn is_live(&self) -> bool {
        self.silent.is_empty()
    }
}

impl fmt::Display for LivenessStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "liveness: silent sensors [")?;
        for (i, (s, last)) in self.silent.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} (last heard t={last})", s.0)?;
        }
        write!(f, "], {} episode(s) total", self.episodes)
    }
}

/// Storage-health accounting: the fail-stop error (if any) plus the
/// retention and shedding counters. Everything here is *about* the
/// disk, so it is excluded from checkpoints and resets on restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageStatus {
    /// The storage failure that poisoned the WAL, if any. While set,
    /// every delivery is rejected (fail-stop; restart to recover).
    pub error: Option<StorageError>,
    /// Deliveries NACKed because the retention budget was exhausted
    /// with nothing reclaimable.
    pub budget_shed: usize,
    /// Deliveries NACKed because the WAL was already poisoned.
    pub storage_rejects: usize,
    /// Checkpoint writes that failed to commit (the previous
    /// checkpoint survives; retention pauses until one commits).
    pub checkpoint_failures: usize,
    /// Reclaims whose segment deletion failed after the checkpoint
    /// committed (the files become leftovers the next open removes).
    pub reclaim_failures: usize,
    /// WAL segments deleted by checkpoint-gated retention.
    pub reclaimed_segments: usize,
    /// Deliveries NACKed because a newer committed owner epoch fenced
    /// this collector (the expected fail-stop of a stale owner after
    /// failover — accounted separately from storage poisoning).
    pub fence_rejects: usize,
    /// The newer epoch that fenced this collector, if any.
    pub fenced_by: Option<u64>,
}

impl StorageStatus {
    /// Whether storage is healthy and nothing was shed.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
            && self.budget_shed == 0
            && self.storage_rejects == 0
            && self.checkpoint_failures == 0
            && self.reclaim_failures == 0
    }
}

/// Everything a finished gateway run produced.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// The detection pipeline's report — bit-comparable across runs.
    pub pipeline: PipelineReport,
    /// Ingest accounting: sanitizer rejections plus transport-layer
    /// duplicate/late/shed counts.
    pub ingest: IngestReport,
    /// Silence accounting.
    pub liveness: LivenessStatus,
    /// Storage health: poisoning error and retention counters.
    pub storage: StorageStatus,
    /// Recommended per-sensor recovery actions.
    pub plan: RecoveryPlan,
    /// The complete released stream (present when recording was on —
    /// see [`GatewayConfig::record_released`]). Unlike
    /// [`Collector::released_trace`] mid-run, this includes the
    /// records the final flush released.
    pub released: Option<Trace>,
    /// Client-side transport counters (attempts, retransmits,
    /// timeouts, NACKs, reconnects), filled in by harnesses that own
    /// the uplink end of the run — `None` for server-only runs. Kept
    /// out of checkpoints: it describes the wire, not the state.
    pub uplink: Option<crate::client::UplinkStats>,
}

/// The durable collector. Create with [`Collector::open`], feed with
/// [`deliver`](Collector::deliver), close with
/// [`finish`](Collector::finish).
pub struct Collector {
    config: GatewayConfig,
    wal: Wal,
    pipeline: Pipeline,
    sanitizer: Sanitizer,
    reorder: ReorderBuffer,
    seqs: BTreeMap<SensorId, SeqTracker>,
    seq_duplicates: usize,
    accepted: usize,
    rejected: Vec<sentinet_sim::IngestError>,
    last_heard: BTreeMap<SensorId, Timestamp>,
    silent: BTreeSet<SensorId>,
    /// Reorder watermark the last full silence scan ran at. Purely a
    /// scan-skipping cache (never snapshotted): while the watermark is
    /// unchanged only the sensor touched by the current admission can
    /// change silence state, so the per-record scan collapses to O(1).
    liveness_watermark: Option<Timestamp>,
    episodes: usize,
    released_scratch: Vec<RawRecord>,
    trace_log: Option<Vec<TraceRecord>>,
    budget_shed: usize,
    storage_rejects: usize,
    checkpoint_failures: usize,
    reclaim_failures: usize,
    reclaimed_segments: usize,
    /// Newest owner epoch observed (persisted fence token or wire
    /// handshake). Above `config.epoch` ⇒ this collector is fenced.
    observed_epoch: u64,
    fence_rejects: usize,
    /// Half-open sensor ranges migrated away from this collector
    /// ([`Collector::export_range`]); deliveries inside any of them
    /// NACK with [`RejectCause::Fenced`]. Mirrors the persisted
    /// retired-ranges file, sorted by range start.
    retired: Vec<(u16, u16)>,
    /// WAL cursor of the last committed checkpoint (0: none yet) —
    /// what heartbeats advertise so standbys can pre-warm.
    last_checkpoint_cursor: u64,
    /// Wall time spent in batch admission (dedup/budget probes plus
    /// reorder/sanitize/pipeline), for the bench stage breakdown.
    admission_ns: u64,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("wal", &self.wal)
            .field("accepted", &self.accepted)
            .finish()
    }
}

/// A parsed checkpoint file: header coordinates plus the snapshot
/// body (kept as text so full-log replay can verify it byte-exactly).
struct CheckpointData {
    cursor: u64,
    base_segment: u64,
    base_records: u64,
    body: String,
}

impl Collector {
    /// Opens the collector over its WAL directory, rebuilding the
    /// state the previous process died with.
    ///
    /// While the full log is on disk, every record is replayed through
    /// the admission path and the latest checkpoint is *verified*
    /// byte-exactly in passing. Once retention has reclaimed the
    /// prefix below the checkpoint cursor, the checkpoint's
    /// [`CollectorSnapshot`] is restored instead and only the
    /// surviving tail is replayed — the result is byte-equal either
    /// way.
    ///
    /// # Errors
    ///
    /// Any [`GatewayError`]; corruption, checkpoint divergence, a
    /// retained log whose checkpoint is missing, and a fence token
    /// naming a newer epoch ([`GatewayError::Fenced`]) are loud
    /// failures, never silent data loss.
    pub fn open(config: GatewayConfig) -> Result<(Self, RecoveryInfo), GatewayError> {
        Self::open_prewarmed(config, None)
    }

    /// [`Collector::open`] with an optional pre-warmed checkpoint
    /// image: the raw bytes of the partition's checkpoint file, staged
    /// by a standby from heartbeat advertisements before adoption. The
    /// on-disk checkpoint stays authoritative — the cached image is
    /// compared against it and [`RecoveryInfo::prewarmed`] records
    /// whether the standby's staged snapshot was already current.
    ///
    /// # Errors
    ///
    /// As [`Collector::open`].
    pub fn open_prewarmed(
        config: GatewayConfig,
        prewarm: Option<&[u8]>,
    ) -> Result<(Self, RecoveryInfo), GatewayError> {
        // Fence gate first: a directory committed to a newer epoch
        // must never be opened by a stale owner, and a newly adopting
        // owner commits its claim before any append can happen.
        // `FenceCheck::Skip` bypasses the gate entirely — the mutation
        // build must be able to resurrect a stale owner to prove the
        // nemesis campaign catches the resulting split-brain.
        if config.epoch > 0 && config.fence == FenceCheck::Enforced {
            let persisted = read_fence(&config.wal)?;
            if persisted > config.epoch {
                return Err(GatewayError::Fenced {
                    persisted,
                    configured: config.epoch,
                });
            }
            if persisted < config.epoch {
                write_fence(&config.wal, config.epoch)?;
            }
        }
        let prewarmed = match prewarm {
            Some(cached) => config
                .wal
                .vfs
                .read(&config.wal.dir.join(CHECKPOINT_FILE))
                .map(|disk| disk == cached)
                .unwrap_or(false),
            None => false,
        };
        let checkpoint = read_checkpoint(&config.wal)?;
        let checkpoint_cursor = checkpoint.as_ref().map_or(0, |c| c.cursor);
        let retired = read_retired(&config.wal)?;
        let base = checkpoint
            .as_ref()
            .map(|c| (c.base_segment, c.base_records));
        let (wal, records) = match Wal::open(config.wal.clone(), base) {
            Ok(opened) => opened,
            Err(WalError::MissingPrefix { first_segment, .. }) if checkpoint.is_none() => {
                return Err(GatewayError::CheckpointMissing { first_segment })
            }
            Err(e) => return Err(e.into()),
        };
        let base_records = wal.base_records();
        let recovered = base_records + records.len() as u64;
        if let Some(ck) = &checkpoint {
            if ck.cursor > recovered {
                return Err(GatewayError::CheckpointAhead {
                    cursor: ck.cursor,
                    recovered,
                });
            }
            if ck.cursor < ck.base_records {
                return Err(GatewayError::CheckpointMalformed(format!(
                    "cursor {} below base {}",
                    ck.cursor, ck.base_records
                )));
            }
        }

        if let Some(ck) = checkpoint.as_ref().filter(|c| c.base_records > 0) {
            // Restore mode: the prefix below the cursor was reclaimed;
            // rebuild state from the snapshot, replay only the tail.
            let snap = decode_collector(&ck.body).map_err(GatewayError::CheckpointMalformed)?;
            let mut collector = Self::from_snapshot(config, wal, snap)?;
            collector.retired = retired;
            collector.last_checkpoint_cursor = checkpoint_cursor;
            let skip = (ck.cursor - base_records) as usize;
            for record in &records[skip..] {
                collector
                    .seqs
                    .entry(record.sensor)
                    .or_default()
                    .observe(record.seq);
                collector.admit(record.raw());
            }
            let info = RecoveryInfo {
                replayed: (records.len() - skip) as u64,
                verified_cursor: None,
                restored_from: Some(ck.cursor),
                prewarmed,
            };
            return Ok((collector, info));
        }

        // Full-log mode: replay everything, verifying the checkpoint
        // snapshot byte-exactly as the cursor goes by.
        let mut collector = Self::fresh(config, wal);
        collector.retired = retired;
        collector.last_checkpoint_cursor = checkpoint_cursor;
        let mut verified_cursor = None;
        for (i, record) in records.iter().enumerate() {
            collector
                .seqs
                .entry(record.sensor)
                .or_default()
                .observe(record.seq);
            collector.admit(record.raw());
            if let Some(ck) = &checkpoint {
                if ck.cursor == (i + 1) as u64 {
                    let now = encode_collector(&collector.snapshot());
                    if now != ck.body {
                        return Err(GatewayError::CheckpointMismatch { cursor: ck.cursor });
                    }
                    verified_cursor = Some(ck.cursor);
                }
            }
        }
        let info = RecoveryInfo {
            replayed: records.len() as u64,
            verified_cursor,
            restored_from: None,
            prewarmed,
        };
        Ok((collector, info))
    }

    /// A collector with empty state over an opened WAL.
    fn fresh(config: GatewayConfig, wal: Wal) -> Self {
        let pipeline = Pipeline::new(config.pipeline.clone(), config.sample_period);
        let reorder = ReorderBuffer::new(config.reorder.clone());
        let trace_log = config.record_released.then(Vec::new);
        Self {
            config,
            wal,
            pipeline,
            sanitizer: Sanitizer::new(),
            reorder,
            seqs: BTreeMap::new(),
            seq_duplicates: 0,
            accepted: 0,
            rejected: Vec::new(),
            last_heard: BTreeMap::new(),
            silent: BTreeSet::new(),
            liveness_watermark: None,
            episodes: 0,
            released_scratch: Vec::new(),
            trace_log,
            budget_shed: 0,
            storage_rejects: 0,
            checkpoint_failures: 0,
            reclaim_failures: 0,
            reclaimed_segments: 0,
            observed_epoch: 0,
            fence_rejects: 0,
            retired: Vec::new(),
            last_checkpoint_cursor: 0,
            admission_ns: 0,
        }
    }

    /// Rebuilds a collector from a restore-point snapshot. Counters
    /// excluded from the snapshot (retransmissions, storage health,
    /// the released-trace log) start fresh.
    fn from_snapshot(
        config: GatewayConfig,
        wal: Wal,
        snap: CollectorSnapshot,
    ) -> Result<Self, GatewayError> {
        let malformed = |e: String| GatewayError::CheckpointMalformed(e);
        let pipeline =
            Pipeline::from_snapshot(config.pipeline.clone(), config.sample_period, snap.pipeline)
                .map_err(|e| malformed(e.to_string()))?;
        let reorder = ReorderBuffer::from_snapshot(config.reorder.clone(), snap.reorder);
        let sanitizer = Sanitizer::from_snapshot(snap.sanitizer);
        let seqs = snap
            .seqs
            .into_iter()
            .map(|(sensor, next, above)| {
                (
                    sensor,
                    SeqTracker {
                        next,
                        above: above.into_iter().collect(),
                    },
                )
            })
            .collect();
        let trace_log = config.record_released.then(Vec::new);
        Ok(Self {
            config,
            wal,
            pipeline,
            sanitizer,
            reorder,
            seqs,
            seq_duplicates: 0,
            accepted: snap.accepted,
            rejected: snap.rejected,
            last_heard: snap.last_heard.into_iter().collect(),
            silent: snap.silent.into_iter().collect(),
            liveness_watermark: None,
            episodes: snap.episodes,
            released_scratch: Vec::new(),
            trace_log,
            budget_shed: 0,
            storage_rejects: 0,
            checkpoint_failures: 0,
            reclaim_failures: 0,
            reclaimed_segments: 0,
            observed_epoch: 0,
            fence_rejects: 0,
            retired: Vec::new(),
            last_checkpoint_cursor: 0,
            admission_ns: 0,
        })
    }

    /// The replay-deterministic image of this collector (everything a
    /// checkpoint must carry to act as a restore point).
    ///
    /// Public as the federation handoff export hook: a controller
    /// transfers this snapshot (already durable inside the v2
    /// checkpoint) to a standby, which rebuilds the dead collector's
    /// state via [`Collector::open`] on the same WAL directory —
    /// snapshot restore plus WAL-tail replay, the identical admission
    /// path.
    pub fn snapshot(&self) -> CollectorSnapshot {
        CollectorSnapshot {
            pipeline: self.pipeline.snapshot(),
            reorder: self.reorder.snapshot(),
            sanitizer: self.sanitizer.snapshot(),
            seqs: self
                .seqs
                .iter()
                .map(|(&s, t)| (s, t.next, t.above.iter().copied().collect()))
                .collect(),
            accepted: self.accepted,
            rejected: self.rejected.clone(),
            last_heard: self.last_heard.iter().map(|(&s, &t)| (s, t)).collect(),
            silent: self.silent.iter().copied().collect(),
            episodes: self.episodes,
        }
    }

    /// Starts recording the released (post-reorder, pre-sanitize
    /// accepted) stream as a [`Trace`], for re-running through the
    /// sharded engine. Call before any records are delivered.
    pub fn record_released_trace(&mut self) {
        self.trace_log = Some(Vec::new());
    }

    /// The source half of a live range migration: cuts this
    /// collector's state at the current WAL cursor and splits off
    /// `range` for transfer. Three rename-committed steps, each
    /// idempotent so an interrupted cut can be re-driven:
    ///
    /// 1. persist `range` into the retired-ranges file — from here on
    ///    every delivery inside the range NACKs
    ///    [`RejectCause::Fenced`], so no acked reading can postdate
    ///    the cut;
    /// 2. stage the split-off half of the state snapshot in a
    ///    migration *outbox* file, so the shipped payload survives a
    ///    crash between the cut and the transfer;
    /// 3. rebase the live collector onto the remaining half and
    ///    commit a restore-point checkpoint at the cut cursor with
    ///    the whole pre-cut log reclaimed — every later open (and the
    ///    final report replay) rebuilds the post-cut state only.
    ///
    /// Returns the split-off snapshot and the cut cursor. Calling
    /// again with the same range (after a crash mid-cut) resumes: the
    /// staged outbox payload is returned and the remaining steps
    /// re-run.
    ///
    /// # Errors
    ///
    /// [`GatewayError::MigrationCut`] on an empty range,
    /// [`GatewayError::Wal`] on a poisoned log, and any step that
    /// cannot be made durable fails loudly — the collector never
    /// proceeds on a half-committed cut.
    pub fn export_range(
        &mut self,
        range: std::ops::Range<u16>,
    ) -> Result<(CollectorSnapshot, u64), GatewayError> {
        if range.start >= range.end {
            return Err(GatewayError::MigrationCut(format!(
                "empty migration range [{}, {})",
                range.start, range.end
            )));
        }
        if let Some(e) = self.wal.poisoned() {
            return Err(WalError::Storage(e.clone()).into());
        }
        self.sync_wal()?;
        if let Some(e) = self.wal.poisoned() {
            return Err(WalError::Storage(e.clone()).into());
        }
        let key = (range.start, range.end);
        if !self.retired.contains(&key) {
            self.retired.push(key);
            self.retired.sort_unstable();
            self.write_retired()?;
        }
        let (inside, cursor) = match self.read_outbox(key)? {
            // Resuming an interrupted cut: the shipped payload is
            // already committed; only re-run the rebase below.
            Some(staged) => staged,
            None => {
                let cursor = self.wal.records_logged();
                let inside = match self.config.cut {
                    CutCheck::Enforced => split_snapshot(&self.snapshot(), range.clone()).0,
                    // Mutation seam: retire and rebase as usual but
                    // ship nothing — the acked inside readings vanish.
                    CutCheck::Skip => split_snapshot(&self.snapshot(), range.end..range.end).0,
                };
                self.write_outbox(key, cursor, &inside)?;
                (inside, cursor)
            }
        };
        let (_, outside) = split_snapshot(&self.snapshot(), range);
        self.rebase(outside)?;
        self.seal_rebased_checkpoint()?;
        Ok((inside, cursor))
    }

    /// Adopts a migrated sub-range into the live state: merges the
    /// shipped snapshot (per-sensor state replaces, the accounting
    /// ledger stays where the split left it), commits a restore-point
    /// checkpoint so a restart rebuilds the adopted state, and
    /// un-retires `range` if this collector had exported it — the
    /// source's abort path. Idempotent under retry.
    ///
    /// Only sound while the adopter shares the exporter's pipeline
    /// lineage (a fresh destination restores via
    /// [`Collector::install_snapshot`] instead, which keeps the
    /// shipped global model) and no window barrier has advanced past
    /// the cut — the federation aborts a migration before routing
    /// anything new to the moved range.
    ///
    /// # Errors
    ///
    /// [`GatewayError::MigrationCut`] when a step cannot be made
    /// durable; the staged snapshot stays authoritative elsewhere.
    pub fn import_range(
        &mut self,
        range: std::ops::Range<u16>,
        inside: &CollectorSnapshot,
    ) -> Result<(), GatewayError> {
        if let Some(e) = self.wal.poisoned() {
            return Err(WalError::Storage(e.clone()).into());
        }
        self.sync_wal()?;
        if let Some(e) = self.wal.poisoned() {
            return Err(WalError::Storage(e.clone()).into());
        }
        let merged = merge_snapshot(&self.snapshot(), inside);
        self.rebase(merged)?;
        self.seal_rebased_checkpoint()?;
        let key = (range.start, range.end);
        if self.retired.contains(&key) {
            self.retired.retain(|k| k != &key);
            self.write_retired()?;
            self.clear_outbox(range);
        }
        Ok(())
    }

    /// Adopts a shipped sub-range as this collector's state — the
    /// destination half of a live migration, driven by a
    /// `MigrateAccept` frame. A pristine destination (nothing ever
    /// logged or admitted) takes the snapshot wholesale, shipped
    /// pipeline lineage included, and starts its WAL accounting at the
    /// source's cut `cursor` so the restore-point checkpoint it
    /// commits speaks the same cursor coordinates as the shipped
    /// payload. A destination that already holds state — a retried
    /// adoption after a crash-restart, or the source taking its own
    /// range back — merges through [`Collector::import_range`], which
    /// is sound there because both sides share one lineage. Idempotent
    /// under retry either way.
    ///
    /// # Errors
    ///
    /// [`GatewayError::MigrationCut`] when the restore point cannot be
    /// made durable; the source's staged outbox copy stays
    /// authoritative.
    pub fn adopt_range(
        &mut self,
        range: std::ops::Range<u16>,
        cursor: u64,
        inside: &CollectorSnapshot,
    ) -> Result<(), GatewayError> {
        let pristine = self.wal.records_logged() == self.wal.base_records()
            && self.seqs.is_empty()
            && self.accepted == 0
            && self.rejected.is_empty();
        if !pristine {
            return self.import_range(range, inside);
        }
        if !self.wal.advance_base(cursor.max(1)) {
            return Err(GatewayError::MigrationCut(format!(
                "cannot adopt cut cursor {cursor} below existing base {}",
                self.wal.base_records()
            )));
        }
        self.rebase(inside.clone())?;
        self.seal_rebased_checkpoint()
    }

    /// Stages a migrated sub-range snapshot into a fresh WAL directory
    /// as a restore-point checkpoint, so [`Collector::open`] — live
    /// adoption and every later report replay alike — rebuilds the
    /// shipped state through the identical restore-plus-tail path a
    /// retention-reclaimed log uses. `base` is the WAL cursor the
    /// destination's accounting starts at (conventionally the source's
    /// cut cursor; clamped to at least 1 so the checkpoint is
    /// unambiguously a restore point).
    ///
    /// # Errors
    ///
    /// [`GatewayError::MigrationCut`] if the directory already holds a
    /// checkpoint or WAL segments — installing over live state would
    /// silently discard it — and [`GatewayError::Io`] on filesystem
    /// failure.
    pub fn install_snapshot(
        config: &GatewayConfig,
        snap: &CollectorSnapshot,
        base: u64,
    ) -> Result<(), GatewayError> {
        let base = base.max(1);
        let vfs = &config.wal.vfs;
        let dir = &config.wal.dir;
        vfs.create_dir_all(dir)
            .map_err(|e| GatewayError::Io(dir.clone(), e))?;
        let names = vfs
            .list(dir)
            .map_err(|e| GatewayError::Io(dir.clone(), e))?;
        if names
            .iter()
            .any(|n| n == CHECKPOINT_FILE || (n.starts_with("wal-") && n.ends_with(".seg")))
        {
            return Err(GatewayError::MigrationCut(format!(
                "destination {} already holds collector state",
                dir.display()
            )));
        }
        let mut text = String::new();
        text.push_str(CHECKPOINT_MAGIC);
        text.push('\n');
        text.push_str(&format!("cursor {base}\n"));
        text.push_str("base-segment 1\n");
        text.push_str(&format!("base {base}\n"));
        text.push_str(&encode_collector(snap));
        let tmp = dir.join(CHECKPOINT_TMP);
        let path = dir.join(CHECKPOINT_FILE);
        vfs.write_file(&tmp, text.as_bytes())
            .map_err(|e| GatewayError::Io(tmp.clone(), e))?;
        vfs.rename(&tmp, &path)
            .map_err(|e| GatewayError::Io(path, e))
    }

    /// Drops the staged outbox payload for `range` — called once the
    /// destination has durably adopted the shipped snapshot
    /// (`MigrateDone`). Best-effort: a leftover outbox for a retired
    /// range is inert.
    pub fn clear_outbox(&self, range: std::ops::Range<u16>) {
        let _ = self
            .config
            .wal
            .vfs
            .remove_file(&self.outbox_path((range.start, range.end)));
    }

    /// Half-open sensor ranges this collector has migrated away —
    /// deliveries inside them NACK as fenced.
    pub fn retired_ranges(&self) -> &[(u16, u16)] {
        &self.retired
    }

    /// Whether `sensor` falls in a retired (migrated-away) range.
    fn is_retired(&self, sensor: SensorId) -> bool {
        self.retired
            .iter()
            .any(|&(a, b)| a <= sensor.0 && sensor.0 < b)
    }

    /// Replaces the live per-sensor machinery with `snap`, keeping the
    /// WAL handle and the process-local transport counters. The
    /// snapshot carries the accounting ledger (accepted count,
    /// rejection log, silence episodes), so rebasing onto a split half
    /// follows the split's keep-the-ledger-outside convention.
    fn rebase(&mut self, snap: CollectorSnapshot) -> Result<(), GatewayError> {
        let pipeline = Pipeline::from_snapshot(
            self.config.pipeline.clone(),
            self.config.sample_period,
            snap.pipeline,
        )
        .map_err(|e| GatewayError::CheckpointMalformed(e.to_string()))?;
        self.pipeline = pipeline;
        self.reorder = ReorderBuffer::from_snapshot(self.config.reorder.clone(), snap.reorder);
        self.sanitizer = Sanitizer::from_snapshot(snap.sanitizer);
        self.seqs = snap
            .seqs
            .into_iter()
            .map(|(sensor, next, above)| {
                (
                    sensor,
                    SeqTracker {
                        next,
                        above: above.into_iter().collect(),
                    },
                )
            })
            .collect();
        self.accepted = snap.accepted;
        self.rejected = snap.rejected;
        self.last_heard = snap.last_heard.into_iter().collect();
        self.silent = snap.silent.into_iter().collect();
        self.episodes = snap.episodes;
        self.liveness_watermark = None;
        Ok(())
    }

    /// Commits a restore-point checkpoint of the just-rebased state at
    /// the current WAL cursor with every earlier record reclaimed: the
    /// pre-cut log contains the moved range, so it must never replay
    /// again.
    fn seal_rebased_checkpoint(&mut self) -> Result<(), GatewayError> {
        let cursor = self.wal.records_logged();
        if self.wal.segments().last().is_some_and(|s| s.records > 0) {
            self.wal.roll_segment()?;
        }
        if !self.write_checkpoint(cursor, 0)? {
            return Err(GatewayError::MigrationCut(format!(
                "restore-point checkpoint at cursor {cursor} failed to commit"
            )));
        }
        if self.wal.base_records() != cursor {
            return Err(GatewayError::MigrationCut(format!(
                "pre-cut log below cursor {cursor} is not reclaimable (base {})",
                self.wal.base_records()
            )));
        }
        Ok(())
    }

    /// Path of the staged outbox payload for one exported range.
    fn outbox_path(&self, key: (u16, u16)) -> PathBuf {
        self.config
            .wal
            .dir
            .join(format!("outbox-{}-{}.ck", key.0, key.1))
    }

    /// Reads the staged outbox payload for `key`, if a cut already
    /// committed one.
    fn read_outbox(
        &self,
        key: (u16, u16),
    ) -> Result<Option<(CollectorSnapshot, u64)>, GatewayError> {
        let path = self.outbox_path(key);
        let bytes = match self.config.wal.vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(GatewayError::Io(path, e)),
        };
        let text = String::from_utf8(bytes)
            .map_err(|_| GatewayError::CheckpointMalformed("outbox is not utf-8".into()))?;
        let mut lines = text.splitn(3, '\n');
        if lines.next() != Some(OUTBOX_MAGIC) {
            return Err(GatewayError::CheckpointMalformed(
                "outbox missing magic header".into(),
            ));
        }
        let cursor = lines
            .next()
            .and_then(|l| l.strip_prefix("cursor "))
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| GatewayError::CheckpointMalformed("outbox bad `cursor` line".into()))?;
        let snap = decode_collector(lines.next().unwrap_or(""))
            .map_err(GatewayError::CheckpointMalformed)?;
        Ok(Some((snap, cursor)))
    }

    /// Rename-commits the staged outbox payload for `key`.
    fn write_outbox(
        &self,
        key: (u16, u16),
        cursor: u64,
        snap: &CollectorSnapshot,
    ) -> Result<(), GatewayError> {
        let mut text = String::new();
        text.push_str(OUTBOX_MAGIC);
        text.push('\n');
        text.push_str(&format!("cursor {cursor}\n"));
        text.push_str(&encode_collector(snap));
        let vfs = &self.config.wal.vfs;
        let tmp = self
            .config
            .wal
            .dir
            .join(format!("outbox-{}-{}.tmp", key.0, key.1));
        let path = self.outbox_path(key);
        vfs.write_file(&tmp, text.as_bytes())
            .map_err(|e| GatewayError::Io(tmp.clone(), e))?;
        vfs.rename(&tmp, &path)
            .map_err(|e| GatewayError::Io(path, e))
    }

    /// Rename-commits the in-memory retired set to the retired-ranges
    /// file beside the fence token.
    fn write_retired(&self) -> Result<(), GatewayError> {
        let mut text = String::from(RETIRED_MAGIC);
        text.push('\n');
        for (a, b) in &self.retired {
            text.push_str(&format!("range {a} {b}\n"));
        }
        let vfs = &self.config.wal.vfs;
        vfs.create_dir_all(&self.config.wal.dir)
            .map_err(|e| GatewayError::Io(self.config.wal.dir.clone(), e))?;
        let tmp = self.config.wal.dir.join(RETIRED_TMP);
        let path = self.config.wal.dir.join(RETIRED_FILE);
        vfs.write_file(&tmp, text.as_bytes())
            .map_err(|e| GatewayError::Io(tmp.clone(), e))?;
        vfs.rename(&tmp, &path)
            .map_err(|e| GatewayError::Io(path, e))
    }

    /// Handles one delivered `Data` frame. `Accepted` and `Duplicate`
    /// both mean "durable, send the ack"; `Rejected` means the record
    /// could not be made durable and must be NACKed, never acked.
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage failures. Storage failures are
    /// *not* errors here: they surface as
    /// [`DeliverOutcome::Rejected`]`(`[`RejectCause::Storage`]`)` so
    /// the serving loop keeps running (NACKing) while the operator
    /// reads the typed [`StorageError`] from the report.
    pub fn deliver(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: Vec<f64>,
    ) -> Result<DeliverOutcome, GatewayError> {
        if self.fence_breached() || self.is_retired(sensor) {
            self.fence_rejects += 1;
            return Ok(DeliverOutcome::Rejected(RejectCause::Fenced));
        }
        if self.wal.poisoned().is_some() {
            self.storage_rejects += 1;
            return Ok(DeliverOutcome::Rejected(RejectCause::Storage));
        }
        // Non-mutating dedup probe: a rejected record must leave no
        // trace, or replay (which sees only durable records) would
        // diverge from the live run.
        if !self.seqs.get(&sensor).is_none_or(|t| t.is_new(seq)) {
            self.seq_duplicates += 1;
            return Ok(DeliverOutcome::Duplicate);
        }
        let record = WalRecord {
            sensor,
            seq,
            time,
            values,
        };
        if let Some(budget) = self.config.wal.retain_bytes {
            let frame = Wal::framed_len(&record);
            if self.wal.total_bytes() + frame > budget {
                self.reclaim_for_budget(budget.saturating_sub(frame))?;
                if self.wal.poisoned().is_some() {
                    self.storage_rejects += 1;
                    return Ok(DeliverOutcome::Rejected(RejectCause::Storage));
                }
                if self.wal.total_bytes() + frame > budget {
                    self.budget_shed += 1;
                    return Ok(DeliverOutcome::Rejected(RejectCause::WalBudget));
                }
            }
        }
        match self.wal.append(&record) {
            Ok(()) => {}
            Err(WalError::Storage(_)) => {
                self.storage_rejects += 1;
                return Ok(DeliverOutcome::Rejected(RejectCause::Storage));
            }
            Err(e) => return Err(e.into()),
        }
        // Only now — after the append — may the sequence number be
        // marked seen: the record is durable (or will be truncated as
        // a torn tail, in which case it was never acked either).
        self.seqs.entry(sensor).or_default().observe(seq);
        self.admit(record.raw());
        let logged = self.wal.records_logged();
        if self.config.checkpoint_every > 0 && logged.is_multiple_of(self.config.checkpoint_every) {
            self.write_checkpoint(logged, self.config.wal.retain_bytes.unwrap_or(u64::MAX))?;
        }
        Ok(DeliverOutcome::Accepted)
    }

    /// Handles one delivered `DataBatch` frame: dedup, budget
    /// projection, and reorder/sanitize/pipeline admission run per
    /// reading exactly as [`Collector::deliver`] would, but the WAL
    /// append is one contiguous extent ([`Wal::append_many`]) and the
    /// fsync policy is charged per batch — the group-commit fast path.
    ///
    /// Admission stops at the first refused reading (budget exhaustion
    /// or storage failure): the surviving prefix is logged and
    /// admitted, the refusal coordinate comes back in
    /// [`BatchOutcome::nack`], and the suffix is left for the client
    /// to retransmit. Nothing in the batch may be acked until
    /// [`Collector::synced_cursor`] reaches [`BatchOutcome::ack_cursor`].
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage failures only, exactly like
    /// [`Collector::deliver`].
    pub fn deliver_batch(
        &mut self,
        sensor: SensorId,
        first_seq: u64,
        readings: &[(Timestamp, Vec<f64>)],
    ) -> Result<BatchOutcome, GatewayError> {
        let mut out = BatchOutcome {
            accepted: 0,
            duplicates: 0,
            rejected: 0,
            ack_up_to: None,
            ack_cursor: self.wal.records_logged(),
            nack: None,
        };
        if self.fence_breached() || self.is_retired(sensor) {
            self.fence_rejects += readings.len();
            out.rejected = readings.len();
            out.nack = Some((first_seq, RejectCause::Fenced));
            return Ok(out);
        }
        if self.wal.poisoned().is_some() {
            self.storage_rejects += readings.len();
            out.rejected = readings.len();
            out.nack = Some((first_seq, RejectCause::Storage));
            return Ok(out);
        }
        // Pass 1: per-reading dedup probe and cumulative budget
        // projection, collecting the admissible fresh prefix. Probes
        // are non-mutating — a refused reading must leave no trace.
        let mut fresh: Vec<WalRecord> = Vec::with_capacity(readings.len());
        let mut projected = 0u64;
        let mut reclaimed = false;
        let admission_start = std::time::Instant::now();
        for (i, (time, values)) in readings.iter().enumerate() {
            let seq = first_seq + i as u64;
            if !self.seqs.get(&sensor).is_none_or(|t| t.is_new(seq)) {
                self.seq_duplicates += 1;
                out.duplicates += 1;
                continue;
            }
            let record = WalRecord {
                sensor,
                seq,
                time: *time,
                values: values.clone(),
            };
            if let Some(budget) = self.config.wal.retain_bytes {
                let frame = Wal::framed_len(&record);
                if self.wal.total_bytes() + projected + frame > budget && !reclaimed {
                    // One reclaim attempt per batch, before anything
                    // is appended (the checkpoint it writes covers
                    // only records already durable).
                    self.reclaim_for_budget(budget.saturating_sub(projected + frame))?;
                    reclaimed = true;
                }
                if self.wal.poisoned().is_some() {
                    self.storage_rejects += readings.len() - i;
                    out.rejected = readings.len() - i;
                    out.nack = Some((seq, RejectCause::Storage));
                    break;
                }
                if self.wal.total_bytes() + projected + frame > budget {
                    self.budget_shed += readings.len() - i;
                    out.rejected = readings.len() - i;
                    out.nack = Some((seq, RejectCause::WalBudget));
                    break;
                }
                projected += frame;
            }
            fresh.push(record);
        }
        self.admission_ns = self
            .admission_ns
            .saturating_add(admission_start.elapsed().as_nanos() as u64);
        // Pass 2: one contiguous WAL extent for the whole fresh
        // prefix, then per-reading admission. Only after the append
        // may sequence numbers be marked seen.
        if !fresh.is_empty() {
            let logged_before = self.wal.records_logged();
            match self.wal.append_many(&fresh) {
                Ok(()) => {}
                Err(WalError::Storage(_)) => {
                    // Part of the extent may be on disk, but nothing
                    // was observed or admitted: the whole batch is
                    // unacked and the client retransmits it after
                    // restart (dedup absorbs any durable prefix).
                    self.storage_rejects += fresh.len();
                    out.rejected += fresh.len();
                    // The fresh prefix precedes any budget-refused
                    // suffix, so its first seq is the NACK coordinate.
                    out.nack = Some((fresh[0].seq, RejectCause::Storage));
                    return Ok(out);
                }
                Err(e) => return Err(e.into()),
            }
            out.accepted = fresh.len();
            let admit_start = std::time::Instant::now();
            for record in fresh {
                self.seqs
                    .entry(record.sensor)
                    .or_default()
                    .observe(record.seq);
                self.admit(record.raw());
            }
            self.admission_ns = self
                .admission_ns
                .saturating_add(admit_start.elapsed().as_nanos() as u64);
            let logged = self.wal.records_logged();
            let every = self.config.checkpoint_every;
            if every > 0 && logged_before / every < logged / every {
                self.write_checkpoint(logged, self.config.wal.retain_bytes.unwrap_or(u64::MAX))?;
            }
        }
        out.ack_cursor = self.wal.records_logged();
        out.ack_up_to = self.seqs.get(&sensor).and_then(|t| t.watermark());
        Ok(out)
    }

    /// Whether a newer committed owner epoch fences this collector's
    /// appends. Unfenced collectors (`epoch == 0`) and the
    /// [`FenceCheck::Skip`] mutation pay nothing; fenced collectors
    /// re-read the persisted token so a successor's rename-committed
    /// claim is observed before the next append, with a wire-observed
    /// epoch ([`Collector::observe_epoch`]) short-circuiting the read.
    fn fence_breached(&mut self) -> bool {
        if self.config.epoch == 0 || self.config.fence == FenceCheck::Skip {
            return false;
        }
        if self.observed_epoch > self.config.epoch {
            return true;
        }
        if let Ok(persisted) = read_fence(&self.config.wal) {
            if persisted > self.observed_epoch {
                self.observed_epoch = persisted;
            }
        }
        self.observed_epoch > self.config.epoch
    }

    /// Records an owner epoch observed on the wire (a `Hello` or
    /// `Heartbeat` carrying a newer epoch than ours). Once a newer
    /// epoch is observed every delivery fail-stops with
    /// [`RejectCause::Fenced`].
    pub fn observe_epoch(&mut self, epoch: u64) {
        if epoch > self.observed_epoch {
            self.observed_epoch = epoch;
        }
    }

    /// The owner epoch this collector was configured with (0:
    /// unfenced).
    pub fn epoch(&self) -> u64 {
        self.config.epoch
    }

    /// WAL cursor of the last committed checkpoint (0: none yet) —
    /// advertised in heartbeat replies so standbys can pre-warm from
    /// the freshest snapshot.
    pub fn checkpoint_cursor(&self) -> u64 {
        self.last_checkpoint_cursor
    }

    /// Absolute WAL cursor covered by a completed fsync — the ack
    /// gate for [`BatchOutcome::ack_cursor`].
    pub fn synced_cursor(&self) -> u64 {
        self.wal.synced_records()
    }

    /// Records appended but not yet covered by an fsync.
    pub fn unsynced_records(&self) -> u64 {
        self.wal.unsynced_records()
    }

    /// Server-side per-stage wall time accumulated so far (batch
    /// admission, WAL writes, fsyncs) — the bench's ingest stage
    /// breakdown. Transport stages (decode, ack) are counted by the
    /// [`Server`](crate::server::Server) instead.
    pub fn stage_timings(&self) -> StageTimings {
        StageTimings {
            admission_ns: self.admission_ns,
            wal_append_ns: self.wal.append_ns(),
            fsync_ns: self.wal.fsync_ns(),
        }
    }

    /// Forces the group-commit fsync: after `Ok`, every logged record
    /// is covered and every queued ack may be released. A storage
    /// failure poisons the WAL (callers NACK from then on).
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage failures only; fsync failure
    /// is absorbed into the poisoned state like delivery does.
    pub fn sync_wal(&mut self) -> Result<(), GatewayError> {
        if self.wal.poisoned().is_some() || self.wal.unsynced_records() == 0 {
            return Ok(());
        }
        match self.wal.sync() {
            Ok(()) => Ok(()),
            Err(WalError::Storage(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Tries to bring the on-disk WAL under `target` bytes so one more
    /// record fits the retention budget: seals a lone active segment
    /// (sealed segments are the unit of reclaim), then checkpoints at
    /// the current cursor, which reclaims every sealed segment below
    /// it. Storage failures poison the WAL and are left for the caller
    /// to observe.
    fn reclaim_for_budget(&mut self, target: u64) -> Result<(), GatewayError> {
        if self.wal.segments().len() == 1 && self.wal.segments()[0].records > 0 {
            match self.wal.roll_segment() {
                Ok(()) => {}
                Err(WalError::Storage(_)) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
        self.write_checkpoint(self.wal.records_logged(), target)
            .map(|_| ())
    }

    /// Runs one admitted record through reorder → sanitize → pipeline.
    fn admit(&mut self, record: RawRecord) {
        let sensor = record.sensor;
        let time = record.time;
        if self.reorder.offer(record) == AdmitOutcome::Admitted {
            let heard = self.last_heard.entry(sensor).or_insert(time);
            if time > *heard {
                *heard = time;
            }
            // A reappearing sensor clears its silence (the episode
            // stays counted).
            self.silent.remove(&sensor);
        }
        let mut released = std::mem::take(&mut self.released_scratch);
        self.reorder.drain_ready(&mut released);
        for raw in released.drain(..) {
            self.ingest_released(raw);
        }
        self.released_scratch = released;
        self.update_liveness(sensor);
    }

    fn ingest_released(&mut self, raw: RawRecord) {
        match self.sanitizer.accept(raw) {
            Ok(record) => {
                self.accepted += 1;
                if let Some(reading) = record.payload.reading() {
                    let outcomes =
                        self.pipeline
                            .push_values(record.time, record.sensor, reading.values());
                    for outcome in outcomes {
                        self.pipeline.recycle_outcome(outcome);
                    }
                }
                if let Some(log) = &mut self.trace_log {
                    log.push(record);
                }
            }
            Err(e) => self.rejected.push(e),
        }
    }

    /// Re-derives silence membership after one admission. `touched` is
    /// the sensor the admission may have updated `last_heard` for —
    /// while the watermark is unchanged it is the only sensor whose
    /// silence condition can have changed, so the full scan (which
    /// this is observably equivalent to, record for record) runs only
    /// when the watermark advances.
    fn update_liveness(&mut self, touched: SensorId) {
        let Some(deadline) = self.config.silence_deadline else {
            return;
        };
        let Some(watermark) = self.reorder.watermark() else {
            return;
        };
        if self.liveness_watermark == Some(watermark) {
            if let Some(&heard) = self.last_heard.get(&touched) {
                if watermark > heard.saturating_add(deadline) && self.silent.insert(touched) {
                    self.episodes += 1;
                }
            }
            return;
        }
        self.liveness_watermark = Some(watermark);
        for (&sensor, &heard) in &self.last_heard {
            if watermark > heard.saturating_add(deadline) && self.silent.insert(sensor) {
                self.episodes += 1;
            }
        }
    }

    /// Writes a restore-point checkpoint at `cursor` and reclaims WAL
    /// segments down to `reclaim_budget` bytes. The commit order is
    /// the crash-safety argument (`DESIGN.md` §13):
    ///
    /// 1. fsync the WAL — the checkpoint may only reference durable
    ///    records;
    /// 2. plan the reclaim and write the checkpoint *carrying the
    ///    post-reclaim base* to a tmp file; rename-commit it;
    /// 3. only then delete the planned segments.
    ///
    /// A crash (or failure) before the rename leaves the previous
    /// checkpoint intact and deletes nothing; a crash between rename
    /// and deletion leaves leftover segments below the committed base,
    /// which the next open removes.
    ///
    /// Failures are absorbed into counters, not propagated: a failed
    /// sync poisons the WAL (deliveries start rejecting), and a failed
    /// commit keeps the previous checkpoint authoritative. Returns
    /// whether the checkpoint rename-committed — the periodic cadence
    /// ignores it, but a migration cut must fail loudly instead of
    /// leaving a restore point that disagrees with the shipped
    /// snapshot.
    fn write_checkpoint(&mut self, cursor: u64, reclaim_budget: u64) -> Result<bool, GatewayError> {
        // Skip the force when the synced watermark already covers the
        // cursor (always true under `FsyncPolicy::Never`, and after a
        // policy fsync covered the extent) — the sync would be a no-op
        // and its fsync pure overhead on the group-commit hot path.
        if self.wal.unsynced_records() > 0 {
            match self.wal.sync() {
                Ok(()) => {}
                Err(WalError::Storage(_)) => return Ok(false),
                Err(e) => return Err(e.into()),
            }
        }
        let plan = self.wal.plan_reclaim(cursor, reclaim_budget);
        let mut text = String::new();
        text.push_str(CHECKPOINT_MAGIC);
        text.push('\n');
        text.push_str(&format!("cursor {cursor}\n"));
        text.push_str(&format!("base-segment {}\n", plan.base_segment));
        text.push_str(&format!("base {}\n", plan.base_records));
        text.push_str(&encode_collector(&self.snapshot()));
        let vfs = Arc::clone(&self.config.wal.vfs);
        let dir = &self.config.wal.dir;
        let tmp = dir.join(CHECKPOINT_TMP);
        let path = dir.join(CHECKPOINT_FILE);
        let committed = vfs
            .write_file(&tmp, text.as_bytes())
            .map_err(|e| StorageError::new(VfsOp::Write, &tmp, &e))
            .and_then(|()| {
                vfs.rename(&tmp, &path)
                    .map_err(|e| StorageError::new(VfsOp::Rename, &path, &e))
            });
        if committed.is_err() {
            self.checkpoint_failures += 1;
            return Ok(false);
        }
        self.last_checkpoint_cursor = cursor;
        if !plan.is_empty() {
            match self.wal.execute_reclaim(&plan) {
                Ok(()) => self.reclaimed_segments += plan.delete.len(),
                Err(_) => self.reclaim_failures += 1,
            }
        }
        Ok(true)
    }

    /// Ingest accounting so far (transport counters merged in).
    pub fn ingest_report(&self) -> IngestReport {
        let stats = self.reorder.stats();
        IngestReport {
            accepted: self.accepted,
            rejected: self.rejected.clone(),
            duplicates: self.seq_duplicates + stats.duplicates,
            late: stats.late,
            shed: stats.shed,
        }
    }

    /// Current silence accounting.
    pub fn liveness(&self) -> LivenessStatus {
        LivenessStatus {
            silent: self
                .silent
                .iter()
                .map(|s| (*s, self.last_heard.get(s).copied().unwrap_or(0)))
                .collect(),
            episodes: self.episodes,
        }
    }

    /// Current storage health: fail-stop error plus retention and
    /// shedding counters.
    pub fn storage_status(&self) -> StorageStatus {
        StorageStatus {
            error: self.wal.poisoned().cloned(),
            budget_shed: self.budget_shed,
            storage_rejects: self.storage_rejects,
            checkpoint_failures: self.checkpoint_failures,
            reclaim_failures: self.reclaim_failures,
            reclaimed_segments: self.reclaimed_segments,
            fence_rejects: self.fence_rejects,
            fenced_by: (self.config.epoch > 0 && self.observed_epoch > self.config.epoch)
                .then_some(self.observed_epoch),
        }
    }

    /// The released trace recorded since
    /// [`record_released_trace`](Collector::record_released_trace).
    pub fn released_trace(&self) -> Option<Trace> {
        self.trace_log
            .as_ref()
            .map(|records| Trace::from_records(records.clone()))
    }

    /// Absolute WAL cursor: records ever logged, including any
    /// reclaimed prefix (the checkpoint cursor domain).
    pub fn wal_records(&self) -> u64 {
        self.wal.records_logged()
    }

    /// Bytes the WAL currently occupies on disk (what
    /// `--wal-retain-bytes` bounds).
    pub fn wal_footprint(&self) -> u64 {
        self.wal.total_bytes()
    }

    /// End of stream: flushes the reorder buffer and the final window,
    /// syncs the WAL, and produces the run's report.
    ///
    /// Never fails on storage: a poisoned WAL (including a final sync
    /// that fails) is reported through [`GatewayReport::storage`]
    /// instead, so the operator always gets the run's accounting.
    ///
    /// # Errors
    ///
    /// [`GatewayError`] on non-storage failures only.
    pub fn finish(mut self) -> Result<GatewayReport, GatewayError> {
        let mut released = std::mem::take(&mut self.released_scratch);
        self.reorder.flush(&mut released);
        for raw in released.drain(..) {
            self.ingest_released(raw);
        }
        for outcome in self.pipeline.finalize() {
            self.pipeline.recycle_outcome(outcome);
        }
        if self.wal.poisoned().is_none() {
            // A failure here poisons the WAL; it is surfaced via the
            // storage status rather than aborting the report.
            let _ = self.wal.sync();
        }
        let ingest = self.ingest_report();
        let liveness = self.liveness();
        let storage = self.storage_status();
        let plan = RecoveryPlan::from_pipeline(&self.pipeline);
        let released = self.trace_log.take().map(Trace::from_records);
        Ok(GatewayReport {
            pipeline: self.pipeline.report(),
            ingest,
            liveness,
            storage,
            plan,
            released,
            uplink: None,
        })
    }
}

/// Reads the persisted fence token through the configured
/// [`Vfs`](crate::vfs::Vfs); a missing or unreadable token reads as
/// epoch 0 (the directory was never fenced — or the read raced the
/// successor's rename-commit, in which case the next read observes
/// the committed token).
fn read_fence(config: &WalConfig) -> Result<u64, GatewayError> {
    let path = config.dir.join(FENCE_FILE);
    let bytes = match config.vfs.read(&path) {
        Ok(b) => b,
        Err(_) => return Ok(0),
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| GatewayError::CheckpointMalformed("fence token is not utf-8".into()))?;
    let mut lines = text.lines();
    if lines.next() != Some(FENCE_MAGIC) {
        return Err(GatewayError::CheckpointMalformed(
            "fence token missing magic header".into(),
        ));
    }
    lines
        .next()
        .and_then(|l| l.strip_prefix("epoch "))
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| GatewayError::CheckpointMalformed("fence token bad `epoch` line".into()))
}

/// Reads the persisted retired-ranges file through the configured
/// [`Vfs`](crate::vfs::Vfs); a missing or unreadable file reads as
/// empty — the directory never exported a range.
fn read_retired(config: &WalConfig) -> Result<Vec<(u16, u16)>, GatewayError> {
    let path = config.dir.join(RETIRED_FILE);
    let bytes = match config.vfs.read(&path) {
        Ok(b) => b,
        Err(_) => return Ok(Vec::new()),
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| GatewayError::CheckpointMalformed("retired ranges not utf-8".into()))?;
    let mut lines = text.lines();
    if lines.next() != Some(RETIRED_MAGIC) {
        return Err(GatewayError::CheckpointMalformed(
            "retired ranges missing magic header".into(),
        ));
    }
    let mut out = Vec::new();
    for line in lines {
        let mut parts = line.strip_prefix("range ").unwrap_or("").split(' ');
        match (
            parts.next().and_then(|n| n.parse::<u16>().ok()),
            parts.next().and_then(|n| n.parse::<u16>().ok()),
            parts.next(),
        ) {
            (Some(a), Some(b), None) if a < b => out.push((a, b)),
            _ => {
                return Err(GatewayError::CheckpointMalformed(format!(
                    "retired ranges bad line `{line}`"
                )))
            }
        }
    }
    Ok(out)
}

/// Commits `epoch` as the directory's fence token (tmp + rename, like
/// the checkpoint), through the configured [`Vfs`](crate::vfs::Vfs).
/// A failure here is an open-time error: without a committed token the
/// single-writer guarantee cannot be made.
fn write_fence(config: &WalConfig, epoch: u64) -> Result<(), GatewayError> {
    let text = format!("{FENCE_MAGIC}\nepoch {epoch}\n");
    config
        .vfs
        .create_dir_all(&config.dir)
        .map_err(|e| GatewayError::Io(config.dir.clone(), e))?;
    let tmp = config.dir.join(FENCE_TMP);
    let path = config.dir.join(FENCE_FILE);
    config
        .vfs
        .write_file(&tmp, text.as_bytes())
        .map_err(|e| GatewayError::Io(tmp.clone(), e))?;
    config
        .vfs
        .rename(&tmp, &path)
        .map_err(|e| GatewayError::Io(path, e))
}

/// Reads and parses the checkpoint file, if present, through the
/// configured [`Vfs`](crate::vfs::Vfs).
fn read_checkpoint(config: &WalConfig) -> Result<Option<CheckpointData>, GatewayError> {
    let path = config.dir.join(CHECKPOINT_FILE);
    let bytes = match config.vfs.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(GatewayError::Io(path, e)),
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| GatewayError::CheckpointMalformed("checkpoint is not utf-8".into()))?;
    let mut lines = text.splitn(5, '\n');
    if lines.next() != Some(CHECKPOINT_MAGIC) {
        return Err(GatewayError::CheckpointMalformed(
            "missing magic header".into(),
        ));
    }
    let mut header = |tag: &str| {
        lines
            .next()
            .and_then(|l| l.strip_prefix(tag))
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| GatewayError::CheckpointMalformed(format!("bad `{tag}` line")))
    };
    let cursor = header("cursor ")?;
    let base_segment = header("base-segment ")?;
    let base_records = header("base ")?;
    if base_segment == 0 {
        return Err(GatewayError::CheckpointMalformed(
            "base-segment must be at least 1".into(),
        ));
    }
    let body = lines.next().unwrap_or("").to_string();
    Ok(Some(CheckpointData {
        cursor,
        base_segment,
        base_records,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, FaultSpec, FaultyVfs, StorageFault};
    use crate::wal::FsyncPolicy;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentinet-collector-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &PathBuf) -> GatewayConfig {
        let mut c = GatewayConfig::new(dir);
        c.reorder.watermark_delay = 600;
        c.checkpoint_every = 16;
        c
    }

    /// A small deterministic two-sensor stream.
    fn stream(n: u64) -> Vec<(SensorId, u64, Timestamp, Vec<f64>)> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = 300 * (i + 1);
            for s in 0..2u16 {
                let v = 20.0 + (i % 7) as f64 + s as f64;
                out.push((SensorId(s), i, t, vec![v, v + 30.0]));
            }
        }
        out
    }

    /// Runs the whole stream on a fresh dir and returns the report.
    fn baseline(name: &str, records: &[(SensorId, u64, Timestamp, Vec<f64>)]) -> GatewayReport {
        let dir = tmpdir(name);
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in records.iter().cloned() {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let report = c.finish().unwrap();
        fs::remove_dir_all(&dir).unwrap();
        report
    }

    /// Runs `stream(4)` through a collector configured by `tweak` on a
    /// fault-free `FaultyVfs` and returns the total fsync count.
    fn fsyncs_for(name: &str, tweak: impl Fn(&mut GatewayConfig)) -> u64 {
        let dir = tmpdir(name);
        let vfs = Arc::new(FaultyVfs::new(FaultPlan::new()));
        let mut cfg = config(&dir);
        cfg.wal.vfs = vfs.clone();
        tweak(&mut cfg);
        let expect_checkpoint = cfg.checkpoint_every != 0;
        let (mut c, _) = Collector::open(cfg).unwrap();
        for (s, seq, t, v) in stream(4) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        c.finish().unwrap();
        assert_eq!(
            dir.join(CHECKPOINT_FILE).exists(),
            expect_checkpoint,
            "checkpoint cadence must behave as configured"
        );
        fs::remove_dir_all(&dir).unwrap();
        vfs.op_count(VfsOp::Fsync)
    }

    /// The checkpoint fast path: when the synced watermark already
    /// covers the cursor (`Wal::unsynced_records() == 0`, as under
    /// `FsyncPolicy::Always`), `write_checkpoint` performs zero fsync
    /// calls — a per-record checkpoint cadence costs exactly as many
    /// fsyncs as no checkpoints at all. Under a lazy policy the same
    /// cadence forces syncs, which pins that the counter would have
    /// caught a regression in the fast path.
    #[test]
    fn checkpoint_adds_no_fsync_when_watermark_covers_cursor() {
        let eager_every = fsyncs_for("ckpt-eager-every", |c| {
            c.wal.fsync = FsyncPolicy::Always;
            c.checkpoint_every = 1;
        });
        let eager_finish_only = fsyncs_for("ckpt-eager-finish", |c| {
            c.wal.fsync = FsyncPolicy::Always;
            // No checkpoints at all: the baseline fsync count.
            c.checkpoint_every = 0;
        });
        assert_eq!(
            eager_every, eager_finish_only,
            "checkpoints on the fast path must not add fsyncs"
        );

        let lazy_every = fsyncs_for("ckpt-lazy-every", |c| {
            c.wal.fsync = FsyncPolicy::Batch(1_000);
            c.checkpoint_every = 1;
        });
        let lazy_finish_only = fsyncs_for("ckpt-lazy-finish", |c| {
            c.wal.fsync = FsyncPolicy::Batch(1_000);
            c.checkpoint_every = 0;
        });
        assert!(
            lazy_every > lazy_finish_only,
            "a lazy policy must show checkpoint-forced syncs \
             ({lazy_every} vs {lazy_finish_only}); otherwise this test \
             could not detect fast-path regressions"
        );
    }

    #[test]
    fn seq_tracker_dedups_and_advances() {
        let mut t = SeqTracker::default();
        assert!(t.is_new(0));
        assert!(t.observe(0));
        assert!(t.observe(2));
        assert!(!t.is_new(0));
        assert!(!t.is_new(2));
        assert!(!t.observe(0));
        assert!(!t.observe(2));
        assert!(t.is_new(1));
        assert!(t.observe(1));
        assert!(!t.observe(1));
        assert!(t.observe(3));
        assert_eq!(t.next, 4);
        assert!(t.above.is_empty());
    }

    #[test]
    fn duplicate_delivery_is_reacked_not_reprocessed() {
        let dir = tmpdir("dup");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        // Redeliver a prefix: all duplicates, all re-acked.
        for (s, seq, t, v) in stream(5) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Duplicate);
        }
        let report = c.finish().unwrap();
        assert_eq!(report.ingest.duplicates, 10);
        assert_eq!(report.ingest.accepted, 40);
        assert!(report.ingest.rejected.is_empty());
        assert!(report.storage.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_resumes_bit_identically() {
        let dir_b = tmpdir("resume-b");
        let records = stream(120);
        let baseline = baseline("resume-a", &records);

        // Interrupted run: drop the collector cold mid-stream (the
        // in-process analogue of kill -9), reopen, keep going — with
        // a retransmitted overlap to exercise recovered dedup state.
        let (mut c, _) = Collector::open(config(&dir_b)).unwrap();
        for (s, seq, t, v) in records[..150].iter().cloned() {
            c.deliver(s, seq, t, v).unwrap();
        }
        drop(c); // no finish(), no flush: simulated crash
        let (mut c2, info) = Collector::open(config(&dir_b)).unwrap();
        assert_eq!(info.replayed, 150);
        assert!(info.verified_cursor.is_some(), "checkpoint verified");
        assert_eq!(info.restored_from, None, "full log still present");
        for (s, seq, t, v) in records[140..].iter().cloned() {
            c2.deliver(s, seq, t, v).unwrap();
        }
        let resumed = c2.finish().unwrap();

        assert_eq!(
            format!("{}", baseline.pipeline),
            format!("{}", resumed.pipeline)
        );
        assert_eq!(baseline.ingest.accepted, resumed.ingest.accepted);
        assert_eq!(resumed.ingest.duplicates, 10, "overlap re-acked");
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn tampered_checkpoint_fails_loudly() {
        let dir = tmpdir("tamper");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(40) {
            c.deliver(s, seq, t, v).unwrap();
        }
        drop(c);
        // Corrupt the checkpoint snapshot body.
        let path = dir.join(CHECKPOINT_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("sensor 0", "sensor 9")).unwrap();
        assert!(matches!(
            Collector::open(config(&dir)),
            Err(GatewayError::CheckpointMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silence_deadline_surfaces_silent_sensor() {
        let dir = tmpdir("silence");
        let mut cfg = config(&dir);
        cfg.silence_deadline = Some(900);
        cfg.reorder.watermark_delay = 0;
        let (mut c, _) = Collector::open(cfg).unwrap();
        // Sensor 1 stops reporting at t=600; sensor 0 keeps going.
        let mut seq = [0u64; 2];
        for i in 1..=20u64 {
            let t = 300 * i;
            c.deliver(SensorId(0), seq[0], t, vec![20.0, 50.0]).unwrap();
            seq[0] += 1;
            if t <= 600 {
                c.deliver(SensorId(1), seq[1], t, vec![21.0, 51.0]).unwrap();
                seq[1] += 1;
            }
        }
        let live = c.liveness();
        assert_eq!(live.silent, vec![(SensorId(1), 600)]);
        assert_eq!(live.episodes, 1);
        // It comes back: silence clears but the episode stays counted.
        c.deliver(SensorId(1), seq[1], 6300, vec![21.0, 51.0])
            .unwrap();
        let live = c.liveness();
        assert!(live.is_live());
        assert_eq!(live.episodes, 1);
        let report = c.finish().unwrap();
        assert!(report.liveness.is_live());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_stops_acking_and_restart_replays_bit_identically() {
        let records = stream(40);
        let expect = baseline("fsync-base", &records);

        let dir = tmpdir("fsync-fault");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: ".seg".into(),
            op: VfsOp::Fsync,
            nth: 30,
            kind: StorageFault::FsyncFail,
            count: 1,
        });
        let mut cfg = config(&dir);
        cfg.wal.fsync = FsyncPolicy::Always;
        cfg.wal.vfs = Arc::new(FaultyVfs::new(plan));
        let (mut c, _) = Collector::open(cfg).unwrap();
        let mut acked = 0usize;
        let mut rejected = 0usize;
        for (s, seq, t, v) in records.iter().cloned() {
            match c.deliver(s, seq, t, v).unwrap() {
                DeliverOutcome::Accepted => {
                    assert_eq!(rejected, 0, "no ack may follow a storage failure");
                    acked += 1;
                }
                DeliverOutcome::Duplicate => unreachable!("stream has no duplicates"),
                DeliverOutcome::Rejected(cause) => {
                    assert_eq!(cause, RejectCause::Storage);
                    rejected += 1;
                }
            }
        }
        assert!(acked > 0 && rejected > 0, "fault hit mid-stream");
        let status = c.storage_status();
        let err = status.error.expect("wal poisoned");
        assert_eq!(err.op, VfsOp::Fsync, "typed error names the fsync");
        assert_eq!(status.storage_rejects, rejected);
        let report = c.finish().unwrap();
        assert!(report.storage.error.is_some(), "report carries the error");

        // Restart on healthy storage: the acked prefix replays, and
        // redelivering the whole stream converges to the clean run.
        let (mut c2, info) = Collector::open(config(&dir)).unwrap();
        assert!(info.replayed >= acked as u64, "every acked record survived");
        for (s, seq, t, v) in records.iter().cloned() {
            assert!(matches!(
                c2.deliver(s, seq, t, v).unwrap(),
                DeliverOutcome::Accepted | DeliverOutcome::Duplicate
            ));
        }
        let resumed = c2.finish().unwrap();
        assert_eq!(
            format!("{}", expect.pipeline),
            format!("{}", resumed.pipeline)
        );
        assert_eq!(expect.ingest.accepted, resumed.ingest.accepted);
        assert!(resumed.storage.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_wal_under_budget_and_restores_byte_equal() {
        let records = stream(150);
        let expect = baseline("retain-base", &records);

        let dir = tmpdir("retain");
        let frame = 21 + 8 * 2 + 8; // framed_len of a 2-value record
        let budget = 4 * 16 * frame;
        let mut cfg = config(&dir);
        cfg.wal.segment_max_bytes = 16 * frame;
        cfg.wal.retain_bytes = Some(budget);
        let (mut c, _) = Collector::open(cfg.clone()).unwrap();
        for (s, seq, t, v) in records[..200].iter().cloned() {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
            assert!(c.wal_footprint() <= budget, "soak holds the budget");
        }
        let status = c.storage_status();
        assert!(status.reclaimed_segments > 0, "retention reclaimed");
        assert_eq!(status.budget_shed, 0, "nothing shed under this budget");
        drop(c); // crash

        // The prefix is gone, so recovery must restore the snapshot.
        let (mut c2, info) = Collector::open(cfg.clone()).unwrap();
        let restored = info.restored_from.expect("restore point used");
        assert!(restored > 0 && info.replayed < 200);
        for (s, seq, t, v) in records[190..].iter().cloned() {
            let out = c2.deliver(s, seq, t, v).unwrap();
            assert!(matches!(
                out,
                DeliverOutcome::Accepted | DeliverOutcome::Duplicate
            ));
            assert!(c2.wal_footprint() <= budget);
        }
        let resumed = c2.finish().unwrap();
        assert_eq!(
            format!("{}", expect.pipeline),
            format!("{}", resumed.pipeline),
            "retained run byte-equal to the unretained one"
        );
        assert_eq!(expect.ingest.accepted, resumed.ingest.accepted);
        assert_eq!(resumed.ingest.duplicates, 10, "overlap re-acked");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_checkpoint_commit_and_delete_recovers() {
        let records = stream(120);
        let expect = baseline("leftover-base", &records);

        // Every segment deletion fails: on-disk state is exactly a
        // crash between checkpoint rename-commit and the deletes.
        let dir = tmpdir("leftover");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: ".seg".into(),
            op: VfsOp::Remove,
            nth: 1,
            kind: StorageFault::Enospc,
            count: u32::MAX,
        });
        let frame = 21 + 8 * 2 + 8;
        let mut cfg = config(&dir);
        cfg.wal.segment_max_bytes = 16 * frame;
        cfg.wal.retain_bytes = Some(4 * 16 * frame);
        let mut faulty = cfg.clone();
        faulty.wal.vfs = Arc::new(FaultyVfs::new(plan));
        let (mut c, _) = Collector::open(faulty).unwrap();
        for (s, seq, t, v) in records[..200].iter().cloned() {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let status = c.storage_status();
        assert!(status.reclaim_failures > 0, "deletes failed");
        assert_eq!(status.reclaimed_segments, 0);
        assert!(status.error.is_none(), "delete failure does not poison");
        drop(c); // crash with leftover segments on disk

        // Recovery deletes the leftovers below the committed base and
        // continues bit-identically on healthy storage.
        assert!(dir.join("wal-00000001.seg").exists(), "leftover present");
        let (mut c2, info) = Collector::open(cfg).unwrap();
        assert!(!dir.join("wal-00000001.seg").exists(), "leftover removed");
        assert!(info.restored_from.is_some());
        for (s, seq, t, v) in records[190..].iter().cloned() {
            c2.deliver(s, seq, t, v).unwrap();
        }
        let resumed = c2.finish().unwrap();
        assert_eq!(
            format!("{}", expect.pipeline),
            format!("{}", resumed.pipeline)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_exhaustion_sheds_with_counted_nacks() {
        // Checkpoints never commit (rename always fails), so retention
        // can never reclaim: once the budget fills, deliveries are
        // NACKed as WalBudget, not silently dropped and never acked.
        let dir = tmpdir("shed");
        let plan = FaultPlan::new().with_fault(FaultSpec {
            path: CHECKPOINT_FILE.into(),
            op: VfsOp::Rename,
            nth: 1,
            kind: StorageFault::Enospc,
            count: u32::MAX,
        });
        let frame: u64 = 21 + 8 * 2 + 8;
        let mut cfg = config(&dir);
        cfg.wal.retain_bytes = Some(3 * frame);
        cfg.wal.vfs = Arc::new(FaultyVfs::new(plan));
        let (mut c, _) = Collector::open(cfg).unwrap();
        let mut acked = 0usize;
        let mut shed = 0usize;
        for (s, seq, t, v) in stream(10) {
            match c.deliver(s, seq, t, v).unwrap() {
                DeliverOutcome::Accepted => acked += 1,
                DeliverOutcome::Rejected(RejectCause::WalBudget) => shed += 1,
                other => unreachable!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(acked, 3, "budget holds exactly three frames");
        assert_eq!(shed, 17);
        let status = c.storage_status();
        assert_eq!(status.budget_shed, 17);
        assert!(status.checkpoint_failures > 0, "commit failures counted");
        assert!(status.error.is_none(), "shedding is not poisoning");
        let report = c.finish().unwrap();
        assert_eq!(report.storage.budget_shed, 17);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_fault_sweep_always_recovers_to_baseline() {
        // Kill-anywhere property: whatever a seeded fault schedule
        // does to a run, restarting on healthy storage and
        // redelivering the stream converges to the clean baseline.
        let records = stream(30);
        let expect = baseline("sweep-base", &records);
        for seed in 0..12u64 {
            let dir = tmpdir(&format!("sweep-{seed}"));
            let plan = FaultPlan::seeded(seed, &[".seg", CHECKPOINT_FILE, CHECKPOINT_TMP], 3);
            let mut cfg = config(&dir);
            cfg.wal.fsync = FsyncPolicy::Batch(4);
            cfg.wal.segment_max_bytes = 512;
            cfg.wal.vfs = Arc::new(FaultyVfs::new(plan));
            if let Ok((mut c, _)) = Collector::open(cfg) {
                for (s, seq, t, v) in records.iter().cloned() {
                    if c.deliver(s, seq, t, v).is_err() {
                        break; // treat as a crash
                    }
                }
                drop(c); // crash without finish
            }
            let (mut c, _) = Collector::open(config(&dir))
                .unwrap_or_else(|e| panic!("seed {seed}: clean reopen failed: {e}"));
            for (s, seq, t, v) in records.iter().cloned() {
                let out = c.deliver(s, seq, t, v).unwrap();
                assert!(
                    matches!(out, DeliverOutcome::Accepted | DeliverOutcome::Duplicate),
                    "seed {seed}: healthy storage must ack ({out:?})"
                );
            }
            let report = c.finish().unwrap();
            assert_eq!(
                format!("{}", expect.pipeline),
                format!("{}", report.pipeline),
                "seed {seed}: recovery diverged from baseline"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Epoch fencing, happy path: a successor at a newer epoch commits
    /// its fence token on open; the superseded collector then refuses
    /// to reopen (`GatewayError::Fenced`) — the single-writer claim is
    /// durable before the successor ever appends.
    #[test]
    fn stale_epoch_cannot_reopen_fenced_wal() {
        let dir = tmpdir("fence-reopen");
        let mut cfg = config(&dir);
        cfg.epoch = 1;
        let (mut c, _) = Collector::open(cfg).unwrap();
        for (s, seq, t, v) in stream(4) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        drop(c); // crash without finish; epoch-1 token stays committed

        // Failover: a successor adopts the dir at epoch 2.
        let mut cfg = config(&dir);
        cfg.epoch = 2;
        let (c2, rec) = Collector::open(cfg).unwrap();
        assert_eq!(rec.replayed, 8);
        assert_eq!(c2.epoch(), 2);
        drop(c2);

        // The partitioned-away epoch-1 owner heals and tries to come
        // back: it must fail-stop at open, not race the successor.
        let mut cfg = config(&dir);
        cfg.epoch = 1;
        match Collector::open(cfg) {
            Err(GatewayError::Fenced {
                persisted,
                configured,
            }) => {
                assert_eq!((persisted, configured), (2, 1));
            }
            other => panic!("stale reopen must be fenced, got {other:?}"),
        }
        // An unfenced (epoch 0) open still works — standalone
        // single-collector deployments never see fencing.
        let (mut c3, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(4) {
            assert_eq!(c3.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Duplicate);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Epoch fencing, live path: a collector that *observes* a newer
    /// epoch on the wire (Hello/Heartbeat from a newer-epoch peer)
    /// fail-stops its deliver path with typed `Fenced` rejects and
    /// counts them; the WAL gains no interleaved appends.
    #[test]
    fn wire_observed_newer_epoch_fences_deliveries() {
        let dir = tmpdir("fence-wire");
        let mut cfg = config(&dir);
        cfg.epoch = 1;
        let (mut c, _) = Collector::open(cfg).unwrap();
        assert_eq!(
            c.deliver(SensorId(0), 0, 300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Accepted
        );
        c.observe_epoch(2); // a successor announced itself
        for seq in 1..4u64 {
            assert_eq!(
                c.deliver(SensorId(0), seq, 300 * (seq + 1), vec![21.0, 51.0])
                    .unwrap(),
                DeliverOutcome::Rejected(RejectCause::Fenced)
            );
        }
        let readings: Vec<(Timestamp, Vec<f64>)> =
            vec![(1500, vec![22.0, 52.0]), (1800, vec![23.0, 53.0])];
        let out = c.deliver_batch(SensorId(0), 4, &readings).unwrap();
        assert_eq!(out.nack, Some((4, RejectCause::Fenced)));
        assert_eq!(out.rejected, 2);
        let status = c.storage_status();
        assert_eq!(status.fence_rejects, 5);
        assert_eq!(status.fenced_by, Some(2));
        assert!(
            status.is_clean(),
            "fencing is an orderly fail-stop, not storage degradation"
        );
        drop(c);
        // No interleaved appends: an unfenced reopen replays only the
        // single record accepted before the newer epoch was observed.
        let (_, rec) = Collector::open(config(&dir)).unwrap();
        assert_eq!(rec.replayed, 1, "a fenced collector must not append");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// `FenceCheck::Skip` is the mutation seam: with the check
    /// disabled, a stale collector reopens and appends straight past a
    /// newer committed epoch — exactly the split-brain the nemesis
    /// campaign must catch (see `xtask nemesis --mutate`).
    #[test]
    fn fence_check_skip_admits_split_brain() {
        let dir = tmpdir("fence-skip");
        let mut cfg = config(&dir);
        cfg.epoch = 2;
        let (c, _) = Collector::open(cfg).unwrap();
        drop(c);
        let mut cfg = config(&dir);
        cfg.epoch = 1;
        cfg.fence = FenceCheck::Skip;
        let (mut zombie, _) = Collector::open(cfg).expect("skip must admit the stale epoch");
        zombie.observe_epoch(2);
        assert_eq!(
            zombie
                .deliver(SensorId(0), 0, 300, vec![20.0, 50.0])
                .unwrap(),
            DeliverOutcome::Accepted,
            "the broken build appends where the shipped one fail-stops"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Pre-warm: a standby that cached the latest checkpoint bytes
    /// opens with `RecoveryInfo::prewarmed` set; stale or absent cache
    /// bytes fall back to a cold open with the same end state.
    #[test]
    fn prewarmed_open_matches_cold_open() {
        let dir = tmpdir("prewarm");
        let mut cfg = config(&dir);
        cfg.checkpoint_every = 4;
        let (mut c, _) = Collector::open(cfg).unwrap();
        let records = stream(8);
        for (s, seq, t, v) in records.iter().cloned() {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        drop(c);
        let snapshot = fs::read(dir.join(CHECKPOINT_FILE)).unwrap();

        let (cold, cold_rec) = Collector::open(config(&dir)).unwrap();
        assert!(!cold_rec.prewarmed);
        let cold_cursor = cold.checkpoint_cursor();
        drop(cold);

        let (warm, warm_rec) = Collector::open_prewarmed(config(&dir), Some(&snapshot)).unwrap();
        assert!(warm_rec.prewarmed, "matching cache bytes count as warm");
        assert_eq!(warm_rec.replayed, cold_rec.replayed);
        assert_eq!(warm.checkpoint_cursor(), cold_cursor);
        drop(warm);

        let (_, stale_rec) =
            Collector::open_prewarmed(config(&dir), Some(b"sentinet-checkpoint stale")).unwrap();
        assert!(!stale_rec.prewarmed, "stale cache bytes are a cold open");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The migration cut, source side: exporting a range retires it
    /// (deliveries NACK as fenced, batch and single alike) while the
    /// surviving range keeps ingesting.
    #[test]
    fn export_range_retires_and_nacks_the_moved_range() {
        let dir = tmpdir("migrate-export");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let (inside, cursor) = c.export_range(1..2).unwrap();
        assert_eq!(cursor, 40, "the cut sits at the current WAL cursor");
        assert_eq!(inside.seqs.len(), 1, "sensor 1 travels");
        assert_eq!(c.retired_ranges(), &[(1, 2)]);
        assert_eq!(
            c.deliver(SensorId(1), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Rejected(RejectCause::Fenced),
            "the moved range must NACK at the source"
        );
        let out = c
            .deliver_batch(SensorId(1), 21, &[(6600, vec![21.0, 51.0])])
            .unwrap();
        assert_eq!(out.nack, Some((21, RejectCause::Fenced)));
        assert_eq!(
            c.deliver(SensorId(0), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Accepted,
            "the surviving range keeps ingesting"
        );
        assert_eq!(c.storage_status().fence_rejects, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A restart after the cut restores the post-cut (outside-only)
    /// state bit-exactly and keeps NACKing the retired range — the
    /// pre-cut log never replays the moved sensors back to life.
    #[test]
    fn export_survives_restart_with_outside_only_state() {
        let dir = tmpdir("migrate-restart");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let (_, cursor) = c.export_range(1..2).unwrap();
        let outside = encode_collector(&c.snapshot());
        drop(c); // crash without finish

        let (mut c2, info) = Collector::open(config(&dir)).unwrap();
        assert_eq!(
            info.restored_from,
            Some(cursor),
            "restore mode after the cut"
        );
        assert_eq!(info.replayed, 0);
        assert_eq!(encode_collector(&c2.snapshot()), outside);
        assert_eq!(
            c2.deliver(SensorId(1), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Rejected(RejectCause::Fenced),
            "retirement survives the restart"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Re-driving an interrupted cut returns the staged payload: the
    /// second call yields byte-identical snapshot and cursor, and the
    /// live state is unchanged.
    #[test]
    fn export_range_is_idempotent_under_retry() {
        let dir = tmpdir("migrate-retry");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let (first, cursor) = c.export_range(1..2).unwrap();
        let outside = encode_collector(&c.snapshot());
        let (again, cursor_again) = c.export_range(1..2).unwrap();
        assert_eq!(cursor_again, cursor);
        assert_eq!(encode_collector(&again), encode_collector(&first));
        assert_eq!(encode_collector(&c.snapshot()), outside);
        assert_eq!(c.retired_ranges(), &[(1, 2)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The migration landing, destination side: installing the shipped
    /// snapshot into a fresh directory and opening it rebuilds the
    /// moved range's state — dedup history included, so a retransmitted
    /// pre-cut record re-acks as a duplicate instead of double-counting.
    #[test]
    fn install_snapshot_restores_the_moved_range_on_a_fresh_dir() {
        let src = tmpdir("migrate-src");
        let dst = tmpdir("migrate-dst");
        let (mut c, _) = Collector::open(config(&src)).unwrap();
        let records = stream(20);
        for (s, seq, t, v) in records.iter().cloned() {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let (inside, cursor) = c.export_range(1..2).unwrap();
        drop(c);

        Collector::install_snapshot(&config(&dst), &inside, cursor).unwrap();
        let (mut d, info) = Collector::open(config(&dst)).unwrap();
        assert_eq!(info.restored_from, Some(cursor));
        assert_eq!(encode_collector(&d.snapshot()), encode_collector(&inside));
        // A pre-cut retransmission: the shipped dedup state absorbs it.
        let (s, seq, t, v) = records
            .iter()
            .find(|(s, _, _, _)| *s == SensorId(1))
            .cloned()
            .unwrap();
        assert_eq!(d.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Duplicate);
        // The tail above the cut lands normally.
        assert_eq!(
            d.deliver(SensorId(1), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Accepted
        );
        // Installing over existing state must refuse loudly.
        match Collector::install_snapshot(&config(&dst), &inside, cursor) {
            Err(GatewayError::MigrationCut(_)) => {}
            other => panic!("install over live state must fail, got {other:?}"),
        }
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&dst).unwrap();
    }

    /// The abort path: importing the staged payload back un-retires
    /// the range and restores the pre-cut state bit-exactly, and the
    /// range accepts deliveries again.
    #[test]
    fn import_range_reverses_an_export() {
        let dir = tmpdir("migrate-abort");
        let (mut c, _) = Collector::open(config(&dir)).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let before = encode_collector(&c.snapshot());
        let (inside, _) = c.export_range(1..2).unwrap();
        c.import_range(1..2, &inside).unwrap();
        assert_eq!(encode_collector(&c.snapshot()), before);
        assert!(c.retired_ranges().is_empty());
        assert!(!dir.join("outbox-1-2.ck").exists(), "outbox cleared");
        assert_eq!(
            c.deliver(SensorId(1), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Accepted
        );
        // The abort survives a restart too.
        drop(c);
        let (c2, _) = Collector::open(config(&dir)).unwrap();
        assert!(c2.retired_ranges().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The cut mutation seam: under [`CutCheck::Skip`] the export
    /// still retires the range and rebases onto the outside half, but
    /// the shipped snapshot is empty — the admitted inside readings
    /// vanish. The nemesis migration campaign must catch exactly this.
    #[test]
    fn cut_check_skip_ships_an_empty_inside_snapshot() {
        let dir = tmpdir("migrate-cut-skip");
        let mut cfg = config(&dir);
        cfg.cut = CutCheck::Skip;
        let (mut c, _) = Collector::open(cfg).unwrap();
        for (s, seq, t, v) in stream(20) {
            assert_eq!(c.deliver(s, seq, t, v).unwrap(), DeliverOutcome::Accepted);
        }
        let (inside, cursor) = c.export_range(1..2).unwrap();
        assert_eq!(cursor, 40, "the cut coordinate is unchanged");
        assert!(inside.seqs.is_empty(), "the moved state was dropped");
        assert_eq!(inside.accepted, 0);
        assert_eq!(c.retired_ranges(), &[(1, 2)], "the range still retires");
        assert_eq!(
            c.deliver(SensorId(1), 20, 6300, vec![20.0, 50.0]).unwrap(),
            DeliverOutcome::Rejected(RejectCause::Fenced),
            "the source still NACKs the moved range"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
