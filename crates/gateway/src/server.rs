//! The gateway daemon: socket front end for the [`Collector`].
//!
//! Threading model (the gateway shares the engine's thread-spawning
//! privilege — see the `thread-spawn` lint):
//!
//! * an **accept thread** polls the listener non-blocking, spawning one
//!   **reader thread** per connection;
//! * each reader decodes frames incrementally (reads are bounded by a
//!   read timeout so a dead peer can never wedge a thread) and pushes
//!   events into one **bounded** channel — when the channel fills, the
//!   reader blocks, it stops reading its socket, and the kernel's
//!   receive window pushes back on the sender: backpressure end to
//!   end, no queue without a limit anywhere;
//! * the caller's thread runs [`Server::run`], draining events into
//!   the collector and writing acks back on a cloned write half.
//!
//! A frame-level error (bad CRC, oversized length) is
//! connection-fatal: the stream offset can no longer be trusted, so
//! the connection is dropped, the event is counted, and the client's
//! retry protocol re-delivers whatever lost its ack. A `Fin` frame
//! (acked with `FinAck`) ends the run: the server shuts down its
//! threads and the collector can be finished for a report.

use crate::collector::{Collector, DeliverOutcome, GatewayError};
use crate::frame::{encode_frame, FrameBuffer, FrameError, Message, PROTOCOL_V1, PROTOCOL_VERSION};
use crate::net::{is_timeout, Listener, Stream};
use crate::snapshot::{decode_collector, encode_collector};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use sentinet_sim::SensorId;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Endpoint to bind: `"127.0.0.1:0"` or `"unix:/path"`.
    pub bind: String,
    /// Per-read socket timeout (also the shutdown poll interval for
    /// reader threads).
    pub read_timeout: Duration,
    /// Capacity of the bounded ingest event queue.
    pub queue_capacity: usize,
    /// Batches a v2 connection may keep in flight (granted in the
    /// `HelloAck`).
    pub credit_window: u32,
    /// Speak only protocol v1: a v2 `Hello` is answered with a typed
    /// `HelloReject { supported: 1 }` and the connection is dropped,
    /// exactly like an unknown version. Lets an operator pin a fleet
    /// to stop-and-wait (and gives tests a live rejection path).
    pub v1_only: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".into(),
            read_timeout: Duration::from_millis(200),
            queue_capacity: 1024,
            credit_window: 32,
            v1_only: false,
        }
    }
}

/// Transport-level accounting from one serve run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped on a frame-level decode error.
    pub bad_frames: u64,
    /// Hellos refused for carrying an unknown protocol version
    /// (answered with `HelloReject`, then dropped — a typed outcome,
    /// not corrupt-frame noise).
    pub version_rejects: u64,
    /// The decode error behind each dropped connection, in order
    /// (surfaced by the CLI on stderr).
    pub frame_errors: Vec<FrameError>,
    /// Wall nanoseconds reader threads spent decoding frames (bench
    /// stage breakdown).
    pub decode_ns: u64,
    /// Wall nanoseconds the event loop spent writing replies (bench
    /// stage breakdown).
    pub ack_ns: u64,
}

/// An `AckUpTo` the collector has admitted but whose WAL extent is
/// not yet covered by a completed fsync. Released (written to the
/// client) only once `Collector::synced_cursor` reaches `cursor` —
/// the ack-after-durable rule, batched.
struct PendingAck {
    conn: u64,
    sensor: SensorId,
    seq: u64,
    cursor: u64,
}

/// One event from the socket threads to the collector loop.
enum Event {
    /// Connection `id` opened; carries the ack write half.
    Opened(u64, Stream),
    /// Connection `id` decoded one message.
    Msg(u64, Message),
    /// Connection `id` died on a frame error.
    BadFrame(u64, FrameError),
    /// Connection `id` closed (EOF or I/O error).
    Closed(u64),
}

/// A started gateway server. Create with [`Server::start`] (which
/// spawns the socket threads), then drive the collector with
/// [`Server::run`].
pub struct Server {
    addr: String,
    credit_window: u32,
    v1_only: bool,
    shutdown: Arc<AtomicBool>,
    events: Receiver<Event>,
    decode_ns: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the endpoint and spawns the accept thread.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the endpoint cannot be bound.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        let (listener, addr) = Listener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded(config.queue_capacity);
        let accept_shutdown = Arc::clone(&shutdown);
        let read_timeout = config.read_timeout;
        let decode_ns = Arc::new(AtomicU64::new(0));
        let accept_decode_ns = Arc::clone(&decode_ns);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                tx,
                accept_shutdown,
                read_timeout,
                accept_decode_ns,
            );
        });
        Ok(Self {
            addr,
            credit_window: config.credit_window,
            v1_only: config.v1_only,
            shutdown,
            events: rx,
            decode_ns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The resolved address clients should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A flag that stops the server when set (for soak harnesses that
    /// end a run without a `Fin`).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Drains delivered frames into `collector` until a client sends
    /// `Fin` (or the shutdown flag is raised), acking each durable
    /// record, then tears the socket threads down. The collector is
    /// left ready for [`Collector::finish`].
    ///
    /// # Errors
    ///
    /// [`GatewayError`] if the collector's WAL fails; socket-level
    /// errors are per-connection events, not run failures.
    pub fn run(mut self, collector: &mut Collector) -> Result<ServerStats, GatewayError> {
        let mut stats = ServerStats::default();
        let result = self.event_loop(collector, &mut stats);
        // Stop the socket threads and unblock any reader stuck on a
        // full queue by draining until every sender is gone.
        self.shutdown.store(true, Ordering::SeqCst);
        while !matches!(
            self.events.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Disconnected)
        ) {}
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        stats.decode_ns = self.decode_ns.load(Ordering::Relaxed);
        result.map(|()| stats)
    }

    fn event_loop(
        &mut self,
        collector: &mut Collector,
        stats: &mut ServerStats,
    ) -> Result<(), GatewayError> {
        let mut writers: BTreeMap<u64, Stream> = BTreeMap::new();
        let mut pending: Vec<PendingAck> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            // A momentarily dry queue is the flush interval: one group
            // fsync covers every batch admitted since the last one,
            // and the acks it unblocks are released together.
            let event = match self.events.try_recv() {
                Ok(e) => e,
                Err(TryRecvError::Empty) => {
                    if !pending.is_empty() {
                        collector.sync_wal()?;
                        stats.ack_ns = stats.ack_ns.saturating_add(release_ready(
                            collector,
                            &mut writers,
                            &mut pending,
                        ));
                    }
                    match self.events.recv_timeout(Duration::from_millis(100)) {
                        Ok(e) => e,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return Ok(()),
                    }
                }
                Err(TryRecvError::Disconnected) => return Ok(()),
            };
            match event {
                Event::Opened(id, writer) => {
                    stats.connections += 1;
                    writers.insert(id, writer);
                }
                Event::Msg(
                    id,
                    Message::Data {
                        sensor,
                        seq,
                        time,
                        values,
                    },
                ) => {
                    // Accepted and Duplicate both mean durable: ack
                    // either way. Rejected (poisoned storage or WAL
                    // budget shedding) must never be acked — send a
                    // NACK so the client fails fast instead of timing
                    // out. A failed reply write is the client's
                    // problem — it retries and the seq dedup absorbs
                    // the re-delivery.
                    let outcome = collector.deliver(sensor, seq, time, values)?;
                    let reply = match outcome {
                        DeliverOutcome::Accepted | DeliverOutcome::Duplicate => {
                            Message::Ack { sensor, seq }
                        }
                        DeliverOutcome::Rejected(_) => Message::Nack { sensor, seq },
                    };
                    if let Some(w) = writers.get_mut(&id) {
                        let ack_start = std::time::Instant::now();
                        let _ = w.write_all(&encode_frame(&reply));
                        stats.ack_ns = stats
                            .ack_ns
                            .saturating_add(ack_start.elapsed().as_nanos() as u64);
                    }
                }
                Event::Msg(
                    id,
                    Message::DataBatch {
                        sensor,
                        first_seq,
                        readings,
                    },
                ) => {
                    // Admission is per reading, durability per batch:
                    // the cumulative ack is queued against the WAL
                    // cursor the batch ended on and only released once
                    // a completed fsync covers it. The NACK (first
                    // refused seq) goes out immediately — refusal
                    // needs no durability.
                    let out = collector.deliver_batch(sensor, first_seq, &readings)?;
                    if let Some((seq, _)) = out.nack {
                        if let Some(w) = writers.get_mut(&id) {
                            let ack_start = std::time::Instant::now();
                            let _ = w.write_all(&encode_frame(&Message::Nack { sensor, seq }));
                            stats.ack_ns = stats
                                .ack_ns
                                .saturating_add(ack_start.elapsed().as_nanos() as u64);
                        }
                    }
                    if let Some(seq) = out.ack_up_to {
                        pending.push(PendingAck {
                            conn: id,
                            sensor,
                            seq,
                            cursor: out.ack_cursor,
                        });
                        // Policy-driven fsyncs (always, batch-N) may
                        // already cover this batch; release what can
                        // go now and pipeline the rest.
                        stats.ack_ns = stats.ack_ns.saturating_add(release_ready(
                            collector,
                            &mut writers,
                            &mut pending,
                        ));
                    }
                }
                Event::Msg(id, Message::Fin) => {
                    // End of stream: flush the group commit so every
                    // queued ack can be released before the FinAck.
                    if !pending.is_empty() {
                        collector.sync_wal()?;
                        stats.ack_ns = stats.ack_ns.saturating_add(release_ready(
                            collector,
                            &mut writers,
                            &mut pending,
                        ));
                    }
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = w.write_all(&encode_frame(&Message::FinAck));
                        let _ = w.flush();
                    }
                    return Ok(());
                }
                Event::Msg(id, Message::Hello { version, epoch }) => {
                    // The hello's epoch is a fence observation: a
                    // controller speaking for a newer owner epoch
                    // proves a successor committed — this collector is
                    // stale and must fail-stop before its next append.
                    if epoch > 0 {
                        collector.observe_epoch(epoch);
                    }
                    match version {
                        PROTOCOL_V1 => {
                            // Legacy stop-and-wait: no reply, exactly
                            // as version 1 of the server behaved.
                        }
                        PROTOCOL_VERSION if !self.v1_only => {
                            if let Some(w) = writers.get_mut(&id) {
                                let _ = w.write_all(&encode_frame(&Message::HelloAck {
                                    version: PROTOCOL_VERSION,
                                    credits: self.credit_window,
                                }));
                            }
                        }
                        _ => {
                            // Unknown version — or v2 on a server
                            // pinned to v1 — gets a typed reject naming
                            // the highest version this server speaks.
                            stats.version_rejects += 1;
                            let supported = if self.v1_only {
                                PROTOCOL_V1
                            } else {
                                PROTOCOL_VERSION
                            };
                            if let Some(mut w) = writers.remove(&id) {
                                let _ =
                                    w.write_all(&encode_frame(&Message::HelloReject { supported }));
                                let _ = w.flush();
                                let _ = w.shutdown();
                            }
                        }
                    }
                }
                Event::Msg(id, Message::Heartbeat { epoch }) => {
                    // Liveness probe: reply with our epoch and the
                    // last committed checkpoint cursor (the pre-warm
                    // coordinate). A newer carried epoch fences us.
                    if epoch > 0 {
                        collector.observe_epoch(epoch);
                    }
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = w.write_all(&encode_frame(&Message::HeartbeatAck {
                            epoch: collector.epoch(),
                            checkpoint_cursor: collector.checkpoint_cursor(),
                        }));
                        let _ = w.flush();
                    }
                }
                Event::Msg(id, Message::MigrateOffer { start, end }) => {
                    // Source side of a live migration: cut the range
                    // at the current cursor and stage it for
                    // transfer. The cut fsyncs the log before
                    // choosing its cursor, so acks queued behind the
                    // group commit become releasable — let none of
                    // them trail the MigrateAccept.
                    let cut = collector.export_range(start..end);
                    if !pending.is_empty() {
                        stats.ack_ns = stats.ack_ns.saturating_add(release_ready(
                            collector,
                            &mut writers,
                            &mut pending,
                        ));
                    }
                    match cut {
                        Ok((inside, cursor)) => {
                            let snapshot = encode_collector(&inside).into_bytes();
                            if let Some(w) = writers.get_mut(&id) {
                                let _ = w.write_all(&encode_frame(&Message::MigrateAccept {
                                    start,
                                    end,
                                    cursor,
                                    snapshot,
                                }));
                                let _ = w.flush();
                            }
                        }
                        // A cut that cannot be made durable is
                        // answered with silence: the controller's
                        // deadline aborts the migration while this
                        // collector keeps serving (or fail-stops on
                        // its poisoned WAL) — never a half-cut.
                        Err(GatewayError::MigrationCut(_)) | Err(GatewayError::Wal(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                Event::Msg(
                    id,
                    Message::MigrateAccept {
                        start,
                        end,
                        cursor,
                        snapshot,
                    },
                ) => {
                    // Destination side: adopt the shipped range and
                    // confirm only once the restore point is durable.
                    // An undecodable or unadoptable payload gets
                    // silence — the controller's deadline aborts and
                    // the source's staged copy stays authoritative.
                    let adopted = String::from_utf8(snapshot)
                        .ok()
                        .and_then(|text| decode_collector(&text).ok())
                        .map(|snap| collector.adopt_range(start..end, cursor, &snap));
                    match adopted {
                        Some(Ok(())) => {
                            if let Some(w) = writers.get_mut(&id) {
                                let _ = w.write_all(&encode_frame(&Message::MigrateDone {
                                    start,
                                    end,
                                    cursor,
                                }));
                                let _ = w.flush();
                            }
                        }
                        Some(Err(GatewayError::MigrationCut(_)))
                        | Some(Err(GatewayError::Wal(_)))
                        | None => {}
                        Some(Err(e)) => return Err(e),
                    }
                }
                Event::Msg(id, Message::MigrateDone { start, end, cursor }) => {
                    // The range is durable at its new home, so the
                    // staged outbox copy is no longer needed. Echoed
                    // back as the acknowledgment.
                    collector.clear_outbox(start..end);
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = w.write_all(&encode_frame(&Message::MigrateDone {
                            start,
                            end,
                            cursor,
                        }));
                        let _ = w.flush();
                    }
                }
                Event::Msg(
                    _,
                    Message::Ack { .. }
                    | Message::AckUpTo { .. }
                    | Message::FinAck
                    | Message::Nack { .. }
                    | Message::HelloAck { .. }
                    | Message::HelloReject { .. }
                    | Message::HeartbeatAck { .. },
                ) => {
                    // Server-bound streams should not carry replies;
                    // ignore rather than kill the connection.
                }
                Event::BadFrame(id, e) => {
                    stats.bad_frames += 1;
                    stats.frame_errors.push(e);
                    pending.retain(|p| p.conn != id);
                    if let Some(w) = writers.remove(&id) {
                        let _ = w.shutdown();
                    }
                }
                Event::Closed(id) => {
                    pending.retain(|p| p.conn != id);
                    writers.remove(&id);
                }
            }
        }
    }
}

/// Writes every queued `AckUpTo` whose WAL cursor a completed fsync
/// now covers; the rest stay queued. Returns the wall nanoseconds
/// spent writing (the ack stage of the bench breakdown).
fn release_ready(
    collector: &Collector,
    writers: &mut BTreeMap<u64, Stream>,
    pending: &mut Vec<PendingAck>,
) -> u64 {
    let synced = collector.synced_cursor();
    let mut spent = 0u64;
    pending.retain(|p| {
        if p.cursor > synced {
            return true;
        }
        if let Some(w) = writers.get_mut(&p.conn) {
            let start = std::time::Instant::now();
            let _ = w.write_all(&encode_frame(&Message::AckUpTo {
                sensor: p.sensor,
                seq: p.seq,
            }));
            spent = spent.saturating_add(start.elapsed().as_nanos() as u64);
        }
        false
    });
    spent
}

fn accept_loop(
    listener: Listener,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
    decode_ns: Arc<AtomicU64>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let id = next_id;
                next_id += 1;
                let ok = stream.set_read_timeout(Some(read_timeout)).is_ok()
                    && stream
                        .set_write_timeout(Some(Duration::from_secs(5)))
                        .is_ok();
                let writer = stream.try_clone();
                match (ok, writer) {
                    (true, Ok(writer)) => {
                        if events.send(Event::Opened(id, writer)).is_err() {
                            return;
                        }
                        let tx = events.clone();
                        let sd = Arc::clone(&shutdown);
                        let dns = Arc::clone(&decode_ns);
                        readers.push(std::thread::spawn(move || {
                            reader_loop(id, stream, tx, sd, dns);
                        }));
                    }
                    _ => {
                        let _ = stream.shutdown();
                    }
                }
            }
            Err(e) if is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for handle in readers {
        let _ = handle.join();
    }
}

fn reader_loop(
    id: u64,
    mut stream: Stream,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    decode_ns: Arc<AtomicU64>,
) {
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 8192];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = events.send(Event::Closed(id));
                return;
            }
            Ok(n) => {
                let decode_start = std::time::Instant::now();
                fb.feed(&buf[..n]);
                loop {
                    // The decode clock covers framing + parse only;
                    // it stops before the (possibly blocking) queue
                    // send so backpressure is not billed as decoding.
                    let next = fb.next_message();
                    decode_ns
                        .fetch_add(decode_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match next {
                        Ok(Some(msg)) => {
                            // Blocking send on the bounded queue is the
                            // backpressure point.
                            if events.send(Event::Msg(id, msg)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = stream.shutdown();
                            let _ = events.send(Event::BadFrame(id, e));
                            return;
                        }
                    }
                }
            }
            Err(e) if is_timeout(&e) => continue,
            Err(_) => {
                let _ = events.send(Event::Closed(id));
                return;
            }
        }
    }
}

/// A legacy (v1) Hello frame for raw-socket clients to open with
/// (re-exported convenience). The server sends no reply to a v1
/// Hello, so a raw connection can stream Data frames immediately.
pub fn hello_frame() -> Vec<u8> {
    encode_frame(&Message::Hello {
        version: PROTOCOL_V1,
        epoch: 0,
    })
}
