//! The gateway daemon: socket front end for the [`Collector`].
//!
//! Threading model (the gateway shares the engine's thread-spawning
//! privilege — see the `thread-spawn` lint):
//!
//! * an **accept thread** polls the listener non-blocking, spawning one
//!   **reader thread** per connection;
//! * each reader decodes frames incrementally (reads are bounded by a
//!   read timeout so a dead peer can never wedge a thread) and pushes
//!   events into one **bounded** channel — when the channel fills, the
//!   reader blocks, it stops reading its socket, and the kernel's
//!   receive window pushes back on the sender: backpressure end to
//!   end, no queue without a limit anywhere;
//! * the caller's thread runs [`Server::run`], draining events into
//!   the collector and writing acks back on a cloned write half.
//!
//! A frame-level error (bad CRC, oversized length) is
//! connection-fatal: the stream offset can no longer be trusted, so
//! the connection is dropped, the event is counted, and the client's
//! retry protocol re-delivers whatever lost its ack. A `Fin` frame
//! (acked with `FinAck`) ends the run: the server shuts down its
//! threads and the collector can be finished for a report.

use crate::collector::{Collector, DeliverOutcome, GatewayError};
use crate::frame::{encode_frame, FrameBuffer, FrameError, Message, PROTOCOL_VERSION};
use crate::net::{is_timeout, Listener, Stream};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Endpoint to bind: `"127.0.0.1:0"` or `"unix:/path"`.
    pub bind: String,
    /// Per-read socket timeout (also the shutdown poll interval for
    /// reader threads).
    pub read_timeout: Duration,
    /// Capacity of the bounded ingest event queue.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".into(),
            read_timeout: Duration::from_millis(200),
            queue_capacity: 1024,
        }
    }
}

/// Transport-level accounting from one serve run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped on a frame-level decode error.
    pub bad_frames: u64,
    /// The decode error behind each dropped connection, in order
    /// (surfaced by the CLI on stderr).
    pub frame_errors: Vec<FrameError>,
}

/// One event from the socket threads to the collector loop.
enum Event {
    /// Connection `id` opened; carries the ack write half.
    Opened(u64, Stream),
    /// Connection `id` decoded one message.
    Msg(u64, Message),
    /// Connection `id` died on a frame error.
    BadFrame(u64, FrameError),
    /// Connection `id` closed (EOF or I/O error).
    Closed(u64),
}

/// A started gateway server. Create with [`Server::start`] (which
/// spawns the socket threads), then drive the collector with
/// [`Server::run`].
pub struct Server {
    addr: String,
    shutdown: Arc<AtomicBool>,
    events: Receiver<Event>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the endpoint and spawns the accept thread.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the endpoint cannot be bound.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        let (listener, addr) = Listener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded(config.queue_capacity);
        let accept_shutdown = Arc::clone(&shutdown);
        let read_timeout = config.read_timeout;
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, tx, accept_shutdown, read_timeout);
        });
        Ok(Self {
            addr,
            shutdown,
            events: rx,
            accept_thread: Some(accept_thread),
        })
    }

    /// The resolved address clients should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A flag that stops the server when set (for soak harnesses that
    /// end a run without a `Fin`).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Drains delivered frames into `collector` until a client sends
    /// `Fin` (or the shutdown flag is raised), acking each durable
    /// record, then tears the socket threads down. The collector is
    /// left ready for [`Collector::finish`].
    ///
    /// # Errors
    ///
    /// [`GatewayError`] if the collector's WAL fails; socket-level
    /// errors are per-connection events, not run failures.
    pub fn run(mut self, collector: &mut Collector) -> Result<ServerStats, GatewayError> {
        let mut stats = ServerStats::default();
        let result = self.event_loop(collector, &mut stats);
        // Stop the socket threads and unblock any reader stuck on a
        // full queue by draining until every sender is gone.
        self.shutdown.store(true, Ordering::SeqCst);
        while !matches!(
            self.events.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Disconnected)
        ) {}
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        result.map(|()| stats)
    }

    fn event_loop(
        &mut self,
        collector: &mut Collector,
        stats: &mut ServerStats,
    ) -> Result<(), GatewayError> {
        let mut writers: BTreeMap<u64, Stream> = BTreeMap::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let event = match self.events.recv_timeout(Duration::from_millis(100)) {
                Ok(e) => e,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            };
            match event {
                Event::Opened(id, writer) => {
                    stats.connections += 1;
                    writers.insert(id, writer);
                }
                Event::Msg(
                    id,
                    Message::Data {
                        sensor,
                        seq,
                        time,
                        values,
                    },
                ) => {
                    // Accepted and Duplicate both mean durable: ack
                    // either way. Rejected (poisoned storage or WAL
                    // budget shedding) must never be acked — send a
                    // NACK so the client fails fast instead of timing
                    // out. A failed reply write is the client's
                    // problem — it retries and the seq dedup absorbs
                    // the re-delivery.
                    let outcome = collector.deliver(sensor, seq, time, values)?;
                    let reply = match outcome {
                        DeliverOutcome::Accepted | DeliverOutcome::Duplicate => {
                            Message::Ack { sensor, seq }
                        }
                        DeliverOutcome::Rejected(_) => Message::Nack { sensor, seq },
                    };
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = w.write_all(&encode_frame(&reply));
                    }
                }
                Event::Msg(id, Message::Fin) => {
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = w.write_all(&encode_frame(&Message::FinAck));
                        let _ = w.flush();
                    }
                    return Ok(());
                }
                Event::Msg(_, Message::Hello { .. }) => {
                    // Version 1 accepts all hellos; kept for evolution.
                }
                Event::Msg(_, Message::Ack { .. } | Message::FinAck | Message::Nack { .. }) => {
                    // Server-bound streams should not carry acks;
                    // ignore rather than kill the connection.
                }
                Event::BadFrame(id, e) => {
                    stats.bad_frames += 1;
                    stats.frame_errors.push(e);
                    if let Some(w) = writers.remove(&id) {
                        let _ = w.shutdown();
                    }
                }
                Event::Closed(id) => {
                    writers.remove(&id);
                }
            }
        }
    }
}

fn accept_loop(
    listener: Listener,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let id = next_id;
                next_id += 1;
                let ok = stream.set_read_timeout(Some(read_timeout)).is_ok()
                    && stream
                        .set_write_timeout(Some(Duration::from_secs(5)))
                        .is_ok();
                let writer = stream.try_clone();
                match (ok, writer) {
                    (true, Ok(writer)) => {
                        if events.send(Event::Opened(id, writer)).is_err() {
                            return;
                        }
                        let tx = events.clone();
                        let sd = Arc::clone(&shutdown);
                        readers.push(std::thread::spawn(move || {
                            reader_loop(id, stream, tx, sd);
                        }));
                    }
                    _ => {
                        let _ = stream.shutdown();
                    }
                }
            }
            Err(e) if is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for handle in readers {
        let _ = handle.join();
    }
}

fn reader_loop(id: u64, mut stream: Stream, events: Sender<Event>, shutdown: Arc<AtomicBool>) {
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 8192];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = events.send(Event::Closed(id));
                return;
            }
            Ok(n) => {
                fb.feed(&buf[..n]);
                loop {
                    match fb.next_message() {
                        Ok(Some(msg)) => {
                            // Blocking send on the bounded queue is the
                            // backpressure point.
                            if events.send(Event::Msg(id, msg)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = stream.shutdown();
                            let _ = events.send(Event::BadFrame(id, e));
                            return;
                        }
                    }
                }
            }
            Err(e) if is_timeout(&e) => continue,
            Err(_) => {
                let _ = events.send(Event::Closed(id));
                return;
            }
        }
    }
}

/// A Hello frame for clients to open with (re-exported convenience).
pub fn hello_frame() -> Vec<u8> {
    encode_frame(&Message::Hello {
        version: PROTOCOL_VERSION,
    })
}
