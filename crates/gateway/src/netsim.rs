//! Seeded delivery-schedule simulation: BurstLoss-shaped drops,
//! duplicates, and reordering over a clean record stream.
//!
//! The simulator turns an in-order record stream into a *delivery
//! schedule* — the sequence of frame arrivals a collector would see
//! behind a lossy, bursty radio link. Losses appear as deferrals (a
//! dropped frame is retried by the uplink and arrives later), burst
//! structure comes from the same Gilbert–Elliott two-state machine as
//! [`BurstLoss`], and lost acks appear as duplicate deliveries of
//! already-durable frames.
//!
//! Deferrals are bounded by the watermark: the schedule never holds a
//! record back so long that the collector's reorder buffer would have
//! to drop it. Concretely, before any record with time `t` is
//! emitted, every deferred record `d` with `d.time + watermark_delay
//! ≤ t` is flushed first. Under that constraint the reorder buffer
//! provably re-sequences the schedule into exactly the in-order
//! stream — which is the gateway's central regression property: a
//! seeded schedule with drops, dups, and reordering must produce a
//! report bit-identical to in-order delivery.

use crate::client::{SensorUplink, UplinkError};
use crate::collector::{Collector, GatewayError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_sim::{BurstLoss, RawRecord, SensorId, Timestamp, Trace};
use std::collections::BTreeMap;

/// Delivery-schedule tuning.
#[derive(Debug, Clone)]
pub struct NetsimConfig {
    /// Seed for every random choice in the schedule.
    pub seed: u64,
    /// Burst state machine; `loss_bad` is the defer (drop-and-retry)
    /// probability while the link is bad.
    pub burst: BurstLoss,
    /// Defer probability while the link is good.
    pub defer_good: f64,
    /// Probability an emitted frame's ack is lost, so a duplicate
    /// delivery arrives later.
    pub dup_rate: f64,
    /// The collector's reorder watermark delay; deferrals never
    /// exceed it.
    pub watermark_delay: Timestamp,
}

impl Default for NetsimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            burst: BurstLoss {
                p_enter_bad: 0.08,
                p_exit_bad: 0.4,
                loss_bad: 0.5,
            },
            defer_good: 0.05,
            dup_rate: 0.05,
            watermark_delay: 1800,
        }
    }
}

/// One frame arrival in a delivery schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// The frame's sequence number (duplicates repeat one).
    pub seq: u64,
    /// Sample timestamp.
    pub time: Timestamp,
    /// Attribute values.
    pub values: Vec<f64>,
    /// Whether this arrival is a retransmission of an acked frame.
    pub duplicate: bool,
}

/// The delivered records of `trace` as raw gateway input, in
/// `(time, sensor)` order.
pub fn trace_to_raw(trace: &Trace) -> Vec<RawRecord> {
    trace
        .delivered()
        .map(|(time, sensor, reading)| RawRecord {
            time,
            sensor,
            values: reading.values().to_vec(),
        })
        .collect()
}

/// Builds a seeded delivery schedule over `records` (which must be in
/// `(time, sensor)` order with strictly increasing per-sensor times —
/// what [`trace_to_raw`] produces). Every record appears exactly once
/// as an original emission; duplicates are marked.
pub fn delivery_schedule(records: &[RawRecord], config: &NetsimConfig) -> Vec<Emission> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut schedule: Vec<Emission> = Vec::new();
    let mut deferred: Vec<Emission> = Vec::new();
    let mut next_seq: BTreeMap<SensorId, u64> = BTreeMap::new();
    let mut bad = false;

    for record in records {
        // Watermark constraint: flush any deferral that cannot wait
        // past this record's timestamp.
        let mut i = 0;
        while i < deferred.len() {
            if deferred[i].time.saturating_add(config.watermark_delay) <= record.time {
                schedule.push(deferred.remove(i));
            } else {
                i += 1;
            }
        }

        bad = if bad {
            !rng.gen_bool(config.burst.p_exit_bad)
        } else {
            rng.gen_bool(config.burst.p_enter_bad)
        };
        let defer_p = if bad {
            config.burst.loss_bad
        } else {
            config.defer_good
        };

        let seq = {
            let next = next_seq.entry(record.sensor).or_insert(0);
            let seq = *next;
            *next += 1;
            seq
        };
        let emission = Emission {
            sensor: record.sensor,
            seq,
            time: record.time,
            values: record.values.clone(),
            duplicate: false,
        };
        if rng.gen_bool(defer_p) {
            // "Lost": the retry arrives at a random later point.
            let at = rng.gen_range(0..deferred.len() + 1);
            deferred.insert(at, emission);
        } else {
            if rng.gen_bool(config.dup_rate) {
                // Ack lost: a duplicate rides in later.
                let mut dup = emission.clone();
                dup.duplicate = true;
                let at = rng.gen_range(0..deferred.len() + 1);
                deferred.insert(at, dup);
            }
            schedule.push(emission);
        }
    }
    schedule.append(&mut deferred);
    schedule
}

/// Drives a schedule straight into an in-process collector.
///
/// # Errors
///
/// [`GatewayError`] if the collector's WAL fails.
pub fn deliver_schedule(
    collector: &mut Collector,
    schedule: &[Emission],
) -> Result<(), GatewayError> {
    for e in schedule {
        collector.deliver(e.sensor, e.seq, e.time, e.values.clone())?;
    }
    Ok(())
}

/// Drives a schedule through a real socket via the uplink's raw
/// `(seq, …)` hook, exercising retry and server-side dedup end to
/// end.
///
/// # Errors
///
/// [`UplinkError`] if any frame exhausts its retries.
pub fn drive_uplink(uplink: &mut SensorUplink, schedule: &[Emission]) -> Result<(), UplinkError> {
    for e in schedule {
        uplink.send_at(e.sensor, e.seq, e.time, &e.values)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64, sensors: u16) -> Vec<RawRecord> {
        let mut out = Vec::new();
        for i in 0..n {
            for s in 0..sensors {
                out.push(RawRecord {
                    time: 300 * (i + 1),
                    sensor: SensorId(s),
                    values: vec![20.0 + (i % 5) as f64, 50.0 + s as f64],
                });
            }
        }
        out
    }

    #[test]
    fn schedule_covers_every_record_exactly_once() {
        let recs = records(50, 3);
        let schedule = delivery_schedule(&recs, &NetsimConfig::default());
        let originals: Vec<_> = schedule.iter().filter(|e| !e.duplicate).collect();
        assert_eq!(originals.len(), recs.len());
        let mut seen: BTreeMap<(SensorId, u64), usize> = BTreeMap::new();
        for e in &originals {
            *seen.entry((e.sensor, e.seq)).or_insert(0) += 1;
        }
        assert!(seen.values().all(|&c| c == 1), "an original repeated");
    }

    #[test]
    fn schedule_actually_reorders_and_duplicates() {
        let recs = records(100, 2);
        let schedule = delivery_schedule(&recs, &NetsimConfig::default());
        let out_of_order = schedule
            .windows(2)
            .filter(|w| w[1].time < w[0].time)
            .count();
        let dups = schedule.iter().filter(|e| e.duplicate).count();
        assert!(out_of_order > 0, "seeded schedule produced no reordering");
        assert!(dups > 0, "seeded schedule produced no duplicates");
    }

    #[test]
    fn deferrals_respect_the_watermark() {
        let recs = records(200, 2);
        let config = NetsimConfig::default();
        let schedule = delivery_schedule(&recs, &config);
        let mut max_time = 0u64;
        for e in &schedule {
            if !e.duplicate {
                assert!(
                    e.time.saturating_add(config.watermark_delay) >= max_time,
                    "original at t={} emitted after watermark passed (max seen {})",
                    e.time,
                    max_time
                );
            }
            max_time = max_time.max(e.time);
        }
    }
}
