//! `SensorUplink`: the sensor-side client with retry, backoff and
//! reconnection.
//!
//! The uplink is stop-and-wait: each reading is framed with a
//! per-sensor sequence number, sent, and retransmitted until the
//! server acknowledges that exact `(sensor, seq)` — with capped
//! exponential backoff plus seeded jitter between attempts, so a
//! retry storm from many motes decorrelates deterministically. An I/O
//! error tears the connection down and the next attempt reconnects,
//! which transparently rides out a server restart: whatever lost its
//! ack is re-sent on the new connection and the server's sequence
//! dedup absorbs anything that was already durable.
//!
//! [`SensorUplink::send_at`] exposes the raw `(seq, …)` coordinate so
//! the network simulator can inject duplicates and reordering through
//! the real client path.

use crate::frame::{encode_frame, FrameBuffer, Message, PROTOCOL_VERSION};
use crate::net::{is_timeout, Stream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_sim::{SensorId, Timestamp};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Uplink tuning.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// Endpoint to connect to: `"127.0.0.1:4410"` or `"unix:/path"`.
    pub connect: String,
    /// How long one attempt waits for its ack before retrying.
    pub ack_timeout: Duration,
    /// Attempts per frame before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the jitter added to each backoff.
    pub jitter_seed: u64,
}

impl UplinkConfig {
    /// Defaults for `connect`: 500 ms ack wait, 8 attempts, 25 ms
    /// base / 2 s cap backoff.
    pub fn new(connect: impl Into<String>) -> Self {
        Self {
            connect: connect.into(),
            ack_timeout: Duration::from_millis(500),
            max_attempts: 8,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 7,
        }
    }
}

/// Why the uplink gave up.
#[derive(Debug)]
pub enum UplinkError {
    /// Every attempt at one frame went unacknowledged.
    Exhausted {
        /// Sensor of the abandoned frame.
        sensor: SensorId,
        /// Sequence number of the abandoned frame.
        seq: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// Every attempt at the `Fin` handshake went unacknowledged.
    FinExhausted {
        /// Attempts made.
        attempts: u32,
    },
}

impl fmt::Display for UplinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UplinkError::Exhausted {
                sensor,
                seq,
                attempts,
            } => write!(
                f,
                "no ack for {sensor} seq {seq} after {attempts} attempt(s)"
            ),
            UplinkError::FinExhausted { attempts } => {
                write!(f, "no fin-ack after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for UplinkError {}

/// The sensor-side client. One uplink may carry any number of
/// sensors' streams (a cluster head relaying for its motes).
pub struct SensorUplink {
    config: UplinkConfig,
    conn: Option<(Stream, FrameBuffer)>,
    next_seq: BTreeMap<SensorId, u64>,
    rng: StdRng,
    /// Frames retransmitted at least once (for harness assertions).
    pub retransmits: u64,
}

impl fmt::Debug for SensorUplink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SensorUplink")
            .field("connect", &self.config.connect)
            .field("retransmits", &self.retransmits)
            .finish()
    }
}

impl SensorUplink {
    /// A disconnected uplink; the first send connects lazily.
    pub fn new(config: UplinkConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        Self {
            config,
            conn: None,
            next_seq: BTreeMap::new(),
            rng,
            retransmits: 0,
        }
    }

    /// Sends one reading, assigning the sensor's next sequence number;
    /// returns it. Blocks until acked or attempts are exhausted.
    ///
    /// # Errors
    ///
    /// [`UplinkError::Exhausted`] when every attempt times out.
    pub fn send(
        &mut self,
        sensor: SensorId,
        time: Timestamp,
        values: &[f64],
    ) -> Result<u64, UplinkError> {
        let seq = {
            let next = self.next_seq.entry(sensor).or_insert(0);
            let seq = *next;
            *next += 1;
            seq
        };
        self.send_at(sensor, seq, time, values)?;
        Ok(seq)
    }

    /// Sends one frame under an explicit sequence number — the hook
    /// the network simulator uses to inject duplicate deliveries
    /// through the real retry path.
    ///
    /// # Errors
    ///
    /// [`UplinkError::Exhausted`] when every attempt times out.
    pub fn send_at(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<(), UplinkError> {
        let frame = encode_frame(&Message::Data {
            sensor,
            seq,
            time,
            values: values.to_vec(),
        });
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.retransmits += 1;
                self.backoff(attempt);
            }
            if self.attempt(&frame, |msg| match msg {
                Message::Ack { sensor: s, seq: q } if *s == sensor && *q == seq => {
                    Reply::Acked
                }
                // A NACK means the server is alive but refused the
                // record (poisoned storage or budget shedding): fail
                // the attempt now instead of waiting out the ack
                // deadline, and let backoff pace the re-offer.
                Message::Nack { sensor: s, seq: q } if *s == sensor && *q == seq => {
                    Reply::Nacked
                }
                _ => Reply::Unrelated,
            }) {
                return Ok(());
            }
        }
        Err(UplinkError::Exhausted {
            sensor,
            seq,
            attempts: self.config.max_attempts,
        })
    }

    /// Ends the stream: sends `Fin` until `FinAck` arrives, then
    /// closes the connection.
    ///
    /// # Errors
    ///
    /// [`UplinkError::FinExhausted`] when every attempt times out.
    pub fn finish(mut self) -> Result<(), UplinkError> {
        let frame = encode_frame(&Message::Fin);
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            if self.attempt(&frame, |msg| match msg {
                Message::FinAck => Reply::Acked,
                _ => Reply::Unrelated,
            }) {
                if let Some((stream, _)) = self.conn.take() {
                    let _ = stream.shutdown();
                }
                return Ok(());
            }
        }
        Err(UplinkError::FinExhausted {
            attempts: self.config.max_attempts,
        })
    }

    /// One attempt: ensure a connection, write the frame, wait for a
    /// message `classify` marks as the ack or nack. Returns `false` on
    /// nack or timeout (keeping the connection) or I/O error (dropping
    /// it so the next attempt redials).
    fn attempt(&mut self, frame: &[u8], classify: impl Fn(&Message) -> Reply) -> bool {
        if !self.ensure_connected() {
            return false;
        }
        let Some((mut stream, mut fb)) = self.conn.take() else {
            return false;
        };
        match attempt_on(
            &mut stream,
            &mut fb,
            frame,
            &classify,
            self.config.ack_timeout,
        ) {
            Attempt::Acked => {
                self.conn = Some((stream, fb));
                true
            }
            Attempt::Timeout | Attempt::Nacked => {
                // The server is slow (or alive-but-refusing): keep the
                // connection, the retransmit rides the same stream.
                self.conn = Some((stream, fb));
                false
            }
            Attempt::Broken => {
                let _ = stream.shutdown();
                false
            }
        }
    }

    fn ensure_connected(&mut self) -> bool {
        if self.conn.is_some() {
            return true;
        }
        let Ok(stream) = Stream::connect(&self.config.connect) else {
            return false;
        };
        // Read in short slices so the ack deadline stays responsive.
        let per_read = (self.config.ack_timeout / 4).max(Duration::from_millis(10));
        if stream.set_read_timeout(Some(per_read)).is_err() {
            return false;
        }
        let mut stream = stream;
        let hello = encode_frame(&Message::Hello {
            version: PROTOCOL_VERSION,
        });
        if stream.write_all(&hello).is_err() {
            return false;
        }
        self.conn = Some((stream, FrameBuffer::new()));
        true
    }

    /// Sleeps `min(cap, base · 2^(attempt−1))` plus up to 50% seeded
    /// jitter, so synchronized retry storms from many motes spread
    /// out deterministically.
    fn backoff(&mut self, attempt: u32) {
        let base = self.config.backoff_base.as_millis() as u64;
        let cap = self.config.backoff_cap.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let delay = exp.min(cap);
        let jitter = if delay > 1 {
            self.rng.gen_range(0..delay / 2 + 1)
        } else {
            0
        };
        std::thread::sleep(Duration::from_millis(delay + jitter));
    }
}

/// How one received message relates to the frame in flight.
enum Reply {
    /// The matching ack: the frame is durable.
    Acked,
    /// The matching NACK: the server refused the frame.
    Nacked,
    /// Something else (e.g. a stale ack from an earlier retransmit).
    Unrelated,
}

/// Result of one write-and-await-ack attempt.
enum Attempt {
    /// The expected ack arrived.
    Acked,
    /// The server NACKed the frame (connection still healthy).
    Nacked,
    /// The deadline passed without a reply (connection still healthy).
    Timeout,
    /// The connection failed (I/O error, EOF, or a frame error).
    Broken,
}

fn attempt_on(
    stream: &mut Stream,
    fb: &mut FrameBuffer,
    frame: &[u8],
    classify: &impl Fn(&Message) -> Reply,
    ack_timeout: Duration,
) -> Attempt {
    if stream
        .write_all(frame)
        .and_then(|()| stream.flush())
        .is_err()
    {
        return Attempt::Broken;
    }
    let deadline = Instant::now() + ack_timeout;
    let mut buf = [0u8; 4096];
    loop {
        // Drain anything already buffered first — the ack may have
        // arrived alongside one for an earlier retransmit.
        loop {
            match fb.next_message() {
                Ok(Some(msg)) => match classify(&msg) {
                    Reply::Acked => return Attempt::Acked,
                    Reply::Nacked => return Attempt::Nacked,
                    // Stale ack from an earlier frame: skip it.
                    Reply::Unrelated => {}
                },
                Ok(None) => break,
                Err(_) => return Attempt::Broken,
            }
        }
        if Instant::now() >= deadline {
            return Attempt::Timeout;
        }
        match stream.read(&mut buf) {
            Ok(0) => return Attempt::Broken,
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return Attempt::Broken,
        }
    }
}
