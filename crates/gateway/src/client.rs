//! Sensor-side clients: the stop-and-wait [`SensorUplink`] (protocol
//! v1) and the pipelined, credit-windowed [`PipelinedUplink`]
//! (protocol v2).
//!
//! The v1 uplink is stop-and-wait: each reading is framed with a
//! per-sensor sequence number, sent, and retransmitted until the
//! server acknowledges that exact `(sensor, seq)` — with capped
//! exponential backoff plus seeded jitter between attempts, so a
//! retry storm from many motes decorrelates deterministically. An I/O
//! error tears the connection down and the next attempt reconnects,
//! which transparently rides out a server restart: whatever lost its
//! ack is re-sent on the new connection and the server's sequence
//! dedup absorbs anything that was already durable.
//!
//! The v2 uplink removes the per-reading round trip: readings are
//! coalesced into `DataBatch` frames, many batches ride the wire
//! unacknowledged at once (bounded by the credit window the server
//! grants in its `HelloAck`), and the server's cumulative `AckUpTo`
//! retires whole batches at a time. Durability semantics are
//! unchanged — an `AckUpTo` is only ever sent for readings whose WAL
//! extent a completed fsync covers — so the pipeline's only effect is
//! latency hiding. On timeout, NACK, or reconnection the uplink
//! retransmits unacked batches in order and the server's dedup
//! absorbs whatever was already durable.
//!
//! [`SensorUplink::send_at`] exposes the raw `(seq, …)` coordinate so
//! the network simulator can inject duplicates and reordering through
//! the real client path.

use crate::frame::{encode_frame, FrameBuffer, Message, PROTOCOL_V1, PROTOCOL_VERSION};
use crate::net::{is_timeout, Stream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_sim::{SensorId, Timestamp};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Uplink tuning.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// Endpoint to connect to: `"127.0.0.1:4410"` or `"unix:/path"`.
    pub connect: String,
    /// How long one attempt waits for its ack before retrying.
    pub ack_timeout: Duration,
    /// Attempts per frame before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the jitter added to each backoff.
    pub jitter_seed: u64,
    /// Jitter ceiling as a percentage of the computed delay (0
    /// disables jitter entirely — fully deterministic backoff, the
    /// knob federation drills use to compress time). Values above 100
    /// are clamped to 100.
    pub jitter_pct: u32,
    /// Fence epoch carried in the Hello handshake (0 = unfenced; the
    /// field is then omitted from the wire so pre-fencing servers and
    /// the pinned v1 Hello bytes are untouched). Federation links set
    /// this to the partition's failover epoch so a collector that was
    /// partitioned away learns it has been superseded the moment any
    /// newer-epoch peer connects.
    pub epoch: u64,
}

impl UplinkConfig {
    /// Defaults for `connect`: 500 ms ack wait, 8 attempts, 25 ms
    /// base / 2 s cap backoff with up to 50% seeded jitter.
    pub fn new(connect: impl Into<String>) -> Self {
        Self {
            connect: connect.into(),
            ack_timeout: Duration::from_millis(500),
            max_attempts: 8,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 7,
            jitter_pct: 50,
            epoch: 0,
        }
    }
}

/// Why the uplink gave up.
#[derive(Debug)]
pub enum UplinkError {
    /// Every attempt at one frame went unacknowledged.
    Exhausted {
        /// Sensor of the abandoned frame.
        sensor: SensorId,
        /// Sequence number of the abandoned frame.
        seq: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// Every attempt at the `Fin` handshake went unacknowledged.
    FinExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// Every attempt to (re)connect and complete the version
    /// handshake failed.
    ConnectExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The server refused the client's protocol version.
    VersionRejected {
        /// Highest version the server supports.
        supported: u32,
    },
}

impl fmt::Display for UplinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UplinkError::Exhausted {
                sensor,
                seq,
                attempts,
            } => write!(
                f,
                "no ack for {sensor} seq {seq} after {attempts} attempt(s)"
            ),
            UplinkError::FinExhausted { attempts } => {
                write!(f, "no fin-ack after {attempts} attempt(s)")
            }
            UplinkError::ConnectExhausted { attempts } => {
                write!(f, "handshake failed after {attempts} attempt(s)")
            }
            UplinkError::VersionRejected { supported } => {
                write!(
                    f,
                    "server rejected protocol version (supports up to {supported})"
                )
            }
        }
    }
}

impl std::error::Error for UplinkError {}

/// Client-side transport accounting, surfaced through
/// [`GatewayReport::uplink`](crate::collector::GatewayReport::uplink)
/// so pipelining regressions (retry storms, silent timeout churn) are
/// observable instead of being swallowed by the backoff loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkStats {
    /// Data-carrying frames written to the socket, including
    /// retransmissions.
    pub frames_sent: u64,
    /// Frames re-sent after a timeout, NACK, or reconnection.
    pub retransmits: u64,
    /// Ack waits that hit the deadline.
    pub timeouts: u64,
    /// NACKs received from the server.
    pub nacks: u64,
    /// Connections re-established after a failure (the first connect
    /// is not counted).
    pub reconnects: u64,
    /// Frames (v1) or batches (v2) fully acknowledged.
    pub acked: u64,
}

/// The sensor-side client. One uplink may carry any number of
/// sensors' streams (a cluster head relaying for its motes).
pub struct SensorUplink {
    config: UplinkConfig,
    conn: Option<(Stream, FrameBuffer)>,
    next_seq: BTreeMap<SensorId, u64>,
    rng: StdRng,
    /// Frames retransmitted at least once (for harness assertions).
    pub retransmits: u64,
    stats: UplinkStats,
    ever_connected: bool,
}

impl fmt::Debug for SensorUplink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SensorUplink")
            .field("connect", &self.config.connect)
            .field("retransmits", &self.retransmits)
            .finish()
    }
}

impl SensorUplink {
    /// A disconnected uplink; the first send connects lazily.
    pub fn new(config: UplinkConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        Self {
            config,
            conn: None,
            next_seq: BTreeMap::new(),
            rng,
            retransmits: 0,
            stats: UplinkStats::default(),
            ever_connected: false,
        }
    }

    /// Transport counters so far (retransmits, timeouts, NACKs, …).
    pub fn stats(&self) -> UplinkStats {
        let mut stats = self.stats;
        stats.retransmits = self.retransmits;
        stats
    }

    /// Sends one reading, assigning the sensor's next sequence number;
    /// returns it. Blocks until acked or attempts are exhausted.
    ///
    /// # Errors
    ///
    /// [`UplinkError::Exhausted`] when every attempt times out.
    pub fn send(
        &mut self,
        sensor: SensorId,
        time: Timestamp,
        values: &[f64],
    ) -> Result<u64, UplinkError> {
        let seq = {
            let next = self.next_seq.entry(sensor).or_insert(0);
            let seq = *next;
            *next += 1;
            seq
        };
        self.send_at(sensor, seq, time, values)?;
        Ok(seq)
    }

    /// Sends one frame under an explicit sequence number — the hook
    /// the network simulator uses to inject duplicate deliveries
    /// through the real retry path.
    ///
    /// # Errors
    ///
    /// [`UplinkError::Exhausted`] when every attempt times out.
    pub fn send_at(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: Timestamp,
        values: &[f64],
    ) -> Result<(), UplinkError> {
        let frame = encode_frame(&Message::Data {
            sensor,
            seq,
            time,
            values: values.to_vec(),
        });
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.retransmits += 1;
                self.backoff(attempt);
            }
            if self.attempt(&frame, |msg| match msg {
                Message::Ack { sensor: s, seq: q } if *s == sensor && *q == seq => Reply::Acked,
                // A NACK means the server is alive but refused the
                // record (poisoned storage or budget shedding): fail
                // the attempt now instead of waiting out the ack
                // deadline, and let backoff pace the re-offer.
                Message::Nack { sensor: s, seq: q } if *s == sensor && *q == seq => Reply::Nacked,
                _ => Reply::Unrelated,
            }) {
                return Ok(());
            }
        }
        Err(UplinkError::Exhausted {
            sensor,
            seq,
            attempts: self.config.max_attempts,
        })
    }

    /// Sends one `Heartbeat` probe (carrying the uplink's configured
    /// fence epoch) and waits for the `HeartbeatAck`; returns the
    /// server's committed fence epoch and last checkpointed WAL
    /// cursor, or `None` when every attempt went unanswered. The
    /// federation tier uses the pair as a liveness signal that
    /// survives stream silence and as the pre-warm coordinate for
    /// standbys.
    pub fn heartbeat(&mut self) -> Option<(u64, u64)> {
        let frame = encode_frame(&Message::Heartbeat {
            epoch: self.config.epoch,
        });
        let reply = std::cell::Cell::new(None);
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            if self.attempt(&frame, |msg| match msg {
                Message::HeartbeatAck {
                    epoch,
                    checkpoint_cursor,
                } => {
                    reply.set(Some((*epoch, *checkpoint_cursor)));
                    Reply::Acked
                }
                _ => Reply::Unrelated,
            }) {
                return reply.get();
            }
        }
        None
    }

    /// Ends the stream: sends `Fin` until `FinAck` arrives, then
    /// closes the connection.
    ///
    /// # Errors
    ///
    /// [`UplinkError::FinExhausted`] when every attempt times out.
    pub fn finish(mut self) -> Result<(), UplinkError> {
        let frame = encode_frame(&Message::Fin);
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            if self.attempt(&frame, |msg| match msg {
                Message::FinAck => Reply::Acked,
                _ => Reply::Unrelated,
            }) {
                if let Some((stream, _)) = self.conn.take() {
                    let _ = stream.shutdown();
                }
                return Ok(());
            }
        }
        Err(UplinkError::FinExhausted {
            attempts: self.config.max_attempts,
        })
    }

    /// One attempt: ensure a connection, write the frame, wait for a
    /// message `classify` marks as the ack or nack. Returns `false` on
    /// nack or timeout (keeping the connection) or I/O error (dropping
    /// it so the next attempt redials).
    fn attempt(&mut self, frame: &[u8], classify: impl Fn(&Message) -> Reply) -> bool {
        if !self.ensure_connected() {
            return false;
        }
        let Some((mut stream, mut fb)) = self.conn.take() else {
            return false;
        };
        self.stats.frames_sent += 1;
        match attempt_on(
            &mut stream,
            &mut fb,
            frame,
            &classify,
            self.config.ack_timeout,
        ) {
            Attempt::Acked => {
                self.stats.acked += 1;
                self.conn = Some((stream, fb));
                true
            }
            Attempt::Timeout => {
                // The server is slow: keep the connection, the
                // retransmit rides the same stream.
                self.stats.timeouts += 1;
                self.conn = Some((stream, fb));
                false
            }
            Attempt::Nacked => {
                // Alive but refusing; same connection, paced re-offer.
                self.stats.nacks += 1;
                self.conn = Some((stream, fb));
                false
            }
            Attempt::Broken => {
                let _ = stream.shutdown();
                false
            }
        }
    }

    fn ensure_connected(&mut self) -> bool {
        if self.conn.is_some() {
            return true;
        }
        let Ok(stream) = Stream::connect(&self.config.connect) else {
            return false;
        };
        // Read in short slices so the ack deadline stays responsive.
        let per_read = (self.config.ack_timeout / 4).max(Duration::from_millis(10));
        if stream.set_read_timeout(Some(per_read)).is_err() {
            return false;
        }
        let mut stream = stream;
        // The stop-and-wait client speaks v1 on the wire forever: its
        // bytes (and its per-frame ack discipline) must stay exactly
        // what v1 servers and the crash-recovery tests pinned down.
        let hello = encode_frame(&Message::Hello {
            version: PROTOCOL_V1,
            epoch: self.config.epoch,
        });
        if stream.write_all(&hello).is_err() {
            return false;
        }
        if self.ever_connected {
            self.stats.reconnects += 1;
        }
        self.ever_connected = true;
        self.conn = Some((stream, FrameBuffer::new()));
        true
    }

    /// Sleeps `min(cap, base · 2^(attempt−1))` plus up to
    /// `jitter_pct`% seeded jitter, so synchronized retry storms from
    /// many motes spread out deterministically.
    fn backoff(&mut self, attempt: u32) {
        backoff_sleep(&mut self.rng, &self.config, attempt);
    }
}

/// Capped exponential backoff delay: `min(cap, base · 2^(attempt−1))`
/// plus up to `jitter_pct`% of that, drawn from the seeded `rng`.
///
/// Public so the controller tier can reuse the exact same retry
/// arithmetic for failover/handoff attempts — one backoff policy
/// across the whole transport stack, every knob configurable.
pub fn backoff_delay(
    rng: &mut StdRng,
    base: Duration,
    cap: Duration,
    jitter_pct: u32,
    attempt: u32,
) -> Duration {
    let base = base.as_millis() as u64;
    let cap = cap.as_millis() as u64;
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
    let delay = exp.min(cap);
    let ceiling = delay.saturating_mul(u64::from(jitter_pct.min(100))) / 100;
    let jitter = if ceiling > 0 {
        rng.gen_range(0..ceiling + 1)
    } else {
        0
    };
    Duration::from_millis(delay + jitter)
}

/// Sleeps for [`backoff_delay`] under the uplink's backoff knobs —
/// shared by both clients.
fn backoff_sleep(rng: &mut StdRng, config: &UplinkConfig, attempt: u32) {
    std::thread::sleep(backoff_delay(
        rng,
        config.backoff_base,
        config.backoff_cap,
        config.jitter_pct,
        attempt,
    ));
}

/// How one received message relates to the frame in flight.
enum Reply {
    /// The matching ack: the frame is durable.
    Acked,
    /// The matching NACK: the server refused the frame.
    Nacked,
    /// Something else (e.g. a stale ack from an earlier retransmit).
    Unrelated,
}

/// Result of one write-and-await-ack attempt.
enum Attempt {
    /// The expected ack arrived.
    Acked,
    /// The server NACKed the frame (connection still healthy).
    Nacked,
    /// The deadline passed without a reply (connection still healthy).
    Timeout,
    /// The connection failed (I/O error, EOF, or a frame error).
    Broken,
}

/// Pipelined-uplink tuning on top of the shared transport knobs.
#[derive(Debug, Clone)]
pub struct PipelinedConfig {
    /// Endpoint, ack deadline, attempt budget, and backoff — shared
    /// with the stop-and-wait client.
    pub transport: UplinkConfig,
    /// Readings coalesced into one `DataBatch` frame.
    pub batch_size: usize,
    /// Client-side ceiling on in-flight batches; the effective window
    /// is `min(this, the server's HelloAck credit grant)`.
    pub max_inflight: usize,
}

impl PipelinedConfig {
    /// Defaults for `connect`: 256-reading batches, up to 32 batches
    /// in flight, transport defaults from [`UplinkConfig::new`].
    pub fn new(connect: impl Into<String>) -> Self {
        Self {
            transport: UplinkConfig::new(connect),
            batch_size: 256,
            max_inflight: 32,
        }
    }
}

/// A sensor's open (not yet sealed) batch: the first sequence number
/// plus the readings buffered so far.
type OpenBatch = (u64, Vec<(Timestamp, Vec<f64>)>);

/// One sealed batch: the encoded frame plus the coordinates needed to
/// retire it against cumulative acks (and to retransmit it verbatim).
struct Batch {
    sensor: SensorId,
    first_seq: u64,
    len: usize,
    frame: Vec<u8>,
    sent_at: Instant,
    attempts: u32,
}

impl Batch {
    fn last_seq(&self) -> u64 {
        self.first_seq + self.len as u64 - 1
    }
}

/// The pipelined, credit-windowed v2 client. Readings are buffered
/// per sensor, sealed into `DataBatch` frames, and streamed with up
/// to a window of batches unacknowledged; the server's cumulative
/// `AckUpTo` (sent only after the covering fsync) retires them.
/// Unacked batches are retransmitted on timeout, NACK, and
/// reconnection — the server's dedup absorbs anything already
/// durable, exactly as for the stop-and-wait client.
pub struct PipelinedUplink {
    config: PipelinedConfig,
    conn: Option<(Stream, FrameBuffer)>,
    /// Negotiated window (min of our ceiling and the server grant).
    credits: usize,
    next_seq: BTreeMap<SensorId, u64>,
    /// Per-sensor open batch: first seq + buffered readings.
    buffers: BTreeMap<SensorId, OpenBatch>,
    /// Sealed batches not yet on the wire.
    queue: VecDeque<Batch>,
    /// Batches on the wire awaiting their cumulative ack.
    inflight: VecDeque<Batch>,
    rng: StdRng,
    stats: UplinkStats,
    ever_connected: bool,
}

impl fmt::Debug for PipelinedUplink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedUplink")
            .field("connect", &self.config.transport.connect)
            .field("inflight", &self.inflight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PipelinedUplink {
    /// A disconnected uplink; the first send connects and negotiates.
    pub fn new(config: PipelinedConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.transport.jitter_seed);
        Self {
            config,
            conn: None,
            credits: 1,
            next_seq: BTreeMap::new(),
            buffers: BTreeMap::new(),
            queue: VecDeque::new(),
            inflight: VecDeque::new(),
            rng,
            stats: UplinkStats::default(),
            ever_connected: false,
        }
    }

    /// Transport counters so far.
    pub fn stats(&self) -> UplinkStats {
        self.stats
    }

    /// Buffers one reading under the sensor's next sequence number,
    /// sealing and streaming a batch when one fills. Returns the seq.
    /// Blocks only when the credit window is exhausted (waiting for
    /// an ack to free a slot).
    ///
    /// # Errors
    ///
    /// Any [`UplinkError`] once a batch (or the handshake) exhausts
    /// its attempts.
    pub fn send(
        &mut self,
        sensor: SensorId,
        time: Timestamp,
        values: &[f64],
    ) -> Result<u64, UplinkError> {
        let seq = {
            let next = self.next_seq.entry(sensor).or_insert(0);
            let seq = *next;
            *next += 1;
            seq
        };
        let batch_size = self
            .config
            .batch_size
            .clamp(1, crate::frame::MAX_BATCH_READINGS);
        let (first, readings) = self
            .buffers
            .entry(sensor)
            .or_insert_with(|| (seq, Vec::new()));
        if readings.is_empty() {
            *first = seq;
        }
        readings.push((time, values.to_vec()));
        if readings.len() >= batch_size {
            self.seal(sensor);
            self.pump(false)?;
        }
        Ok(seq)
    }

    /// Seals every buffered reading and blocks until every in-flight
    /// batch is acknowledged.
    ///
    /// # Errors
    ///
    /// Any [`UplinkError`] once a batch exhausts its attempts.
    pub fn flush(&mut self) -> Result<(), UplinkError> {
        let sensors: Vec<SensorId> = self.buffers.keys().copied().collect();
        for sensor in sensors {
            self.seal(sensor);
        }
        self.pump(true)
    }

    /// Ends the stream: flushes and awaits all acks, then runs the
    /// `Fin`/`FinAck` handshake and closes. Returns the transport
    /// counters for the run.
    ///
    /// # Errors
    ///
    /// Any [`UplinkError`]; [`UplinkError::FinExhausted`] if the
    /// handshake never completes.
    pub fn finish(mut self) -> Result<UplinkStats, UplinkError> {
        self.flush()?;
        let frame = encode_frame(&Message::Fin);
        for attempt in 0..self.config.transport.max_attempts {
            if attempt > 0 {
                backoff_sleep(&mut self.rng, &self.config.transport, attempt);
            }
            if self.conn.is_none() && self.ensure_connected().is_err() {
                continue;
            }
            let Some((mut stream, mut fb)) = self.conn.take() else {
                continue;
            };
            let classify = |msg: &Message| match msg {
                Message::FinAck => Reply::Acked,
                _ => Reply::Unrelated,
            };
            match attempt_on(
                &mut stream,
                &mut fb,
                &frame,
                &classify,
                self.config.transport.ack_timeout,
            ) {
                Attempt::Acked => {
                    let _ = stream.shutdown();
                    return Ok(self.stats);
                }
                Attempt::Timeout | Attempt::Nacked => {
                    self.conn = Some((stream, fb));
                }
                Attempt::Broken => {
                    let _ = stream.shutdown();
                }
            }
        }
        Err(UplinkError::FinExhausted {
            attempts: self.config.transport.max_attempts,
        })
    }

    /// Moves the sensor's open buffer into the send queue as one
    /// encoded `DataBatch` frame.
    fn seal(&mut self, sensor: SensorId) {
        let Some((first_seq, readings)) = self.buffers.remove(&sensor) else {
            return;
        };
        if readings.is_empty() {
            return;
        }
        let len = readings.len();
        let frame = encode_frame(&Message::DataBatch {
            sensor,
            first_seq,
            readings,
        });
        self.queue.push_back(Batch {
            sensor,
            first_seq,
            len,
            frame,
            sent_at: Instant::now(),
            attempts: 0,
        });
    }

    /// The engine: keeps the wire full. Sends queued batches while
    /// the window has room; when the window is full (or `drain` wants
    /// everything retired) waits for acks, retransmitting what times
    /// out. Returns with the queue empty — and, when `drain` is set,
    /// the in-flight window empty too.
    fn pump(&mut self, drain: bool) -> Result<(), UplinkError> {
        loop {
            self.ensure_connected()?;
            let mut broken = false;
            while self.inflight.len() < self.credits {
                let Some(mut batch) = self.queue.pop_front() else {
                    break;
                };
                let Some((stream, _)) = self.conn.as_mut() else {
                    self.queue.push_front(batch);
                    broken = true;
                    break;
                };
                batch.attempts += 1;
                if batch.attempts > 1 {
                    self.stats.retransmits += 1;
                }
                self.stats.frames_sent += 1;
                if stream
                    .write_all(&batch.frame)
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    self.queue.push_front(batch);
                    broken = true;
                    break;
                }
                batch.sent_at = Instant::now();
                self.inflight.push_back(batch);
            }
            if broken {
                self.disconnect();
                continue;
            }
            if self.queue.is_empty() && (!drain || self.inflight.is_empty()) {
                return Ok(());
            }
            self.await_progress()?;
        }
    }

    /// Blocks until something changes: a batch retires, a batch times
    /// out back into the queue, or the connection drops (the caller's
    /// loop reconnects and retransmits).
    fn await_progress(&mut self) -> Result<(), UplinkError> {
        let Some((mut stream, mut fb)) = self.conn.take() else {
            return Ok(());
        };
        let mut buf = [0u8; 8192];
        loop {
            loop {
                match fb.next_message() {
                    Ok(Some(msg)) => match self.handle_reply(&msg) {
                        Ok(true) => {
                            self.conn = Some((stream, fb));
                            return Ok(());
                        }
                        Ok(false) => {}
                        Err(e) => return Err(e),
                    },
                    Ok(None) => break,
                    Err(_) => {
                        // Corrupt reply stream: drop the connection;
                        // reconnection replays the in-flight window.
                        let _ = stream.shutdown();
                        return Ok(());
                    }
                }
            }
            if let Some(overdue) = self.take_overdue()? {
                self.stats.timeouts += 1;
                self.queue.push_front(overdue);
                self.conn = Some((stream, fb));
                return Ok(());
            }
            match stream.read(&mut buf) {
                Ok(0) => {
                    let _ = stream.shutdown();
                    return Ok(());
                }
                Ok(n) => fb.feed(&buf[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => {
                    let _ = stream.shutdown();
                    return Ok(());
                }
            }
        }
    }

    /// Pulls the oldest in-flight batch past the ack deadline, if
    /// any; errors when it is out of attempts.
    fn take_overdue(&mut self) -> Result<Option<Batch>, UplinkError> {
        let deadline = self.config.transport.ack_timeout;
        let pos = self
            .inflight
            .iter()
            .position(|b| b.sent_at.elapsed() >= deadline);
        let Some(pos) = pos else {
            return Ok(None);
        };
        // sentinet-allow(expect-used): position() came from this deque
        let batch = self.inflight.remove(pos).expect("indexed batch");
        if batch.attempts >= self.config.transport.max_attempts {
            return Err(UplinkError::Exhausted {
                sensor: batch.sensor,
                seq: batch.first_seq,
                attempts: batch.attempts,
            });
        }
        Ok(Some(batch))
    }

    /// Processes one server reply; `Ok(true)` means progress (a batch
    /// retired or requeued) that lets the pump loop re-evaluate.
    fn handle_reply(&mut self, msg: &Message) -> Result<bool, UplinkError> {
        match msg {
            Message::AckUpTo { sensor, seq } => {
                let before = self.inflight.len();
                self.inflight
                    .retain(|b| !(b.sensor == *sensor && b.last_seq() <= *seq));
                let retired = before - self.inflight.len();
                self.stats.acked += retired as u64;
                Ok(retired > 0)
            }
            Message::Nack { sensor, seq } => {
                self.stats.nacks += 1;
                let pos = self.inflight.iter().position(|b| {
                    b.sensor == *sensor && b.first_seq <= *seq && *seq <= b.last_seq()
                });
                let Some(pos) = pos else {
                    return Ok(false);
                };
                // sentinet-allow(expect-used): position() came from this deque
                let batch = self.inflight.remove(pos).expect("indexed batch");
                if batch.attempts >= self.config.transport.max_attempts {
                    return Err(UplinkError::Exhausted {
                        sensor: batch.sensor,
                        seq: *seq,
                        attempts: batch.attempts,
                    });
                }
                // Alive but refusing (poisoned storage, budget): pace
                // the re-offer like the stop-and-wait client does.
                backoff_sleep(&mut self.rng, &self.config.transport, batch.attempts);
                self.queue.push_front(batch);
                Ok(true)
            }
            Message::HelloReject { supported } => Err(UplinkError::VersionRejected {
                supported: *supported,
            }),
            // Stale handshake replies, v1 acks, or anything else a
            // server might emit: not ours, not progress.
            _ => Ok(false),
        }
    }

    fn disconnect(&mut self) {
        if let Some((stream, _)) = self.conn.take() {
            let _ = stream.shutdown();
        }
    }

    /// Connects and completes the v2 handshake (with the transport's
    /// attempt/backoff budget), then requeues the dead connection's
    /// in-flight window for retransmission.
    fn ensure_connected(&mut self) -> Result<(), UplinkError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let transport = self.config.transport.clone();
        for attempt in 0..transport.max_attempts {
            if attempt > 0 {
                backoff_sleep(&mut self.rng, &transport, attempt);
            }
            let Ok(stream) = Stream::connect(&transport.connect) else {
                continue;
            };
            let per_read = (transport.ack_timeout / 4).max(Duration::from_millis(10));
            if stream.set_read_timeout(Some(per_read)).is_err() {
                continue;
            }
            let mut stream = stream;
            let hello = encode_frame(&Message::Hello {
                version: PROTOCOL_VERSION,
                epoch: transport.epoch,
            });
            if stream
                .write_all(&hello)
                .and_then(|()| stream.flush())
                .is_err()
            {
                continue;
            }
            let mut fb = FrameBuffer::new();
            let deadline = Instant::now() + transport.ack_timeout;
            let mut buf = [0u8; 4096];
            'wait: loop {
                loop {
                    match fb.next_message() {
                        Ok(Some(Message::HelloAck { credits, .. })) => {
                            self.credits = (credits as usize).min(self.config.max_inflight).max(1);
                            if self.ever_connected {
                                self.stats.reconnects += 1;
                            }
                            self.ever_connected = true;
                            // Whatever the dead connection had in
                            // flight is unconfirmed: send it again,
                            // oldest first; dedup absorbs duplicates.
                            while let Some(b) = self.inflight.pop_back() {
                                self.stats.retransmits += 1;
                                self.queue.push_front(b);
                            }
                            self.conn = Some((stream, fb));
                            return Ok(());
                        }
                        Ok(Some(Message::HelloReject { supported })) => {
                            return Err(UplinkError::VersionRejected { supported })
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => break 'wait,
                    }
                }
                if Instant::now() >= deadline {
                    break 'wait;
                }
                match stream.read(&mut buf) {
                    Ok(0) => break 'wait,
                    Ok(n) => fb.feed(&buf[..n]),
                    Err(e) if is_timeout(&e) => {}
                    Err(_) => break 'wait,
                }
            }
        }
        Err(UplinkError::ConnectExhausted {
            attempts: transport.max_attempts,
        })
    }
}

/// One-shot heartbeat over a dedicated connection: dial `connect`,
/// send a `Heartbeat` carrying `epoch`, wait up to `timeout` for the
/// `HeartbeatAck`, and return the server's `(fence epoch, checkpoint
/// cursor)`. `None` on any connect, I/O, or deadline failure — the
/// caller's liveness machine treats that as a missed beat, never an
/// error. Kept separate from both uplinks so the federation's
/// heartbeat channel cannot perturb the data path's retransmit state.
pub fn probe_heartbeat(connect: &str, epoch: u64, timeout: Duration) -> Option<(u64, u64)> {
    let stream = Stream::connect(connect).ok()?;
    let per_read = (timeout / 4).max(Duration::from_millis(10));
    stream.set_read_timeout(Some(per_read)).ok()?;
    let mut stream = stream;
    stream
        .write_all(&encode_frame(&Message::Heartbeat { epoch }))
        .and_then(|()| stream.flush())
        .ok()?;
    let mut fb = FrameBuffer::new();
    let deadline = Instant::now() + timeout;
    let mut buf = [0u8; 1024];
    loop {
        loop {
            match fb.next_message() {
                Ok(Some(Message::HeartbeatAck {
                    epoch,
                    checkpoint_cursor,
                })) => return Some((epoch, checkpoint_cursor)),
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => return None,
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) if is_timeout(&e) => {}
            Err(_) => return None,
        }
    }
}

/// One-shot migration exchange over a dedicated connection: dial
/// `connect`, send `request`, and wait up to `timeout` for the first
/// reply `matches` accepts. `None` on any connect, I/O, or deadline
/// failure — the migration driver treats that as a failed step (abort
/// or retry), never an error. Like [`probe_heartbeat`], deliberately
/// separate from the data uplinks so migration control traffic cannot
/// perturb retransmit state.
fn migrate_exchange<T>(
    connect: &str,
    request: &Message,
    timeout: Duration,
    matches: impl Fn(Message) -> Option<T>,
) -> Option<T> {
    let stream = Stream::connect(connect).ok()?;
    let per_read = (timeout / 4).max(Duration::from_millis(10));
    stream.set_read_timeout(Some(per_read)).ok()?;
    let mut stream = stream;
    stream
        .write_all(&encode_frame(request))
        .and_then(|()| stream.flush())
        .ok()?;
    let mut fb = FrameBuffer::new();
    let deadline = Instant::now() + timeout;
    let mut buf = [0u8; 4096];
    loop {
        loop {
            match fb.next_message() {
                Ok(Some(msg)) => {
                    if let Some(out) = matches(msg) {
                        return Some(out);
                    }
                }
                Ok(None) => break,
                Err(_) => return None,
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) if is_timeout(&e) => {}
            Err(_) => return None,
        }
    }
}

/// Orders the collector at `connect` to cut the sensor range
/// `[start, end)` out of its live state (a `MigrateOffer`), returning
/// the cut's WAL cursor and the staged sub-range snapshot bytes from
/// the `MigrateAccept`. From the moment this returns, the source
/// NACKs the range as fenced. `None` means the cut did not commit
/// there — safe to retry (the cut is idempotent) or abort.
pub fn probe_migrate_cut(
    connect: &str,
    start: u16,
    end: u16,
    timeout: Duration,
) -> Option<(u64, Vec<u8>)> {
    migrate_exchange(
        connect,
        &Message::MigrateOffer { start, end },
        timeout,
        |msg| match msg {
            Message::MigrateAccept {
                start: s,
                end: e,
                cursor,
                snapshot,
            } if (s, e) == (start, end) => Some((cursor, snapshot)),
            _ => None,
        },
    )
}

/// Ships a staged sub-range snapshot to the destination collector at
/// `connect` (a forwarded `MigrateAccept`) and waits for its
/// `MigrateDone` — the confirmation that the restore point is durable
/// at the new home. `None` means adoption did not commit; the staged
/// source copy stays authoritative and the step can be retried.
pub fn probe_migrate_adopt(
    connect: &str,
    start: u16,
    end: u16,
    cursor: u64,
    snapshot: Vec<u8>,
    timeout: Duration,
) -> Option<()> {
    migrate_exchange(
        connect,
        &Message::MigrateAccept {
            start,
            end,
            cursor,
            snapshot,
        },
        timeout,
        |msg| match msg {
            Message::MigrateDone {
                start: s,
                end: e,
                cursor: c,
            } if (s, e, c) == (start, end, cursor) => Some(()),
            _ => None,
        },
    )
}

/// Tells the source collector at `connect` that the destination has
/// durably adopted `[start, end)` (a forwarded `MigrateDone`), letting
/// it drop the staged outbox payload. Best-effort by design — a
/// leftover outbox for a retired range is inert — so `None` only
/// means the cleanup signal was not acknowledged.
pub fn probe_migrate_done(
    connect: &str,
    start: u16,
    end: u16,
    cursor: u64,
    timeout: Duration,
) -> Option<()> {
    migrate_exchange(
        connect,
        &Message::MigrateDone { start, end, cursor },
        timeout,
        |msg| match msg {
            Message::MigrateDone {
                start: s,
                end: e,
                cursor: c,
            } if (s, e, c) == (start, end, cursor) => Some(()),
            _ => None,
        },
    )
}

fn attempt_on(
    stream: &mut Stream,
    fb: &mut FrameBuffer,
    frame: &[u8],
    classify: &impl Fn(&Message) -> Reply,
    ack_timeout: Duration,
) -> Attempt {
    if stream
        .write_all(frame)
        .and_then(|()| stream.flush())
        .is_err()
    {
        return Attempt::Broken;
    }
    let deadline = Instant::now() + ack_timeout;
    let mut buf = [0u8; 4096];
    loop {
        // Drain anything already buffered first — the ack may have
        // arrived alongside one for an earlier retransmit.
        loop {
            match fb.next_message() {
                Ok(Some(msg)) => match classify(&msg) {
                    Reply::Acked => return Attempt::Acked,
                    Reply::Nacked => return Attempt::Nacked,
                    // Stale ack from an earlier frame: skip it.
                    Reply::Unrelated => {}
                },
                Ok(None) => break,
                Err(_) => return Attempt::Broken,
            }
        }
        if Instant::now() >= deadline {
            return Attempt::Timeout;
        }
        match stream.read(&mut buf) {
            Ok(0) => return Attempt::Broken,
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return Attempt::Broken,
        }
    }
}
