//! Socket-level end-to-end tests: a real `Server` + `Collector` on one
//! side, a retrying `SensorUplink` on the other, over loopback TCP and
//! Unix sockets. A seeded lossy delivery schedule driven through the
//! wire must land on the same bit-identical report as in-process
//! in-order delivery, wire-level corruption (via the engine's chaos
//! frame corrupter) must be rejected without polluting the pipeline,
//! and the whole path must survive a long soak.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_engine::corrupt_frames;
use sentinet_gateway::frame::encode_frame;
use sentinet_gateway::server::hello_frame;
use sentinet_gateway::{
    delivery_schedule, drive_uplink, trace_to_raw, Collector, FrameBuffer, FrameError, FsyncPolicy,
    GatewayConfig, GatewayReport, Message, NetsimConfig, PipelinedConfig, PipelinedUplink,
    SensorUplink, Server, ServerConfig, UplinkConfig, PROTOCOL_V1, PROTOCOL_VERSION,
};
use sentinet_sim::{gdi, simulate, RawRecord, SensorId, DAY_S};
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinet-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn gdi_records(days: u64, sensors: u16, seed: u64) -> Vec<RawRecord> {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    cfg.num_sensors = sensors;
    let mut rng = StdRng::seed_from_u64(seed);
    trace_to_raw(&simulate(&cfg, &mut rng))
}

fn in_order_report(name: &str, records: &[RawRecord]) -> GatewayReport {
    let dir = tmpdir(name);
    let (mut collector, _) = Collector::open(GatewayConfig::new(&dir)).expect("open");
    let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
    for r in records {
        let seq = seqs.entry(r.sensor).or_insert(0);
        collector
            .deliver(r.sensor, *seq, r.time, r.values.clone())
            .expect("deliver");
        *seq += 1;
    }
    let report = collector.finish().expect("finish");
    fs::remove_dir_all(&dir).ok();
    report
}

/// Runs a server on `bind`, drives `schedule` through a real uplink in
/// a client thread, and returns the finished report.
fn serve_schedule(
    name: &str,
    bind: &str,
    schedule: Vec<sentinet_gateway::Emission>,
) -> GatewayReport {
    let dir = tmpdir(name);
    let (mut collector, _) = Collector::open(GatewayConfig::new(&dir)).expect("open");
    let server = Server::start(ServerConfig {
        bind: bind.into(),
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.addr().to_string();
    let client = std::thread::spawn(move || {
        let mut uplink = SensorUplink::new(UplinkConfig::new(addr));
        drive_uplink(&mut uplink, &schedule).expect("uplink delivery");
        uplink.finish().expect("fin/finack");
    });
    let stats = server.run(&mut collector).expect("serve");
    client.join().expect("client thread");
    assert_eq!(stats.bad_frames, 0, "clean client tripped frame errors");
    let report = collector.finish().expect("finish");
    fs::remove_dir_all(&dir).ok();
    report
}

#[test]
fn tcp_uplink_matches_in_order_delivery() {
    let records = gdi_records(1, 3, 21);
    let baseline = in_order_report("tcp-base", &records);
    let schedule = delivery_schedule(&records, &NetsimConfig::default());
    let report = serve_schedule("tcp-run", "127.0.0.1:0", schedule);
    assert_eq!(
        format!("{}", report.pipeline),
        format!("{}", baseline.pipeline),
        "socket delivery diverged from in-order"
    );
    assert!(report.ingest.rejected.is_empty());
    assert_eq!(report.ingest.accepted, baseline.ingest.accepted);
}

#[cfg(unix)]
#[test]
fn unix_socket_uplink_matches_in_order_delivery() {
    let records = gdi_records(1, 2, 22);
    let baseline = in_order_report("unix-base", &records);
    let schedule = delivery_schedule(
        &records,
        &NetsimConfig {
            seed: 5,
            ..NetsimConfig::default()
        },
    );
    let sock = std::env::temp_dir().join(format!("sentinet-e2e-{}.sock", std::process::id()));
    let bind = format!("unix:{}", sock.display());
    let report = serve_schedule("unix-run", &bind, schedule);
    assert_eq!(
        format!("{}", report.pipeline),
        format!("{}", baseline.pipeline)
    );
    let _ = fs::remove_file(&sock);
}

/// The pipelined (v2) client over loopback TCP must land on the same
/// bit-identical report as in-order in-process delivery, across fsync
/// policies — including `batch:N`, where acks are deferred until the
/// covering group fsync.
#[test]
fn pipelined_uplink_matches_in_order_delivery_across_fsync_policies() {
    let records = gdi_records(1, 3, 31);
    // Batching delivers one sensor's readings in bursts spanning
    // `batch_size × sample_period` stream-seconds, so the reorder
    // watermark must cover that skew (and the buffer must hold a
    // batch) or other sensors' same-era readings are dropped as late.
    // Both sides of the comparison get the same tuning.
    let tune = |dir: &PathBuf| {
        let mut cfg = GatewayConfig::new(dir);
        cfg.reorder.watermark_delay = 2 * 64 * 300;
        cfg.reorder.per_sensor_capacity = 512;
        cfg
    };
    let baseline = {
        let dir = tmpdir("pipe-base");
        let (mut collector, _) = Collector::open(tune(&dir)).expect("open");
        let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
        for r in &records {
            let seq = seqs.entry(r.sensor).or_insert(0);
            collector
                .deliver(r.sensor, *seq, r.time, r.values.clone())
                .expect("deliver");
            *seq += 1;
        }
        let report = collector.finish().expect("finish");
        fs::remove_dir_all(&dir).ok();
        report
    };
    for (tag, fsync) in [
        ("never", FsyncPolicy::Never),
        ("batch", FsyncPolicy::Batch(64)),
        ("always", FsyncPolicy::Always),
    ] {
        let dir = tmpdir(&format!("pipe-{tag}"));
        let mut cfg = tune(&dir);
        cfg.wal.fsync = fsync;
        let (mut collector, _) = Collector::open(cfg).expect("open");
        let server = Server::start(ServerConfig::default()).expect("bind server");
        let addr = server.addr().to_string();
        let client_records = records.clone();
        let client = std::thread::spawn(move || {
            let mut config = PipelinedConfig::new(addr);
            config.batch_size = 64;
            let mut uplink = PipelinedUplink::new(config);
            for r in &client_records {
                uplink.send(r.sensor, r.time, &r.values).expect("send");
            }
            uplink.finish().expect("fin/finack")
        });
        let stats = server.run(&mut collector).expect("serve");
        let uplink_stats = client.join().expect("client thread");
        assert_eq!(stats.bad_frames, 0, "{tag}: {:?}", stats.frame_errors);
        assert_eq!(stats.version_rejects, 0, "{tag}");
        let report = collector.finish().expect("finish");
        fs::remove_dir_all(&dir).ok();
        assert_eq!(
            format!("{}", report.pipeline),
            format!("{}", baseline.pipeline),
            "{tag}: pipelined delivery diverged from in-order"
        );
        assert_eq!(report.ingest.accepted, baseline.ingest.accepted, "{tag}");
        assert!(report.ingest.rejected.is_empty(), "{tag}");
        // Every batch put on the wire came back acknowledged.
        assert!(uplink_stats.frames_sent > 0, "{tag}");
        assert_eq!(
            uplink_stats.acked,
            uplink_stats.frames_sent - uplink_stats.retransmits,
            "{tag}: unacked batches at finish: {uplink_stats:?}"
        );
    }
}

/// A client announcing an unknown protocol version gets a typed
/// `HelloReject` and is dropped; the server counts it as a version
/// reject, not corrupt-frame noise, and keeps serving other clients.
#[test]
fn unknown_protocol_version_is_rejected_typed() {
    let dir = tmpdir("ver-reject");
    let (mut collector, _) = Collector::open(GatewayConfig::new(&dir)).expect("open");
    let server = Server::start(ServerConfig::default()).expect("bind server");
    let addr = server.addr().to_string();
    let client = std::thread::spawn(move || {
        // Rogue hello from the future.
        let mut conn = TcpStream::connect(&addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        conn.write_all(&encode_frame(&Message::Hello {
            version: 99,
            epoch: 0,
        }))
        .expect("hello");
        let mut fb = FrameBuffer::new();
        let mut buf = [0u8; 256];
        let supported = 'reject: loop {
            match fb.next_message() {
                Ok(Some(Message::HelloReject { supported })) => break 'reject supported,
                Ok(Some(other)) => panic!("unexpected reply {other:?}"),
                Ok(None) => {}
                Err(e) => panic!("frame error {e}"),
            }
            match conn.read(&mut buf) {
                Ok(0) => panic!("eof before HelloReject"),
                Ok(n) => fb.feed(&buf[..n]),
                Err(e) => panic!("read: {e}"),
            }
        };
        // A healthy v2 client on the same server is unaffected.
        let mut config = PipelinedConfig::new(addr);
        config.batch_size = 8;
        let mut uplink = PipelinedUplink::new(config);
        uplink.send(SensorId(1), 300, &[20.0, 45.0]).expect("send");
        uplink.finish().expect("fin/finack");
        supported
    });
    let stats = server.run(&mut collector).expect("serve");
    let supported = client.join().expect("client thread");
    assert_eq!(supported, sentinet_gateway::PROTOCOL_VERSION);
    assert_eq!(stats.version_rejects, 1);
    assert_eq!(stats.bad_frames, 0);
    let report = collector.finish().expect("finish");
    assert_eq!(report.ingest.accepted, 1);
    fs::remove_dir_all(&dir).ok();
}

/// A server pinned to protocol v1 rejects a current (v2) `Hello` with
/// a typed `HelloReject { supported: 1 }`: the counter classifies it
/// as a version reject and the reply is byte-for-byte the encoded
/// reject frame — nothing more — before the socket closes. A legacy
/// stop-and-wait client on the same server is still served.
#[test]
fn v1_only_server_rejects_v2_hello_with_exact_wire_bytes() {
    let dir = tmpdir("v1-only");
    let (mut collector, _) = Collector::open(GatewayConfig::new(&dir)).expect("open");
    let server = Server::start(ServerConfig {
        v1_only: true,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.addr().to_string();
    let client = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        conn.write_all(&encode_frame(&Message::Hello {
            version: PROTOCOL_VERSION,
            epoch: 0,
        }))
        .expect("hello");
        // The server writes the reject, flushes, and shuts the socket
        // down; everything up to EOF is the raw reject frame.
        let mut wire = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match conn.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => wire.extend_from_slice(&buf[..n]),
                Err(e) => panic!("read: {e}"),
            }
        }
        // The pinned server still speaks v1: a stop-and-wait client
        // lands a record and terminates the run with Fin/FinAck.
        let mut uplink = SensorUplink::new(UplinkConfig::new(addr));
        uplink
            .send_at(SensorId(1), 0, 300, &[20.0, 45.0])
            .expect("send");
        uplink.finish().expect("fin/finack");
        wire
    });
    let stats = server.run(&mut collector).expect("serve");
    let wire = client.join().expect("client thread");
    assert_eq!(
        wire,
        encode_frame(&Message::HelloReject {
            supported: PROTOCOL_V1
        }),
        "reject reply must be exactly one encoded HelloReject frame"
    );
    assert_eq!(stats.version_rejects, 1);
    assert_eq!(stats.bad_frames, 0);
    let report = collector.finish().expect("finish");
    assert_eq!(report.ingest.accepted, 1);
    fs::remove_dir_all(&dir).ok();
}

/// The engine's frame corrupter feeds the gateway's decoder directly:
/// a duplicated frame decodes twice, a torn frame stays pending (never
/// a phantom message), and a flipped CRC byte is rejected loudly.
#[test]
fn corrupt_frames_exercise_every_decoder_path() {
    let frame = encode_frame(&Message::Data {
        sensor: SensorId(1),
        seq: 7,
        time: 300,
        values: vec![20.0, 50.0],
    });
    let frames: Vec<Vec<u8>> = vec![frame.clone(); 64];
    let corrupted = corrupt_frames(&frames, 99, 1.0);
    // Duplicate mode grows the output; with rate 1.0 every clean
    // element is such a duplicated copy.
    assert!(
        corrupted.len() > frames.len(),
        "no duplicate mode at rate 1.0"
    );

    let (mut dups, mut torn, mut bad_crc) = (0usize, 0, 0);
    for bytes in &corrupted {
        let mut fb = FrameBuffer::new();
        fb.feed(bytes);
        if *bytes == frame {
            // A duplicated copy decodes cleanly.
            assert!(matches!(fb.next_message(), Ok(Some(Message::Data { .. }))));
            assert!(matches!(fb.next_message(), Ok(None)));
            dups += 1;
        } else if bytes.len() < frame.len() {
            // Torn mode: the decoder waits for more bytes (or rejects
            // on a damaged length prefix) — it never invents a message.
            match fb.next_message() {
                Ok(None) => torn += 1,
                Err(_) => torn += 1,
                Ok(Some(_)) => panic!("torn frame decoded as a full message"),
            }
        } else {
            // Flip mode targets the CRC trailer.
            assert!(matches!(fb.next_message(), Err(FrameError::BadCrc { .. })));
            bad_crc += 1;
        }
    }
    assert!(
        dups > 0 && torn > 0 && bad_crc > 0,
        "{dups}/{torn}/{bad_crc}"
    );
}

/// A rogue connection replaying CRC-flipped frames is dropped and
/// counted, while a clean client on the same server is unaffected:
/// the final report matches clean in-order delivery exactly.
#[test]
fn corrupted_connections_are_dropped_without_polluting_the_report() {
    let records = gdi_records(1, 2, 23);
    let baseline = in_order_report("rogue-base", &records);

    // Frames replaying the stream's first record; corrupt until the
    // deterministic search finds a seed where every frame lands in
    // flip-CRC mode (so every rogue connection must die on BadCrc).
    let first = &records[0];
    let frame = encode_frame(&Message::Data {
        sensor: first.sensor,
        seq: 0,
        time: first.time,
        values: first.values.clone(),
    });
    let frames = vec![frame.clone(); 3];
    let flipped = (0..500u64)
        .map(|seed| corrupt_frames(&frames, seed, 1.0))
        .find(|out| out.iter().all(|f| f.len() == frame.len() && *f != frame))
        .expect("a seed where all frames flip a CRC byte");

    let dir = tmpdir("rogue-run");
    let (mut collector, _) = Collector::open(GatewayConfig::new(&dir)).expect("open");
    let server = Server::start(ServerConfig::default()).expect("bind server");
    let addr = server.addr().to_string();
    let rogue_count = flipped.len() as u64;
    let client_records = records.clone();
    let client = std::thread::spawn(move || {
        // Rogue phase first: each bad frame on its own connection; the
        // server must shut each one down (observed as EOF here).
        for bad in &flipped {
            let mut conn = TcpStream::connect(&addr).expect("rogue connect");
            conn.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            conn.write_all(&hello_frame()).expect("hello");
            conn.write_all(bad).expect("bad frame");
            let mut sink = [0u8; 256];
            loop {
                match conn.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) => panic!("rogue read: {e}"),
                }
            }
        }
        // Clean phase: the full stream, in order, through the uplink.
        let mut uplink = SensorUplink::new(UplinkConfig::new(addr));
        let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
        for r in &client_records {
            let seq = seqs.entry(r.sensor).or_insert(0);
            uplink
                .send_at(r.sensor, *seq, r.time, &r.values)
                .expect("send");
            *seq += 1;
        }
        uplink.finish().expect("fin/finack");
    });
    let stats = server.run(&mut collector).expect("serve");
    client.join().expect("client thread");
    assert_eq!(stats.bad_frames, rogue_count, "{:?}", stats.frame_errors);
    assert!(stats
        .frame_errors
        .iter()
        .all(|e| matches!(e, FrameError::BadCrc { .. })));

    let report = collector.finish().expect("finish");
    fs::remove_dir_all(&dir).ok();
    assert_eq!(
        format!("{}", report.pipeline),
        format!("{}", baseline.pipeline),
        "rogue frames leaked into the pipeline"
    );
}

/// Long soak over loopback: a week of four sensors through a lossy
/// seeded schedule, retries and dedup doing real work. Run with
/// `cargo test -p sentinet-gateway -- --ignored`.
#[test]
#[ignore = "soak: long-running, exercised by the CI gateway job"]
fn soak_week_long_lossy_stream_over_tcp() {
    let records = gdi_records(7, 4, 24);
    let baseline = in_order_report("soak-base", &records);
    let schedule = delivery_schedule(
        &records,
        &NetsimConfig {
            seed: 77,
            dup_rate: 0.1,
            ..NetsimConfig::default()
        },
    );
    let report = serve_schedule("soak-run", "127.0.0.1:0", schedule);
    assert_eq!(
        format!("{}", report.pipeline),
        format!("{}", baseline.pipeline)
    );
    assert!(report.ingest.rejected.is_empty());
    assert!(report.ingest.duplicates > 0, "soak never exercised dedup");
}

/// Sends one v1 `Data` frame on a throwaway connection and returns the
/// server's typed reply (`Ack` or `Nack`).
fn v1_exchange(addr: &str, sensor: u16, seq: u64, time: u64) -> Message {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn.write_all(&encode_frame(&Message::Data {
        sensor: SensorId(sensor),
        seq,
        time,
        values: vec![20.0, 45.0],
    }))
    .expect("data");
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 256];
    loop {
        match fb.next_message() {
            Ok(Some(msg)) => return msg,
            Ok(None) => {}
            Err(e) => panic!("frame error {e}"),
        }
        match conn.read(&mut buf) {
            Ok(0) => panic!("eof before reply"),
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
}

/// Ends a server run with a Fin/FinAck exchange.
fn shut_down(addr: &str) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn.write_all(&encode_frame(&Message::Fin)).expect("fin");
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 256];
    loop {
        match fb.next_message() {
            Ok(Some(Message::FinAck)) => return,
            Ok(Some(other)) => panic!("unexpected reply {other:?}"),
            Ok(None) => {}
            Err(e) => panic!("frame error {e}"),
        }
        match conn.read(&mut buf) {
            Ok(0) => panic!("eof before FinAck"),
            Ok(n) => fb.feed(&buf[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
}

/// The full three-frame migration handshake over real sockets: a
/// controller-shaped probe cuts sensor 1 out of a live source server,
/// ships the staged snapshot to a fresh destination server, and
/// confirms adoption. From the cut on, the source NACKs the moved
/// range while still serving its own; the destination absorbs a
/// pre-cut retransmission through the shipped dedup state, accepts the
/// next fresh reading, and the completion signal clears the source's
/// staged outbox copy.
#[test]
fn live_range_migration_moves_a_sensor_between_servers() {
    let records = gdi_records(1, 3, 77);
    let baseline = in_order_report("mig-base", &records);
    let src_dir = tmpdir("mig-src");
    let (mut src, _) = Collector::open(GatewayConfig::new(&src_dir)).expect("open src");
    let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
    for r in &records {
        let seq = seqs.entry(r.sensor).or_insert(0);
        src.deliver(r.sensor, *seq, r.time, r.values.clone())
            .expect("deliver");
        *seq += 1;
    }
    let dst_dir = tmpdir("mig-dst");
    let (mut dst, _) = Collector::open(GatewayConfig::new(&dst_dir)).expect("open dst");

    let src_server = Server::start(ServerConfig::default()).expect("bind src");
    let dst_server = Server::start(ServerConfig::default()).expect("bind dst");
    let src_addr = src_server.addr().to_string();
    let dst_addr = dst_server.addr().to_string();
    let src_thread = std::thread::spawn(move || {
        src_server.run(&mut src).expect("src serve");
        src.finish().expect("src finish")
    });
    let dst_thread = std::thread::spawn(move || {
        dst_server.run(&mut dst).expect("dst serve");
        dst.finish().expect("dst finish")
    });

    let timeout = Duration::from_secs(10);
    let (cursor, snapshot) =
        sentinet_gateway::probe_migrate_cut(&src_addr, 1, 2, timeout).expect("cut");
    assert_eq!(cursor, records.len() as u64, "cut cursor covers the log");

    // From the cut on the source fences the moved sensor but keeps
    // serving its own.
    let tail_time = 2 * DAY_S;
    let moved_seq = seqs[&SensorId(1)];
    assert!(matches!(
        v1_exchange(&src_addr, 1, moved_seq, tail_time),
        Message::Nack { .. }
    ));
    assert!(matches!(
        v1_exchange(&src_addr, 0, seqs[&SensorId(0)], tail_time),
        Message::Ack { .. }
    ));

    sentinet_gateway::probe_migrate_adopt(&dst_addr, 1, 2, cursor, snapshot, timeout)
        .expect("adopt");
    // A pre-cut retransmission is absorbed by the shipped dedup state;
    // the next fresh reading lands.
    assert!(matches!(
        v1_exchange(&dst_addr, 1, 0, 300),
        Message::Ack { .. }
    ));
    assert!(matches!(
        v1_exchange(&dst_addr, 1, moved_seq, tail_time),
        Message::Ack { .. }
    ));

    sentinet_gateway::probe_migrate_done(&src_addr, 1, 2, cursor, timeout).expect("done");
    assert!(
        !src_dir.join("outbox-1-2.ck").exists(),
        "completion must clear the staged outbox copy"
    );

    shut_down(&src_addr);
    shut_down(&dst_addr);
    let src_report = src_thread.join().expect("src thread");
    let dst_report = dst_thread.join().expect("dst thread");
    // Nothing is lost or double-counted across the cut: readings of
    // sensor 1 still sitting in the reorder buffer moved with the
    // shipped snapshot and are accepted at the destination, so the
    // two ledgers together cover the baseline plus the two tail
    // readings delivered post-cut.
    assert_eq!(
        src_report.ingest.accepted + dst_report.ingest.accepted,
        baseline.ingest.accepted + 2
    );
    assert!(
        dst_report.ingest.accepted >= 1,
        "the post-cut reading must land at the destination"
    );
    assert!(src_report.ingest.rejected.is_empty());
    assert!(dst_report.ingest.rejected.is_empty());
    fs::remove_dir_all(&src_dir).ok();
    fs::remove_dir_all(&dst_dir).ok();
}
