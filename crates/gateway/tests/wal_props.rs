//! Property tests for the WAL codec: arbitrary record batches
//! round-trip bit-exactly, a torn tail cut at *every* byte offset of
//! the final record recovers exactly the preceding prefix, and a
//! single flipped bit anywhere in a segment can never smuggle a
//! corrupted record into recovery — the log either truncates cleanly
//! before the damage or refuses to open.

use proptest::prelude::*;
use sentinet_gateway::{Wal, WalConfig, WalRecord};
use sentinet_sim::SensorId;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-wal-props-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Bit-exact record equality (`PartialEq` would lose NaN payloads).
fn same_record(a: &WalRecord, b: &WalRecord) -> bool {
    a.sensor == b.sensor
        && a.seq == b.seq
        && a.time == b.time
        && a.values.len() == b.values.len()
        && a.values
            .iter()
            .zip(&b.values)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_prefix(recovered: &[WalRecord], original: &[WalRecord]) {
    assert!(
        recovered.len() <= original.len(),
        "recovered more than written"
    );
    for (i, (r, o)) in recovered.iter().zip(original).enumerate() {
        assert!(same_record(r, o), "record {i} corrupted in recovery");
    }
}

/// Arbitrary batches over a few sensors; values include NaN, ±∞ and
/// subnormals so "bit-exact" means exactly that.
fn batches() -> impl Strategy<Value = Vec<WalRecord>> {
    prop::collection::vec(
        (
            0u16..4,
            0u64..1_000,
            0u64..100_000,
            prop::collection::vec(
                prop::sample::select(vec![
                    0.0,
                    -0.0,
                    21.5,
                    -3.25,
                    1e300,
                    f64::MIN_POSITIVE,
                    f64::NAN,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                ]),
                1..4,
            ),
        ),
        1..24,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(sensor, seq, time, values)| WalRecord {
                sensor: SensorId(sensor),
                seq,
                time,
                values,
            })
            .collect()
    })
}

/// Writes `records` into a fresh single-segment WAL and returns the
/// directory plus the segment size after each append (so tests can
/// locate record boundaries without re-deriving the wire format).
fn write_wal(name: &str, records: &[WalRecord]) -> (PathBuf, PathBuf, Vec<u64>) {
    let dir = tmpdir(name);
    let (mut wal, recovered) = Wal::open(WalConfig::new(&dir), None).expect("open fresh wal");
    assert!(recovered.is_empty());
    let segment = dir.join("wal-00000001.seg");
    let mut sizes = Vec::with_capacity(records.len());
    for record in records {
        wal.append(record).expect("append");
        sizes.push(fs::metadata(&segment).expect("segment exists").len());
    }
    drop(wal);
    (dir, segment, sizes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn roundtrip_is_bit_exact(records in batches()) {
        let (dir, _, _) = write_wal("roundtrip", &records);
        let (_, recovered) = Wal::open(WalConfig::new(&dir), None).expect("reopen");
        prop_assert_eq!(recovered.len(), records.len());
        for (r, o) in recovered.iter().zip(&records) {
            prop_assert!(same_record(r, o), "roundtrip corrupted a record");
        }
        fs::remove_dir_all(&dir).ok();
    }

    fn torn_tail_at_every_offset_recovers_prefix(records in batches()) {
        // Reference write to learn where the final record begins/ends.
        let (dir, segment, sizes) = write_wal("torn-ref", &records);
        let last_start = if sizes.len() >= 2 { sizes[sizes.len() - 2] } else { 0 };
        let last_end = *sizes.last().unwrap();
        let template = fs::read(&segment).expect("read segment");
        fs::remove_dir_all(&dir).ok();

        for cut in last_start..last_end {
            let dir = tmpdir("torn-cut");
            fs::create_dir_all(&dir).expect("mkdir");
            fs::write(dir.join("wal-00000001.seg"), &template[..cut as usize])
                .expect("write truncated segment");
            let (wal, recovered) = Wal::open(WalConfig::new(&dir), None).expect("torn tail must open");
            prop_assert_eq!(
                recovered.len(),
                records.len() - 1,
                "cut at {} must lose exactly the final record",
                cut
            );
            assert_prefix(&recovered, &records);
            // The truncated log must keep accepting appends.
            drop(wal);
            fs::remove_dir_all(&dir).ok();
        }
    }

    fn single_bit_flip_never_corrupts_recovery(
        records in batches(),
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let (dir, segment, sizes) = write_wal("flip", &records);
        let mut bytes = fs::read(&segment).expect("read segment");
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        fs::write(&segment, &bytes).expect("write flipped segment");

        // The flipped byte lives inside this record index.
        let victim = sizes.iter().position(|&end| (pos as u64) < end).unwrap();

        match Wal::open(WalConfig::new(&dir), None) {
            Ok((_, recovered)) => {
                // Treated as a torn tail: everything from the damaged
                // frame on is dropped, nothing before it is altered.
                prop_assert!(
                    recovered.len() <= victim,
                    "flip at byte {} (record {}) survived: recovered {}",
                    pos, victim, recovered.len()
                );
                assert_prefix(&recovered, &records);
            }
            Err(_) => {
                // Refusing to open is also safe — just never silent
                // acceptance of altered data.
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
