//! Exact transport accounting under scripted adversity: a bare
//! `TcpListener` plays the server role from a deterministic script
//! (drop the connection here, swallow an ack there), and the
//! `SensorUplink`'s [`UplinkStats`] must come out exactly right —
//! every retransmit, reconnect and timeout attributed, nothing
//! swallowed by the retry loop.

use sentinet_gateway::frame::encode_frame;
use sentinet_gateway::{FrameBuffer, Message, SensorUplink, UplinkConfig};
use sentinet_sim::SensorId;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// What the scripted server does after reading one `Data` frame,
/// keyed by the global (retransmissions included) data-frame count.
#[derive(Clone, Copy, PartialEq)]
enum Script {
    /// Ack the frame normally.
    Ack,
    /// Close the connection without acking (abrupt server death).
    Close,
    /// Swallow the frame: no ack, connection stays up (slow server).
    Swallow,
}

/// Serves connections off `listener`, following `script` per data
/// frame read (frames beyond the script are acked). Returns after
/// `Fin`, yielding the total number of data frames read.
fn scripted_server(listener: TcpListener, script: Vec<Script>) -> u64 {
    let mut data_reads = 0u64;
    let mut buf = [0u8; 4096];
    'conns: for stream in listener.incoming() {
        let mut stream: TcpStream = stream.expect("accept");
        let mut fb = FrameBuffer::new();
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => continue 'conns,
                Ok(n) => n,
            };
            fb.feed(&buf[..n]);
            loop {
                match fb.next_message().expect("well-formed client frame") {
                    None => break,
                    Some(Message::Data { sensor, seq, .. }) => {
                        data_reads += 1;
                        let action = script
                            .get(data_reads as usize - 1)
                            .copied()
                            .unwrap_or(Script::Ack);
                        match action {
                            Script::Close => continue 'conns,
                            Script::Swallow => {}
                            Script::Ack => stream
                                .write_all(&encode_frame(&Message::Ack { sensor, seq }))
                                .expect("write ack"),
                        }
                    }
                    Some(Message::Fin) => {
                        stream
                            .write_all(&encode_frame(&Message::FinAck))
                            .expect("write finack");
                        return data_reads;
                    }
                    // Hello (per connection) needs no reply on v1.
                    Some(_) => {}
                }
            }
        }
    }
    unreachable!("listener closed before Fin");
}

fn drill_uplink(addr: String) -> SensorUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = Duration::from_millis(250);
    config.max_attempts = 8;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(10);
    config.jitter_pct = 0;
    SensorUplink::new(config)
}

/// Sends `count` readings, asserting every send is eventually acked.
fn send_all(uplink: &mut SensorUplink, count: u64) {
    for i in 0..count {
        let t = 300 * (i + 1);
        uplink
            .send(SensorId(0), t, &[20.0 + i as f64])
            .expect("send acked");
    }
}

#[test]
fn three_scripted_disconnects_are_counted_exactly() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // Reads 4, 8 and 12 die without an ack; the retransmit of each
    // lands on a fresh connection as the very next read.
    let script: Vec<Script> = (1..=13)
        .map(|n| {
            if n % 4 == 0 {
                Script::Close
            } else {
                Script::Ack
            }
        })
        .collect();
    let server = std::thread::spawn(move || scripted_server(listener, script));

    let mut uplink = drill_uplink(addr);
    send_all(&mut uplink, 10);

    // stats() is read before finish(): Fin/FinAck traffic has its own
    // frame count and must not blur the data-frame ledger.
    let stats = uplink.stats();
    assert_eq!(stats.frames_sent, 13, "10 readings + 3 retransmissions");
    assert_eq!(stats.retransmits, 3, "one retransmit per scripted close");
    assert_eq!(stats.reconnects, 3, "one reconnect per scripted close");
    assert_eq!(
        stats.timeouts, 0,
        "closes are detected as EOF, not by the ack deadline"
    );
    assert_eq!(stats.nacks, 0);
    assert_eq!(stats.acked, 10, "every reading acked exactly once");

    uplink.finish().expect("fin/finack");
    assert_eq!(server.join().expect("server thread"), 13);
}

#[test]
fn swallowed_acks_surface_as_timeouts_not_reconnects() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // Reads 2 and 5 are swallowed: the server stays up but never
    // acks, so the client must burn its ack deadline and retransmit
    // on the *same* connection.
    let script = vec![
        Script::Ack,
        Script::Swallow,
        Script::Ack,
        Script::Ack,
        Script::Swallow,
        Script::Ack,
        Script::Ack,
    ];
    let server = std::thread::spawn(move || scripted_server(listener, script));

    let mut uplink = drill_uplink(addr);
    send_all(&mut uplink, 5);

    let stats = uplink.stats();
    assert_eq!(stats.frames_sent, 7, "5 readings + 2 retransmissions");
    assert_eq!(stats.retransmits, 2, "one retransmit per swallowed ack");
    assert_eq!(stats.timeouts, 2, "each swallowed ack burns one deadline");
    assert_eq!(stats.reconnects, 0, "the connection never dropped");
    assert_eq!(stats.nacks, 0);
    assert_eq!(stats.acked, 5);

    uplink.finish().expect("fin/finack");
    assert_eq!(server.join().expect("server thread"), 7);
}
