//! The gateway's central regression property: a seeded delivery
//! schedule full of drops (deferrals), duplicates, and reordering —
//! bounded by the watermark — must produce a report bit-identical to
//! clean in-order delivery, the reorder buffer's released stream must
//! always satisfy the sanitizer (zero rejections), and the transport
//! counters must surface what the schedule actually did.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_gateway::{
    deliver_schedule, delivery_schedule, trace_to_raw, Collector, GatewayConfig, GatewayReport,
    NetsimConfig,
};
use sentinet_sim::{gdi, simulate, RawRecord, SensorId, Trace, DAY_S};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinet-schedule-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn gdi_records() -> Vec<RawRecord> {
    let mut cfg = gdi::month_config();
    cfg.duration = 2 * DAY_S;
    cfg.num_sensors = 4;
    let mut rng = StdRng::seed_from_u64(11);
    let trace: Trace = simulate(&cfg, &mut rng);
    trace_to_raw(&trace)
}

fn config(dir: &PathBuf) -> GatewayConfig {
    let mut c = GatewayConfig::new(dir);
    c.reorder.watermark_delay = 1800;
    c
}

/// Delivers `records` in order, assigning per-sensor sequence numbers
/// exactly as the uplink would.
fn run_in_order(name: &str, records: &[RawRecord]) -> GatewayReport {
    let dir = tmpdir(name);
    let (mut collector, _) = Collector::open(config(&dir)).expect("open");
    let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
    for r in records {
        let seq = seqs.entry(r.sensor).or_insert(0);
        collector
            .deliver(r.sensor, *seq, r.time, r.values.clone())
            .expect("deliver");
        *seq += 1;
    }
    let report = collector.finish().expect("finish");
    fs::remove_dir_all(&dir).ok();
    report
}

#[test]
fn seeded_schedules_reproduce_the_in_order_report() {
    let records = gdi_records();
    let baseline = run_in_order("baseline", &records);
    assert!(
        baseline.ingest.rejected.is_empty(),
        "clean stream sanitizes clean"
    );

    let mut total_duplicates = 0;
    let mut any_reordered = false;
    for seed in 0..10u64 {
        let netsim = NetsimConfig {
            seed,
            ..NetsimConfig::default()
        };
        let schedule = delivery_schedule(&records, &netsim);
        any_reordered |= schedule.windows(2).any(|w| w[1].time < w[0].time);

        let dir = tmpdir(&format!("seed{seed}"));
        let (mut collector, _) = Collector::open(config(&dir)).expect("open");
        deliver_schedule(&mut collector, &schedule).expect("deliver schedule");
        let report = collector.finish().expect("finish");
        fs::remove_dir_all(&dir).ok();

        // Bit-identical detection output, not merely similar.
        assert_eq!(
            format!("{}", report.pipeline),
            format!("{}", baseline.pipeline),
            "seed {seed} diverged from in-order delivery"
        );
        // The reorder buffer's released stream always satisfies the
        // sanitizer: nothing late, duplicated, or out of order ever
        // reaches it.
        assert!(
            report.ingest.rejected.is_empty(),
            "seed {seed}: released stream was rejected by the sanitizer: {:?}",
            report.ingest.rejected
        );
        assert_eq!(
            report.ingest.accepted, baseline.ingest.accepted,
            "seed {seed}"
        );
        // Within-watermark schedules shed and drop nothing.
        assert_eq!(report.ingest.late, 0, "seed {seed}");
        assert_eq!(report.ingest.shed, 0, "seed {seed}");
        total_duplicates += report.ingest.duplicates;
    }
    assert!(any_reordered, "schedules never exercised reordering");
    assert!(
        total_duplicates > 0,
        "schedules never exercised duplicate delivery"
    );
}

#[test]
fn schedule_counts_match_what_the_schedule_did() {
    let records = gdi_records();
    let netsim = NetsimConfig {
        seed: 3,
        dup_rate: 0.2,
        ..NetsimConfig::default()
    };
    let schedule = delivery_schedule(&records, &netsim);
    let scheduled_dups = schedule.iter().filter(|e| e.duplicate).count();
    assert!(scheduled_dups > 0, "seed produced no duplicates");

    let dir = tmpdir("counts");
    let (mut collector, _) = Collector::open(config(&dir)).expect("open");
    deliver_schedule(&mut collector, &schedule).expect("deliver schedule");
    let report = collector.finish().expect("finish");
    fs::remove_dir_all(&dir).ok();

    // Every duplicate emission is absorbed by seq dedup and surfaced.
    assert_eq!(report.ingest.duplicates, scheduled_dups);
}
