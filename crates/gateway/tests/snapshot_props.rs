//! Property tests for the collector snapshot codec — the payload a
//! failover hands from a dead collector to its adopting standby.
//! Arbitrary snapshots round-trip bit-exactly (floats as IEEE-754 bit
//! patterns, so NaN payloads and -0.0 survive), and a mutated
//! checkpoint — truncated at any byte, or with any single bit flipped
//! — is rejected loudly with a diagnostic or decodes to something that
//! re-encodes to exactly the mutated bytes. Never a panic, never a
//! silent reinterpretation.

use proptest::prelude::*;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_gateway::snapshot::{decode_collector, encode_collector};
use sentinet_gateway::{
    merge_snapshot, split_snapshot, CollectorSnapshot, ReorderSnapshot, ReorderStats,
};
use sentinet_sim::{IngestError, SanitizerSnapshot, SensorId};

/// Value pool for readings: includes NaN, ±∞, -0.0 and subnormals so
/// "bit-exact" is exercised where `PartialEq` on floats breaks down.
fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop::sample::select(vec![
            0.0,
            -0.0,
            21.5,
            -3.25,
            1e300,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ]),
        1..4,
    )
}

/// One arbitrary sanitizer rejection, covering every variant.
fn ingest_errors() -> impl Strategy<Value = IngestError> {
    (
        0u8..5,
        0u64..10_000,
        0u16..6,
        0usize..4,
        values(),
        0u64..10_000,
    )
        .prop_map(|(kind, time, sensor, index, vs, latest)| {
            let sensor = SensorId(sensor);
            match kind {
                0 => IngestError::EmptyReading { time, sensor },
                1 => IngestError::NonFinite {
                    time,
                    sensor,
                    index,
                    value: vs[0],
                },
                2 => IngestError::DuplicateTimestamp { time, sensor },
                3 => IngestError::OutOfOrder {
                    time,
                    sensor,
                    latest,
                },
                _ => IngestError::DimensionMismatch {
                    time,
                    sensor,
                    expected: index % 3 + 1,
                    actual: (index + 1) % 3 + 1,
                },
            }
        })
}

fn pairs() -> impl Strategy<Value = Vec<(SensorId, u64)>> {
    prop::collection::vec((0u16..6, 0u64..100_000), 0..4)
        .prop_map(|v| v.into_iter().map(|(s, t)| (SensorId(s), t)).collect())
}

/// Arbitrary snapshots: the pipeline section is produced by driving a
/// real [`Pipeline`] with a generated reading schedule (its snapshot
/// type is opaque by design), the rest is generated field by field.
fn snapshots() -> impl Strategy<Value = CollectorSnapshot> {
    let pipeline = (1u64..40, 1u16..4).prop_map(|(ticks, sensors)| {
        let mut pipeline = Pipeline::new(PipelineConfig::default(), 300);
        for i in 0..ticks {
            for s in 0..sensors {
                let v = 20.0 + (i % 5) as f64 + f64::from(s);
                pipeline.push_values(300 * (i + 1), SensorId(s), &[v, v + 30.0]);
            }
        }
        pipeline.snapshot()
    });
    let reorder = (
        prop::collection::vec((0u64..100_000, 0u16..6, values()), 0..4),
        pairs(),
        (0u8..2, 0u64..100_000),
        (0usize..9, 0usize..9, 0usize..9),
    )
        .prop_map(
            |(buffer, last_released, (has_mark, mark), (duplicates, late, shed))| ReorderSnapshot {
                buffer: buffer
                    .into_iter()
                    .map(|(t, s, vs)| (t, SensorId(s), vs))
                    .collect(),
                last_released,
                watermark: (has_mark == 1).then_some(mark),
                stats: ReorderStats {
                    duplicates,
                    late,
                    shed,
                },
            },
        );
    let sanitizer = (pairs(), 0usize..5).prop_map(|(latest, dims)| SanitizerSnapshot {
        latest,
        dims: (dims > 0).then_some(dims),
    });
    let seqs = prop::collection::vec(
        (
            0u16..6,
            0u64..1_000,
            prop::collection::vec(0u64..1_000, 0..3),
        ),
        0..4,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(s, next, above)| (SensorId(s), next, above))
            .collect::<Vec<_>>()
    });
    let liveness = (pairs(), prop::collection::vec(0u16..6, 0..3), 0usize..20).prop_map(
        |(last_heard, silent, episodes)| {
            (
                last_heard,
                silent.into_iter().map(SensorId).collect::<Vec<_>>(),
                episodes,
            )
        },
    );
    (
        pipeline,
        reorder,
        sanitizer,
        seqs,
        (0usize..10_000, prop::collection::vec(ingest_errors(), 0..4)),
        liveness,
    )
        .prop_map(
            |(pipeline, reorder, sanitizer, seqs, (accepted, rejected), liveness)| {
                let (last_heard, silent, episodes) = liveness;
                CollectorSnapshot {
                    pipeline,
                    reorder,
                    sanitizer,
                    seqs,
                    accepted,
                    rejected,
                    last_heard,
                    silent,
                    episodes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn roundtrip_is_bit_exact(snap in snapshots()) {
        let text = encode_collector(&snap);
        let decoded = decode_collector(&text).expect("round trip");
        // Compare through the encoder: float fields may hold NaN, so
        // `PartialEq` on the structs would be vacuously false there
        // while the bit-pattern text is exact either way.
        prop_assert_eq!(encode_collector(&decoded), text);
    }

    fn truncation_is_rejected_loudly_or_reencodes_exactly(
        snap in snapshots(),
        cut in 0usize..1_000_000,
    ) {
        let text = encode_collector(&snap);
        let cut = cut % text.len();
        let torn = &text[..cut];
        // Must not panic. A prefix that still parses must mean exactly
        // what it says — re-encoding reproduces the torn bytes — so a
        // truncated checkpoint can never smuggle in the full state.
        match decode_collector(torn) {
            Ok(decoded) => prop_assert_eq!(encode_collector(&decoded), torn),
            Err(e) => prop_assert!(!e.is_empty(), "rejection must carry a diagnostic"),
        }
    }

    fn single_bit_flip_never_panics_or_reinterprets(
        snap in snapshots(),
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let text = encode_collector(&snap);
        let mut bytes = text.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // The flip may produce invalid UTF-8; the decoder only sees
        // &str, so lossy conversion models what a reader would pass in.
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        match decode_collector(&mutated) {
            // No checksum at this layer (the WAL frames checkpoints
            // with CRCs): a flip that lands in a digit yields a
            // different but self-consistent snapshot. The invariant is
            // that whatever decodes re-encodes to the mutated text —
            // the codec never invents state beyond the bytes it read.
            Ok(decoded) => prop_assert_eq!(encode_collector(&decoded), mutated),
            Err(e) => prop_assert!(!e.is_empty(), "rejection must carry a diagnostic"),
        }
    }
}

/// Puts a generated snapshot into the canonical order every live
/// collector maintains (BTreeMap-backed structures: per-sensor lists
/// ascending and duplicate-free, the reorder buffer in `(time,
/// sensor)` release order). The sub-range split/merge contract is
/// defined over this order — it is the only order the migration cut
/// ever sees.
fn canonicalize(mut snap: CollectorSnapshot) -> CollectorSnapshot {
    fn by_sensor<T>(items: &mut Vec<T>, key: impl Fn(&T) -> u16) {
        items.sort_by_key(|i| key(i));
        items.dedup_by_key(|i| key(i));
    }
    by_sensor(&mut snap.reorder.last_released, |(s, _)| s.0);
    by_sensor(&mut snap.sanitizer.latest, |(s, _)| s.0);
    by_sensor(&mut snap.seqs, |(s, _, _)| s.0);
    by_sensor(&mut snap.last_heard, |(s, _)| s.0);
    snap.silent.sort();
    snap.silent.dedup();
    snap.reorder.buffer.sort_by_key(|(t, s, _)| (*t, s.0));
    snap.reorder.buffer.dedup_by_key(|(t, s, _)| (*t, s.0));
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The migration-cut contract: filtering a snapshot to `[a, b)`
    /// and re-merging with its complement is byte-identical to the
    /// original — no sensor state is lost, duplicated or reordered by
    /// a cut, whatever the range.
    fn sub_range_split_then_merge_is_byte_identical(
        snap in snapshots(),
        a in 0u16..8,
        len in 0u16..8,
    ) {
        let snap = canonicalize(snap);
        let text = encode_collector(&snap);
        let (inside, outside) = split_snapshot(&snap, a..a + len);
        prop_assert_eq!(encode_collector(&merge_snapshot(&outside, &inside)), text);
    }

    /// Each half owns exactly its side of the cut: per-sensor state
    /// partitions with nothing shared, the accounting ledger stays
    /// whole on the outside half, and the lineage fields (global
    /// model, watermark, window coordinates) ride along into both.
    fn sub_range_split_partitions_per_sensor_state(
        snap in snapshots(),
        a in 0u16..8,
        len in 0u16..8,
    ) {
        let snap = canonicalize(snap);
        let range = a..a + len;
        let (inside, outside) = split_snapshot(&snap, range.clone());
        for (half, want_inside) in [(&inside, true), (&outside, false)] {
            let ok = |s: SensorId| range.contains(&s.0) == want_inside;
            prop_assert!(half.seqs.iter().all(|(s, _, _)| ok(*s)));
            prop_assert!(half.last_heard.iter().all(|(s, _)| ok(*s)));
            prop_assert!(half.silent.iter().all(|s| ok(*s)));
            prop_assert!(half.sanitizer.latest.iter().all(|(s, _)| ok(*s)));
            prop_assert!(half.reorder.buffer.iter().all(|(_, s, _)| ok(*s)));
            prop_assert!(half.reorder.last_released.iter().all(|(s, _)| ok(*s)));
            prop_assert!(half.pipeline.sensors.iter().all(|(s, _)| ok(*s)));
            prop_assert_eq!(&half.pipeline.global, &snap.pipeline.global);
            prop_assert_eq!(half.reorder.watermark, snap.reorder.watermark);
            prop_assert_eq!(half.sanitizer.dims, snap.sanitizer.dims);
        }
        prop_assert_eq!(inside.accepted, 0);
        prop_assert_eq!(inside.episodes, 0);
        prop_assert!(inside.rejected.is_empty());
        prop_assert_eq!(outside.accepted, snap.accepted);
        prop_assert_eq!(outside.episodes, snap.episodes);
        prop_assert_eq!(outside.rejected.len(), snap.rejected.len());
    }
}
