//! Property tests for the pipelined (protocol v2) batch path:
//! arbitrary `DataBatch` frames round-trip bit-exactly through
//! [`FrameBuffer`] under every torn chunking of the byte stream, a
//! single flipped bit can never smuggle a decoded message past the
//! CRC, duplicate batch delivery is absorbed by the collector's seq
//! dedup, and — the group-commit crash property — a crash that loses
//! any suffix of the WAL beyond the last completed fsync can never
//! lose a record the ack-release rule would have acked.

use proptest::prelude::*;
use sentinet_gateway::frame::encode_frame;
use sentinet_gateway::{Collector, FrameBuffer, FsyncPolicy, GatewayConfig, Message};
use sentinet_sim::{SensorId, Timestamp};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-batch-props-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One generated batch: sensor, starting seq, and its readings.
type GenBatch = (u16, u64, Vec<(Timestamp, Vec<f64>)>);

/// Arbitrary batches over a few sensors; values include NaN, ±∞ and
/// subnormals so "bit-exact" means exactly that.
fn gen_batches(max_batches: usize) -> impl Strategy<Value = Vec<GenBatch>> {
    prop::collection::vec(
        (
            0u16..4,
            0u64..1_000,
            prop::collection::vec(
                (
                    0u64..100_000,
                    prop::collection::vec(
                        prop::sample::select(vec![
                            0.0,
                            -0.0,
                            21.5,
                            -3.25,
                            1e300,
                            f64::MIN_POSITIVE,
                            f64::NAN,
                            f64::INFINITY,
                            f64::NEG_INFINITY,
                        ]),
                        1..4,
                    ),
                ),
                1..40,
            ),
        ),
        1..=max_batches,
    )
}

fn to_message((sensor, first_seq, readings): &GenBatch) -> Message {
    Message::DataBatch {
        sensor: SensorId(*sensor),
        first_seq: *first_seq,
        readings: readings.clone(),
    }
}

/// Bit-exact `DataBatch` equality (`PartialEq` would lose NaN).
fn same_batch(a: &Message, b: &Message) -> bool {
    let (
        Message::DataBatch {
            sensor: sa,
            first_seq: fa,
            readings: ra,
        },
        Message::DataBatch {
            sensor: sb,
            first_seq: fb,
            readings: rb,
        },
    ) = (a, b)
    else {
        return false;
    };
    sa == sb
        && fa == fb
        && ra.len() == rb.len()
        && ra.iter().zip(rb).all(|((ta, va), (tb, vb))| {
            ta == tb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every chunking of the concatenated frame stream — including
    /// duplicate frames back to back — decodes to the identical
    /// message sequence.
    fn data_batch_roundtrips_through_torn_stream(
        batches in gen_batches(6),
        chunk_sizes in prop::collection::vec(1usize..9, 1..64),
        duplicate_first in any::<bool>(),
    ) {
        let mut messages: Vec<Message> = batches.iter().map(to_message).collect();
        if duplicate_first {
            // The wire does not dedup: a retransmitted batch decodes
            // again, identically (dedup is the collector's job).
            messages.push(messages[0].clone());
        }
        let stream: Vec<u8> = messages.iter().flat_map(encode_frame).collect();

        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunks = chunk_sizes.iter().cycle();
        while offset < stream.len() {
            let take = (*chunks.next().unwrap()).min(stream.len() - offset);
            fb.feed(&stream[offset..offset + take]);
            offset += take;
            while let Some(msg) = fb.next_message().expect("clean stream") {
                decoded.push(msg);
            }
        }
        prop_assert_eq!(decoded.len(), messages.len());
        for (d, m) in decoded.iter().zip(&messages) {
            prop_assert!(same_batch(d, m), "torn reassembly corrupted a batch");
        }
    }

    /// A single flipped bit anywhere in an encoded frame must never
    /// decode to a message: the CRC (or the length header it guards)
    /// refuses it.
    fn flipped_bit_never_decodes(
        batch in gen_batches(1),
        bit in any::<u64>(),
    ) {
        let frame = encode_frame(&to_message(&batch[0]));
        let flip = bit as usize % (frame.len() * 8);
        let mut corrupt = frame.clone();
        corrupt[flip / 8] ^= 1 << (flip % 8);

        let mut fb = FrameBuffer::new();
        fb.feed(&corrupt);
        match fb.next_message() {
            Err(_) => {}        // CRC mismatch or poisoned header: detected.
            Ok(None) => {}      // Length flip made the frame incomplete.
            Ok(Some(_)) => prop_assert!(false, "bit {flip} smuggled a frame through"),
        }
    }

    /// Redelivering a batch is fully absorbed: all duplicates, no new
    /// acceptance, no WAL growth, and the same cumulative ack.
    fn duplicate_batches_are_absorbed(batches in gen_batches(4)) {
        let dir = tmpdir("dup");
        let mut config = GatewayConfig::new(&dir);
        config.checkpoint_every = 0;
        let (mut collector, _) = Collector::open(config).expect("open collector");
        for (sensor, first_seq, readings) in &batches {
            let first = collector
                .deliver_batch(SensorId(*sensor), *first_seq, readings)
                .expect("deliver");
            let cursor = collector.wal_records();
            let redo = collector
                .deliver_batch(SensorId(*sensor), *first_seq, readings)
                .expect("redeliver");
            prop_assert_eq!(redo.accepted, 0, "duplicate batch re-admitted");
            prop_assert_eq!(redo.duplicates, first.accepted + first.duplicates);
            prop_assert_eq!(collector.wal_records(), cursor, "duplicate grew the WAL");
            prop_assert_eq!(redo.ack_up_to, first.ack_up_to);
            prop_assert!(redo.nack.is_none());
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Group-commit crash property: the ack-release rule only acks
    /// batches whose `ack_cursor` a completed fsync covers, so a crash
    /// that tears off any unsynced WAL suffix — cut the segment at any
    /// byte at or past the last fsync's high-water mark — must recover
    /// every record the server could have acked.
    fn crash_never_loses_acked_records(
        batches in gen_batches(6),
        fsync_every in 1u64..64,
        cut_choice in any::<u64>(),
    ) {
        let dir = tmpdir("crash");
        let mut config = GatewayConfig::new(&dir);
        config.checkpoint_every = 0;
        config.wal.fsync = FsyncPolicy::Batch(fsync_every as u32);
        let (mut collector, _) = Collector::open(config).expect("open collector");
        let segment = dir.join("wal-00000001.seg");

        // Drive batches through, tracking the byte size of the synced
        // prefix: `synced_cursor` only advances when an fsync
        // completes, and right after a batch the fsync either covered
        // the whole log or stopped where the previous one did.
        let mut acked_records = 0u64; // server rule: max released ack_cursor
        let mut synced_bytes = 0u64;
        for (sensor, first_seq, readings) in &batches {
            let out = collector
                .deliver_batch(SensorId(*sensor), *first_seq, readings)
                .expect("deliver");
            let synced = collector.synced_cursor();
            if synced == collector.wal_records() {
                synced_bytes = fs::metadata(&segment).expect("segment").len();
            }
            // The server releases the ack only once synced covers it.
            if out.ack_up_to.is_some() && out.ack_cursor <= synced {
                acked_records = acked_records.max(out.ack_cursor);
            }
        }
        let synced = collector.synced_cursor();
        prop_assert!(acked_records <= synced, "ack released past the fsync watermark");

        // Crash: drop the collector with no flush, then lose an
        // arbitrary unsynced suffix.
        drop(collector);
        let total = fs::metadata(&segment).expect("segment").len();
        let cut = synced_bytes + cut_choice % (total - synced_bytes + 1);
        let bytes = fs::read(&segment).expect("read segment");
        fs::write(&segment, &bytes[..cut as usize]).expect("tear suffix");

        let mut config = GatewayConfig::new(&dir);
        config.checkpoint_every = 0;
        let (recovered, info) = Collector::open(config).expect("reopen after crash");
        prop_assert!(
            info.replayed >= acked_records,
            "crash lost acked records: {} recovered < {} acked",
            info.replayed,
            acked_records
        );
        drop(recovered);
        fs::remove_dir_all(&dir).ok();
    }
}
