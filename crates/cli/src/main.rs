//! `sentinet` — command-line front end.
//!
//! Two subcommands close the loop for a downstream user:
//!
//! - `sentinet simulate out.csv --fault 6:stuck=15,1` generates a
//!   GDI-like trace CSV with optional fault/attack injections;
//! - `sentinet analyze out.csv` runs the full detection pipeline over
//!   any trace CSV (simulated or real) and prints the diagnosis report
//!   plus the recommended recovery plan.

mod args;

use args::{AnalyzeArgs, Command, SimulateArgs, USAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig, RecoveryPlan};
use sentinet_engine::{ChaosPlan, Engine, SupervisorConfig};
use sentinet_inject::{inject_attacks, inject_faults, AttackInjection, FaultInjection};
use sentinet_sim::{gdi, read_trace_sanitized, simulate, write_trace, SensorId, DAY_S};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(argv.iter().map(String::as_str)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match parsed {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Simulate(a) => run_simulate(a),
        Command::Analyze(a) => run_analyze(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_simulate(a: SimulateArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = gdi::month_config();
    cfg.duration = a.days * DAY_S;
    cfg.num_sensors = a.sensors;
    let mut rng = StdRng::seed_from_u64(a.seed);
    let mut trace = simulate(&cfg, &mut rng);
    if let Some((sensor, model)) = a.fault {
        if sensor.0 >= a.sensors {
            return Err(
                format!("fault sensor {} out of range (0..{})", sensor.0, a.sensors).into(),
            );
        }
        trace = inject_faults(
            &trace,
            // Fault onset after one clean day (or immediately for
            // single-day traces) so the bootstrap sees healthy data.
            &[FaultInjection::from_onset(
                sensor,
                model,
                if a.days > 1 { DAY_S } else { 0 },
            )],
            &cfg.ranges,
            &mut rng,
        );
    }
    if let Some((count, model)) = a.attack {
        if count > a.sensors {
            return Err(format!("cannot compromise {count} of {} sensors", a.sensors).into());
        }
        trace = inject_attacks(
            &trace,
            &[AttackInjection::from_onset(
                (0..count).map(SensorId).collect(),
                model,
                a.days / 2 * DAY_S,
            )],
            &cfg.ranges,
        );
    }
    let file = File::create(&a.output)?;
    write_trace(&trace, 2, BufWriter::new(file))?;
    println!(
        "wrote {} records ({} days, {} sensors, {:.1}% lost/malformed) to {}",
        trace.len(),
        a.days,
        a.sensors,
        100.0 * trace.loss_rate(),
        a.output
    );
    Ok(())
}

fn run_analyze(a: AnalyzeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let file = File::open(&a.input)?;
    // Sanitized ingest: NaN/∞ payloads, duplicate and out-of-order
    // timestamps are dropped and accounted for instead of aborting
    // (or, worse, panicking inside the estimators).
    let (trace, ingest) = read_trace_sanitized(BufReader::new(file))?;
    if !ingest.is_clean() {
        eprintln!(
            "warning: ingest rejected {} of {} delivered record(s):",
            ingest.rejected.len(),
            ingest.accepted + ingest.rejected.len()
        );
        for e in &ingest.rejected {
            eprintln!("  {e}");
        }
    }
    if trace.is_empty() {
        return Err("trace contains no records".into());
    }
    let config = PipelineConfig {
        window_samples: a.window,
        observable_trim: a.trim,
        ..Default::default()
    };
    // Both paths produce identical reports (the engine is bit-for-bit
    // equivalent to the pipeline); --shards > 1 fans the per-sensor
    // stages out to supervised worker threads, and --chaos-seed forces
    // the supervised engine so the fault plan has workers to kill.
    let (report, plan) = if a.shards > 1 || a.chaos_seed.is_some() {
        let mut engine =
            Engine::new(config, a.period, a.shards).with_supervisor(SupervisorConfig {
                max_shard_restarts: a.max_shard_restarts,
                ..SupervisorConfig::default()
            });
        if let Some(seed) = a.chaos_seed {
            let windows = trace
                .records()
                .last()
                .map(|r| r.time / (u64::from(a.window) * a.period))
                .unwrap_or(1)
                .max(1);
            let chaos = ChaosPlan::seeded(seed, a.shards, windows, 4);
            eprintln!(
                "chaos: injecting {} fault(s) from seed {seed}",
                chaos.faults.len()
            );
            engine = engine.with_chaos(chaos);
        }
        let run = engine.process_trace(&trace)?;
        if let Some(degraded) = run.degraded() {
            eprintln!("warning: {degraded}");
        } else if !run.shard_restarts().is_empty() {
            eprintln!(
                "chaos: all crashes recovered exactly (restarts: {:?})",
                run.shard_restarts()
            );
        }
        (run.report(), run.recovery_plan())
    } else {
        let mut pipeline = Pipeline::new(config, a.period);
        pipeline.process_trace(&trace);
        (pipeline.report(), RecoveryPlan::from_pipeline(&pipeline))
    };
    if a.quiet {
        for s in &report.sensors {
            println!("{}\t{}", s.sensor, s.diagnosis);
        }
    } else {
        print!("{report}");
        println!("\nrecovery plan:");
        for (id, action) in &plan.actions {
            println!("  {id}: {action:?}");
        }
    }
    // Exit semantics for scripting: nonzero when anything was flagged.
    if report.flagged().count() > 0 || report.network_attack.is_some() {
        std::process::exit(3);
    }
    Ok(())
}
